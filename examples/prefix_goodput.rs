//! Prefix-cache goodput harness: bit-exact KV reuse on the real engine,
//! then a million-request routed simulation of multi-turn chat at
//! matched SLOs, warm cache vs cold.
//!
//! Part 1 drives `tinyllm`'s continuous batcher twice over the same
//! shared-system-prompt workload — once cold, once through a
//! `distserve_prefix::PrefixCache` — and asserts the generated token
//! streams are byte-identical: cached prefills are an optimization, not
//! an approximation. Part 2 streams a multi-turn chatbot session mix
//! (`workload::sessions`) through the request-granular `ScaleSim`, once
//! with prefix lineages visible to the cache-affine router and once with
//! them stripped, and reports the goodput uplift at matched SLOs.
//!
//! Writes `BENCH_prefix.json` and appends a provenance-stamped record
//! (`prefix_hit_rate`, `cached_goodput_rps`) to `BENCH_history.jsonl`
//! for the perf sentinel.
//!
//! Set `PREFIX_GOODPUT_REQUESTS=100000` for a CI-sized smoke.
//!
//! Run with: `cargo run --release --example prefix_goodput`

use std::collections::HashMap;
use std::time::Instant;

use distserve::prefix::PrefixCache;
use distserve::router::{
    Assignment, FleetSpec, RouterPolicy, ScaleOutcome, ScaleSim, ScaleSlo, ServiceProfile,
};
use distserve::workload::{ChatConfig, ChatSessionStream, Dataset};
use distserve_bench::sentinel::{
    append_record, check, load_ledger, render_verdicts, BenchRecord, Provenance, KEY_METRICS,
};
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

/// Tenants in the real-engine workload, each with a distinct system
/// prompt shared by all of its requests.
const TENANTS: usize = 3;
/// Requests per tenant.
const REQS_PER_TENANT: usize = 8;
/// Shared system-prompt length, tokens (4 KV blocks at block size 16).
const SYS_TOKENS: usize = 64;
/// Tokens generated per request.
const MAX_NEW: usize = 8;

/// The shared-prefix prompt set: per tenant, one fixed system prompt
/// followed by a short per-request user turn.
fn prompts() -> Vec<(u64, Vec<u32>)> {
    let mut out = Vec::new();
    for t in 0..TENANTS {
        let sys: Vec<u32> = (0..SYS_TOKENS)
            .map(|i| ((t * 131 + i * 17 + 7) % 512) as u32)
            .collect();
        for r in 0..REQS_PER_TENANT {
            let mut p = sys.clone();
            let user = 9 + (r % 8);
            p.extend((0..user).map(|i| ((r * 37 + i * 5 + t) % 512) as u32));
            out.push(((t * REQS_PER_TENANT + r) as u64, p));
        }
    }
    out
}

/// Runs the continuous batcher over `prompts`, optionally through a
/// prefix cache, returning outputs by id and the wall time. The token
/// budget forces sequential prefill batches so later requests can hit
/// prefixes inserted by earlier ones — the steady-state serving shape.
fn run_engine(cache: Option<&mut PrefixCache>) -> (HashMap<u64, Vec<u32>>, f64, usize) {
    let model = Model::random(&TinyConfig::small(), 2024);
    let mut batcher = ContinuousBatcher::new(model, 8192).with_token_budget(96);
    for (id, prompt) in prompts() {
        batcher.submit(GenRequest {
            id,
            prompt,
            max_new: MAX_NEW,
        });
    }
    let started = Instant::now();
    let finished = match cache {
        Some(c) => batcher.run_to_completion_with(c),
        None => batcher.run_to_completion(),
    };
    let wall = started.elapsed().as_secs_f64();
    let free = batcher.kv_free_blocks();
    let total = batcher.kv_total_blocks();
    let leaked_by_sequences = total - free;
    (
        finished.into_iter().map(|f| (f.id, f.tokens)).collect(),
        wall,
        leaked_by_sequences,
    )
}

/// Fleet for the scale run (same shape as `examples/router_scale.rs`).
fn fleet() -> FleetSpec {
    FleetSpec {
        prefill: 6,
        decode: 10,
        colocated: 8,
        profile: ServiceProfile::a100_13b(),
    }
}

fn slo() -> ScaleSlo {
    ScaleSlo {
        ttft_s: 0.4,
        tpot_s: 0.1,
    }
}

fn policy() -> RouterPolicy {
    RouterPolicy {
        queue_cap: 4,
        max_wait_secs: 0.5,
        retry_gap_secs: 0.1,
        ..RouterPolicy::default()
    }
}

fn chat_cfg() -> ChatConfig {
    // ~6 sessions/s × ~5 turns ≈ 30 rps of history-bearing prompts —
    // right at the fleet's cold prefill capacity, so warm prefills
    // convert directly into SLO-attaining completions.
    ChatConfig {
        session_rate: 6.0,
        mean_turns: 5.0,
        think_mean_s: 2.0,
        branch_prob: 0.1,
        system_prompt_tokens: 256,
        tenant: 0,
    }
}

fn run_scale(n: usize, warm: bool) -> (ScaleOutcome, f64) {
    let sim = ScaleSim::new(fleet(), policy(), slo(), Assignment::Routed, 7);
    let stream = ChatSessionStream::new(chat_cfg(), Dataset::ShareGpt.sampler(), 20_260_808)
        .take(n)
        .map(move |mut sr| {
            if !warm {
                sr.prefix_group = 0;
            }
            sr
        });
    let started = Instant::now();
    let out = sim.run_sessions(stream);
    (out, started.elapsed().as_secs_f64())
}

fn outcome_json(o: &ScaleOutcome) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"offered\": {},\n",
            "    \"completed\": {},\n",
            "    \"shed\": {},\n",
            "    \"slo_ok\": {},\n",
            "    \"sim_secs\": {:.3},\n",
            "    \"mean_ttft_s\": {:.6},\n",
            "    \"mean_tpot_s\": {:.6},\n",
            "    \"prefix_hits\": {},\n",
            "    \"cached_prompt_tokens\": {},\n",
            "    \"prefix_hit_rate\": {:.6},\n",
            "    \"goodput_rps\": {:.3},\n",
            "    \"attainment\": {:.6}\n",
            "  }}"
        ),
        o.offered,
        o.completed,
        o.shed,
        o.slo_ok,
        o.sim_secs,
        o.mean_ttft_s,
        o.mean_tpot_s,
        o.prefix_hits,
        o.cached_prompt_tokens,
        o.prefix_hit_rate(),
        o.goodput_rps(),
        o.attainment()
    )
}

fn main() {
    // --- Part 1: real engine, bit-exact warm vs cold ---------------------
    println!(
        "== prefix_goodput: tinyllm {} tenants x {} requests, {}-token shared prompts ==",
        TENANTS, REQS_PER_TENANT, SYS_TOKENS
    );
    let (cold_out, cold_wall, cold_leak) = run_engine(None);
    let mut cache = PrefixCache::new(16, 256);
    let (warm_out, warm_wall, warm_leak) = {
        let (out, wall, leak) = run_engine(Some(&mut cache));
        (out, wall, leak)
    };
    assert_eq!(cold_leak, 0, "cold run leaked KV blocks");
    assert_eq!(
        warm_leak,
        cache.owned_blocks(),
        "blocks held beyond released sequences must all be cache-owned"
    );
    assert_eq!(warm_out.len(), cold_out.len());
    for (id, cold_tokens) in &cold_out {
        assert_eq!(
            warm_out.get(id),
            Some(cold_tokens),
            "request {id}: cached generation diverged from cold run"
        );
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared prompts must produce cache hits");
    assert!(stats.matched_tokens > 0);
    let engine_hit_rate = stats.hit_rate();
    let token_hit_rate = stats.token_hit_rate();
    println!(
        "  bit-exact \u{2713}  ({} requests; cache: {} hits / {} misses, {} matched tokens, token hit rate {:.3})",
        cold_out.len(),
        stats.hits,
        stats.misses,
        stats.matched_tokens,
        token_hit_rate,
    );
    println!(
        "  wall: cold {:.3}s, warm {:.3}s ({:.2}x)",
        cold_wall,
        warm_wall,
        cold_wall / warm_wall.max(1e-9)
    );

    // --- Part 2: million-request routed sim, warm vs cold ----------------
    let n: usize = std::env::var("PREFIX_GOODPUT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = chat_cfg();
    println!(
        "  scale: {n} requests, {:.0} sessions/s x ~{:.0} turns, {}-token system prompts",
        cfg.session_rate, cfg.mean_turns, cfg.system_prompt_tokens
    );
    let (warm, warm_scale_wall) = run_scale(n, true);
    let (cold, cold_scale_wall) = run_scale(n, false);
    let rate = warm.offered as f64 / warm_scale_wall;
    println!(
        "  warm: {:.2}s wall ({:.0} sim-req/s), goodput {:.1} rps, hit rate {:.3}, ttft {:.3}s",
        warm_scale_wall,
        rate,
        warm.goodput_rps(),
        warm.prefix_hit_rate(),
        warm.mean_ttft_s,
    );
    println!(
        "  cold: {:.2}s wall, goodput {:.1} rps, ttft {:.3}s",
        cold_scale_wall,
        cold.goodput_rps(),
        cold.mean_ttft_s,
    );

    // Self-checks: conservation, real hits only on the warm path, and
    // warm goodput must meet or beat cold at matched SLOs (the
    // tentpole's acceptance bar).
    assert_eq!(warm.completed + warm.shed, warm.offered);
    assert_eq!(cold.completed + cold.shed, cold.offered);
    assert_eq!(warm.offered, cold.offered);
    assert!(warm.prefix_hits > 0, "warm run saw no cache hits");
    assert_eq!(cold.prefix_hits, 0, "cold run must stay cold");
    assert!(
        warm.goodput_rps() >= cold.goodput_rps(),
        "warm goodput {:.2} rps fell below cold baseline {:.2} rps",
        warm.goodput_rps(),
        cold.goodput_rps()
    );
    let uplift = if cold.goodput_rps() > 0.0 {
        warm.goodput_rps() / cold.goodput_rps()
    } else {
        1.0
    };
    println!(
        "  goodput uplift {:.3}x at matched SLOs (ttft {:.1}s / tpot {:.2}s)",
        uplift,
        slo().ttft_s,
        slo().tpot_s
    );

    // --- BENCH_prefix.json + sentinel ledger -----------------------------
    let provenance = Provenance::capture("multi-turn chat, shared 256-token system prompt", 7);
    let current = BenchRecord::new(
        provenance.clone(),
        vec![
            ("prefix_hit_rate".into(), warm.prefix_hit_rate()),
            ("cached_goodput_rps".into(), warm.goodput_rps()),
        ],
    );
    let history = load_ledger("BENCH_history.jsonl");
    let verdicts = check(&history, &current, KEY_METRICS, 3.0);
    let regressed = verdicts.iter().any(|v| v.regressed);
    let prov_json = serde_json::to_string(&provenance.value()).expect("serialize provenance stamp");
    let json = format!(
        concat!(
            "{{\n",
            "  \"provenance\": {},\n",
            "  \"requests\": {},\n",
            "  \"engine\": {{\n",
            "    \"requests\": {},\n",
            "    \"bit_exact\": true,\n",
            "    \"cache_hits\": {},\n",
            "    \"cache_misses\": {},\n",
            "    \"matched_tokens\": {},\n",
            "    \"token_hit_rate\": {:.6},\n",
            "    \"cold_wall_s\": {:.4},\n",
            "    \"warm_wall_s\": {:.4}\n",
            "  }},\n",
            "  \"prefix_hit_rate\": {:.6},\n",
            "  \"cached_goodput_rps\": {:.3},\n",
            "  \"cold_goodput_rps\": {:.3},\n",
            "  \"goodput_uplift\": {:.4},\n",
            "  \"warm\": {},\n",
            "  \"cold\": {},\n",
            "  \"sentinel\": {{\"history_len\": {}, \"regressed\": {}}}\n",
            "}}\n"
        ),
        prov_json,
        n,
        cold_out.len(),
        stats.hits,
        stats.misses,
        stats.matched_tokens,
        token_hit_rate,
        cold_wall,
        warm_wall,
        warm.prefix_hit_rate(),
        warm.goodput_rps(),
        cold.goodput_rps(),
        uplift,
        outcome_json(&warm),
        outcome_json(&cold),
        history.len(),
        regressed,
    );
    std::fs::write("BENCH_prefix.json", &json).expect("write BENCH_prefix.json");

    println!(
        "  sentinel vs {} ledger records:\n{}",
        history.len(),
        render_verdicts(&verdicts)
    );
    if regressed {
        // CI sets PREFIX_GOODPUT_STRICT=1 to turn a sentinel regression
        // on cached_goodput_rps / prefix_hit_rate into a hard failure.
        assert!(
            std::env::var("PREFIX_GOODPUT_STRICT").is_err(),
            "sentinel flagged a regression (see verdicts above)"
        );
        eprintln!("  WARN: sentinel flagged a regression (see verdicts above)");
    }
    append_record("BENCH_history.jsonl", &current).expect("append BENCH_history.jsonl");
    println!(
        "  wrote BENCH_prefix.json (hit rate {:.3}, engine hit rate {:.3}), appended to BENCH_history.jsonl",
        warm.prefix_hit_rate(),
        engine_hit_rate,
    );
}
