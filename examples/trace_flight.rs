//! Causal tracing, burn-rate control, and the flight recorder, end to
//! end — the observability loop over the routed fleet:
//!
//! 1. **Traced fleet at scale.** A multi-tenant mix (two steady tenants
//!    plus one that floods) streams through the request-granular
//!    `ScaleSim` with a `TailSampler` attached: every span family flows
//!    through the sampler, but only SLO-violating/shed/retried traces
//!    and a 1-in-N reservoir survive, so memory stays flat at any
//!    request count. Completions drain into a per-tenant
//!    `TenantBurnMonitor`; a burn alert throttles that tenant at the
//!    router (half queue cap, no bounded-wait grace) and arms the
//!    replanning controller via a below-floor `SloObservation`.
//! 2. **Flight recorder under a fault storm.** The token-granular
//!    engine serves a trace through a seeded `FaultSchedule::storm`
//!    with a `SpanSynthesizer` (lifecycle → spans, same tail sampler
//!    policy) and a `FlightRecorder` teed in; the storm's first fault
//!    triggers a Perfetto dump of the last moments before impact.
//! 3. **Overhead.** PR 2's harness, extended: the real `tinyllm`
//!    decode hot path with the no-op sink versus the full tracing
//!    chain (synthesizer → tail sampler), interleaved rounds, <3%
//!    budget.
//!
//! Writes `BENCH_trace.json`, `trace_waterfalls.json` (Perfetto; load
//! in ui.perfetto.dev), `flight_recorder.json`, and
//! `trace_dashboard.html` (per-tenant burn panel + waterfall SVG).
//!
//! Set `TRACE_FLIGHT_REQUESTS=100000` for a CI-sized smoke.
//!
//! Run with: `cargo run --release --example trace_flight`

use std::sync::Arc;
use std::time::Instant;

use distserve::cluster::Cluster;
use distserve::core::{serve_trace_with_faults, ReplanController, SloObservation};
use distserve::engine::{FidelityConfig, InstanceRole, InstanceSpec};
use distserve::faults::{FaultSchedule, RetryPolicy, StormConfig};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::observe::{
    tenant_panel, trace_waterfall_svg, BurnConfig, BurnEvent, TenantBurnMonitor,
};
use distserve::placement::{SloSpec, TraceSource};
use distserve::router::{Assignment, FleetSpec, RouterPolicy, ScaleSim, ScaleSlo, ServiceProfile};
use distserve::telemetry::{TelemetrySink, NO_PARENT};
use distserve::trace::{
    waterfall_json, FlightRecorder, SpanSynthesizer, TailSampler, TailSamplerConfig,
};
use distserve::workload::datasets::FixedLengths;
use distserve::workload::{Dataset, MultiTenantMix, TenantSpec};
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

/// Same fleet as `router_scale`: 6 prefill + 8 colocated entry replicas
/// absorb ~200 rps within SLO.
fn fleet() -> FleetSpec {
    FleetSpec {
        prefill: 6,
        decode: 10,
        colocated: 8,
        profile: ServiceProfile::a100_13b(),
    }
}

fn slo() -> ScaleSlo {
    ScaleSlo {
        ttft_s: 0.4,
        tpot_s: 0.1,
    }
}

fn policy() -> RouterPolicy {
    RouterPolicy {
        queue_cap: 4,
        max_wait_secs: 0.5,
        retry_gap_secs: 0.1,
        ..RouterPolicy::default()
    }
}

/// Three tenants: two steady, one at triple their combined rate — the
/// flood pushes the fleet past capacity, so the flooding tenant burns
/// its error budget and the control loop has a real decision to make.
fn mix() -> MultiTenantMix {
    MultiTenantMix::new(
        vec![
            TenantSpec {
                name: "chatbot".into(),
                rate: 40.0,
                sampler: Dataset::ShareGpt.sampler(),
            },
            TenantSpec {
                name: "summarizer".into(),
                rate: 20.0,
                sampler: Dataset::LongBench.sampler(),
            },
            TenantSpec {
                name: "batch-flood".into(),
                rate: 180.0,
                sampler: Dataset::ShareGpt.sampler(),
            },
        ],
        20_240_808,
    )
}

fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct FleetRun {
    offered: u64,
    completed: u64,
    shed: u64,
    wall_secs: f64,
    kept: usize,
    interesting: u64,
    alerts: Vec<(u32, f64)>,
    throttled: Vec<u32>,
    replan_armed: bool,
    waterfalls: String,
    panel: String,
    waterfall_svg: String,
}

/// Part 1: the traced, burn-controlled fleet.
fn traced_fleet(n: u64) -> FleetRun {
    let sampler = Arc::new(TailSampler::new(TailSamplerConfig::default()));
    let mut sim = ScaleSim::new(fleet(), policy(), slo(), Assignment::Routed, 7);
    sim.set_tracing(sampler.clone(), 7);
    sim.log_completions(true);

    let mut monitor = TenantBurnMonitor::new(BurnConfig {
        attainment_target: 0.9,
        fast_window_s: 20.0,
        slow_window_s: 120.0,
        threshold: 3.0,
        min_requests: 50,
    });
    let mut controller =
        ReplanController::new(120.0, 0.3, SloSpec::new(slo().ttft_s, slo().tpot_s))
            .with_attainment_floor(0.9);
    let budget = 1.0 - monitor.config().attainment_target;

    let mut alerts: Vec<(u32, f64)> = Vec::new();
    let mut throttled: Vec<u32> = Vec::new();
    let started = Instant::now();
    for (_, req) in mix().take(n as usize) {
        sim.offer(&req);
        for c in sim.drain_completions().collect::<Vec<_>>() {
            let ok = !c.shed && c.slo_ok;
            match monitor.record(c.tenant, c.time_s, ok) {
                Some(BurnEvent::Fired {
                    tenant,
                    time_s,
                    fast_burn,
                    ..
                }) => {
                    alerts.push((tenant, time_s));
                    sim.set_tenant_throttle(tenant, true);
                    throttled.push(tenant);
                    // The burn reading is the windowed attainment signal:
                    // arm §4.3 replanning from the same evidence.
                    let r = monitor.reading(tenant);
                    controller.observe_attainment(SloObservation {
                        window_secs: monitor.config().fast_window_s,
                        requests: r.total.min(u64::from(u32::MAX)),
                        attainment: 1.0 - fast_burn * budget,
                        ttft_attainment: 1.0 - fast_burn * budget,
                        tpot_attainment: 1.0,
                    });
                }
                Some(BurnEvent::Cleared { tenant, time_s }) => {
                    alerts.push((tenant, time_s));
                    sim.set_tenant_throttle(tenant, false);
                }
                None => {}
            }
        }
    }
    sim.drain();
    let completions: Vec<_> = sim.drain_completions().collect();
    for c in completions {
        monitor.record(c.tenant, c.time_s, !c.shed && c.slo_ok);
    }
    let out = sim.finish();
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = sampler.stats();
    let kept = sampler.take_kept();
    let panel = tenant_panel(&monitor);
    let svg = kept
        .iter()
        .find(|t| {
            t.iter()
                .any(|s| s.ctx.parent == NO_PARENT && s.payload != 0)
        })
        .map(|t| trace_waterfall_svg(t))
        .unwrap_or_default();
    FleetRun {
        offered: out.offered,
        completed: out.completed,
        shed: out.shed,
        wall_secs,
        kept: kept.len(),
        interesting: stats.interesting,
        alerts,
        throttled,
        replan_armed: controller.slo_eroded().is_some(),
        waterfalls: waterfall_json(&kept[..kept.len().min(64)]),
        panel,
        waterfall_svg: svg,
    }
}

/// Part 2: token-granular engine under a fault storm, with the
/// synthesizer turning lifecycle events into spans and the flight
/// recorder capturing the moments before impact.
fn storm_flight(sampler: &Arc<TailSampler>) -> (distserve::trace::IncidentDump, u64) {
    let cost = RooflineModel::a100_conservative();
    let cluster = Cluster::single_node(2);
    let specs = vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .expect("valid prefill instance"),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .expect("valid decode instance"),
    ];
    let trace = FixedLengths {
        input_len: 512,
        output_len: 48,
    }
    .make_trace(24.0, 600, 9);

    let storm = FaultSchedule::storm(
        11,
        &StormConfig {
            horizon_secs: 20.0,
            count: 4,
            instances: 2,
            mean_downtime_secs: 3.0,
        },
    );
    let first_fault = storm.faults().first().expect("storm is non-empty");
    let reason = format!(
        "fault storm: {} at t={:.2}s ({} faults scheduled)",
        first_fault.kind.name(),
        first_fault.at,
        storm.len()
    );

    let recorder = Arc::new(FlightRecorder::new(512));
    let synth = Arc::new(
        SpanSynthesizer::new(sampler.clone() as Arc<dyn TelemetrySink>, 7).with_slos(0.6, 0.04),
    );
    let tee = distserve::telemetry::TeeSink::new(vec![
        synth as Arc<dyn TelemetrySink>,
        recorder.clone() as Arc<dyn TelemetrySink>,
    ]);
    // Profile the storm run so the incident dump carries a flamegraph of
    // where simulation time went around the trigger.
    distserve::prof::set_enabled(true);
    let out = serve_trace_with_faults(
        &cost,
        &cluster,
        &OptModel::Opt13B.arch(),
        specs,
        &trace,
        FidelityConfig::ideal(),
        7,
        &storm,
        RetryPolicy::default(),
        &tee,
    )
    .expect("storm run serves");
    let dump = recorder.dump_incident(&reason);
    distserve::prof::set_enabled(false);
    println!(
        "  storm run: {} finished, {} rejected, {} failed under {} faults",
        out.records.len(),
        out.rejected.len(),
        out.failed.len(),
        storm.len()
    );
    (dump, recorder.total_seen())
}

/// Part 3: tracing overhead on the real engine's decode hot path,
/// interleaved no-op vs. full chain rounds (see
/// `crates/bench/benches/telemetry_overhead.rs` for why interleaved).
/// On a single shared vCPU an interference spell still lands inside one
/// half of a round, so the aggregate is the *median* of the paired
/// per-round ratios (robust to outlier rounds) with the run order
/// alternated each round to cancel slow drift.
fn overhead_bench(rounds: usize) -> (f64, f64) {
    const DECODE_STEPS: usize = 64;
    const BATCH: usize = 16;
    let model = Model::random(&TinyConfig::small(), 5);
    let time_decode = |sink: Option<Arc<dyn TelemetrySink>>| -> f64 {
        let mut b = ContinuousBatcher::new(model.clone(), 8192);
        if let Some(sink) = sink {
            b = b.with_sink(sink, 0);
        }
        for i in 0..BATCH {
            b.submit(GenRequest {
                id: i as u64,
                prompt: (0..32).map(|p| ((i * 17 + p * 5) % 512) as u32).collect(),
                max_new: DECODE_STEPS + 2,
            });
        }
        b.step();
        let t = Instant::now();
        for _ in 0..DECODE_STEPS {
            b.step();
        }
        std::hint::black_box(b.steps());
        t.elapsed().as_secs_f64()
    };
    // Fresh chain per round: steady-state cost, not buffer growth.
    let traced = || {
        let sampler = Arc::new(TailSampler::new(TailSamplerConfig::default()));
        let synth = Arc::new(SpanSynthesizer::new(sampler, 5).with_slos(5.0, 1.0));
        time_decode(Some(synth))
    };
    let warmup = 2;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    let mut round = 0usize;
    let mut target = warmup + rounds;
    // A single-digit-percent gate on rounds of a few ms each sits inside
    // this host's noise band, so precision is adaptive: while the median
    // ratio is within a point of the 3% threshold, keep collecting pairs
    // (the estimator tightens as ~1/√rounds) up to a hard cap.
    let cap = warmup + rounds * 5;
    let median_ratio = loop {
        while round < target {
            let (n, t) = if round.is_multiple_of(2) {
                let n = time_decode(None);
                (n, traced())
            } else {
                let t = traced();
                (time_decode(None), t)
            };
            if round >= warmup {
                pairs.push((n, t));
            }
            round += 1;
        }
        let mut ratios: Vec<f64> = pairs.iter().map(|(n, t)| t / n).collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        if !(1.02..1.04).contains(&median) || target >= cap {
            break median;
        }
        target = (target + rounds).min(cap);
    };
    let mut noops: Vec<f64> = pairs.iter().map(|(n, _)| *n).collect();
    noops.sort_by(f64::total_cmp);
    let median_noop = noops[noops.len() / 2];
    (median_noop, median_noop * median_ratio)
}

fn main() {
    let n: u64 = std::env::var("TRACE_FLIGHT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    println!(
        "trace_flight: {n} requests over {} tenants ({:.0} rps combined), fleet {}P/{}D/{}C",
        mix().tenant_names().len(),
        mix().total_rate(),
        fleet().prefill,
        fleet().decode,
        fleet().colocated,
    );

    // --- Part 1: traced fleet with the burn control loop ----------------
    let rss_before = peak_rss_kib();
    let run = traced_fleet(n);
    let rss_after = peak_rss_kib();
    println!(
        "  fleet: {} offered, {} completed, {} shed in {:.2}s wall ({:.0} sim-req/s)",
        run.offered,
        run.completed,
        run.shed,
        run.wall_secs,
        run.offered as f64 / run.wall_secs,
    );
    println!(
        "  sampler: kept {} traces ({} interesting finishes seen)",
        run.kept, run.interesting,
    );
    let fired: Vec<_> = run.alerts.iter().take(4).collect();
    println!(
        "  burn loop: {} alert transitions (first: {fired:?}), throttled tenants {:?}, replan armed: {}",
        run.alerts.len(),
        run.throttled,
        run.replan_armed,
    );

    // Self-checks: the loop must demonstrably close.
    assert_eq!(run.completed + run.shed, run.offered, "conservation");
    assert!(run.kept > 0, "tail sampler kept no traces");
    assert!(
        !run.alerts.is_empty() && !run.throttled.is_empty(),
        "the flooding tenant must fire a burn alert that throttles it"
    );
    assert!(
        run.throttled.contains(&2),
        "the flooding tenant (index 2) should be among the throttled"
    );
    assert!(
        run.replan_armed,
        "burn alert must arm the replan controller"
    );
    let b = run.waterfalls.matches("\"ph\":\"B\"").count();
    let e = run.waterfalls.matches("\"ph\":\"E\"").count();
    assert!(b > 0 && b == e, "waterfall must have matched B/E pairs");
    assert!(
        run.waterfall_svg.contains("<svg"),
        "dashboard waterfall renders"
    );

    std::fs::write("trace_waterfalls.json", &run.waterfalls).expect("write trace_waterfalls.json");
    println!(
        "  wrote trace_waterfalls.json ({} kept traces, {} B/E pairs)",
        run.kept, b
    );

    // --- Part 2: fault storm into the flight recorder --------------------
    let sampler = Arc::new(TailSampler::new(TailSamplerConfig::default()));
    let (incident, seen) = storm_flight(&sampler);
    let flight_json = &incident.perfetto;
    assert!(
        flight_json.contains("fault storm"),
        "dump must carry the trigger reason"
    );
    assert!(flight_json.matches("\"ph\":\"i\"").count() > 0);
    assert!(
        incident.flamegraph_svg.contains("sim_run"),
        "incident flamegraph must show the simulation hot path"
    );
    std::fs::write("flight_recorder.json", flight_json).expect("write flight_recorder.json");
    std::fs::write("incident_flamegraph.svg", &incident.flamegraph_svg)
        .expect("write incident_flamegraph.svg");
    println!(
        "  wrote flight_recorder.json + incident_flamegraph.svg \
         ({seen} lifecycle events seen, ring dump on storm)",
    );
    let engine_kept = sampler.take_kept();
    println!(
        "  engine path: synthesizer kept {} traces through the same sampler",
        engine_kept.len()
    );

    // --- Dashboard artifact ----------------------------------------------
    let html = format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>trace flight</title><style>\
         body{{font:14px/1.5 system-ui,sans-serif;margin:2rem;color:#222}}\
         table{{border-collapse:collapse}}td,th{{border:1px solid #ddd;padding:.3rem .7rem}}\
         .alert{{color:#d53e4f;font-weight:600}}\
         .empty{{color:#888;font-style:italic}}</style></head><body>\n\
         <h1>Per-tenant SLO burn</h1>\n{}\n\
         <h1>Sampled waterfall (interesting request)</h1>\n{}\n</body></html>\n",
        run.panel, run.waterfall_svg
    );
    assert!(!html.contains("<script"), "dashboard must stay offline");
    std::fs::write("trace_dashboard.html", &html).expect("write trace_dashboard.html");
    println!("  wrote trace_dashboard.html ({} bytes)", html.len());

    // --- Part 3: overhead ------------------------------------------------
    let rounds: usize = 17;
    let (noop_s, traced_s) = overhead_bench(rounds);
    let overhead_pct = (traced_s / noop_s - 1.0) * 100.0;
    println!(
        "  overhead: noop {:.3} ms, traced {:.3} ms → {overhead_pct:+.2}% (budget 3%)",
        noop_s * 1e3,
        traced_s * 1e3
    );
    if overhead_pct >= 3.0 {
        eprintln!("  WARN: tracing overhead {overhead_pct:.2}% is over the 3% budget on this host");
    }

    let provenance = distserve_bench::sentinel::Provenance::capture("trace_flight diurnal", 7);
    let prov_json = serde_json::to_string(&provenance.value()).expect("serialize provenance stamp");
    let json = format!(
        concat!(
            "{{\n",
            "  \"provenance\": {},\n",
            "  \"requests\": {},\n",
            "  \"wall_secs\": {:.3},\n",
            "  \"sim_requests_per_sec\": {:.0},\n",
            "  \"kept_traces\": {},\n",
            "  \"interesting\": {},\n",
            "  \"burn_alerts\": {},\n",
            "  \"throttled_tenants\": {},\n",
            "  \"replan_armed\": {},\n",
            "  \"peak_rss_before_kib\": {},\n",
            "  \"peak_rss_after_kib\": {},\n",
            "  \"noop_ms\": {:.4},\n",
            "  \"traced_ms\": {:.4},\n",
            "  \"overhead_pct\": {:.4},\n",
            "  \"budget_pct\": 3.0\n",
            "}}\n"
        ),
        prov_json,
        run.offered,
        run.wall_secs,
        run.offered as f64 / run.wall_secs,
        run.kept,
        run.interesting,
        run.alerts.len(),
        run.throttled.len(),
        run.replan_armed,
        rss_before.unwrap_or(0),
        rss_after.unwrap_or(0),
        noop_s * 1e3,
        traced_s * 1e3,
        overhead_pct,
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("  wrote BENCH_trace.json");
}
