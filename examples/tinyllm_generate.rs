//! Real inference with the tinyllm engine.
//!
//! Runs actual f32 transformer forward passes: single-request greedy
//! generation, tensor-parallel generation across threads (verified to
//! match), and continuous batching with paged-KV admission — the same
//! scheduling logic the simulators model, executing for real.
//!
//! Run with: `cargo run --release --example tinyllm_generate`

use std::time::Instant;

use distserve::tinyllm::parallel::generate_tp;
use distserve::tinyllm::scheduler::StepKind;
use distserve::tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

fn main() {
    let cfg = TinyConfig::small();
    println!(
        "== tinyllm: {} layers, hidden {}, {} heads, {} params ==\n",
        cfg.layers,
        cfg.hidden,
        cfg.heads,
        cfg.param_count()
    );
    let model = Model::random(&cfg, 2024);

    // Single request, greedy.
    let prompt: Vec<u32> = vec![17, 3, 250, 99, 41];
    let start = Instant::now();
    let tokens = model.generate(&prompt, 24);
    let single = start.elapsed();
    println!("prompt {prompt:?}");
    println!("generated ({:?}): {tokens:?}\n", single);

    // Tensor-parallel generation must produce identical tokens.
    let start = Instant::now();
    let tp_tokens = generate_tp(&model, &prompt, 24, 2);
    println!(
        "tp=2 ({:?}): {}",
        start.elapsed(),
        if tp_tokens == tokens {
            "identical to single-thread \u{2713}"
        } else {
            "MISMATCH"
        }
    );

    // Continuous batching: several requests share decode steps.
    let mut batcher = ContinuousBatcher::new(model, 8192).with_token_budget(64);
    for i in 0..6 {
        batcher.submit(GenRequest {
            id: i,
            prompt: vec![(i as u32 * 7 + 3) % 512, 10, 20],
            max_new: 12 + i as usize,
        });
    }
    let mut prefill_steps = 0;
    let mut decode_steps = 0;
    loop {
        match batcher.step() {
            StepKind::Prefill { requests, tokens } => {
                prefill_steps += 1;
                println!("step: prefill {requests} request(s), {tokens} tokens");
            }
            StepKind::Decode { requests } => {
                decode_steps += 1;
                if decode_steps % 5 == 0 {
                    println!("step: decode batch of {requests}");
                }
            }
            StepKind::Idle => break,
        }
    }
    println!("\ncontinuous batching: {prefill_steps} prefill steps, {decode_steps} decode steps for 6 requests");
    println!("(vs {} decode steps if served one at a time)", 6 * 14);
}
