//! Chaos: fault injection, recovery, and failure-driven replanning.
//!
//! Plans a disaggregated deployment for steady chatbot traffic, then
//! kills a decoding instance mid-run (a permanent GPU loss, flanked by a
//! transient KV-transfer failure and a straggler). The engine requeues
//! the dead instance's in-flight work onto survivors under the retry
//! policy, the observe crate's windowed goodput records the dip, and the
//! capacity loss — not a workload shift — arms the replanning
//! controller. Placement is then rerun over the shrunk cluster and
//! traffic continues on the recovery plan.
//!
//! Prints the availability report (baseline/dip/recovered goodput, MTTR,
//! retry counts) and writes `availability.json` for CI to gate on.
//!
//! Run with: `cargo run --release --example chaos`

use std::sync::Arc;

use distserve::cluster::Cluster;
use distserve::core::recovery::assemble_report;
use distserve::core::replan::ReplanDecision;
use distserve::core::{
    serve_trace_with_faults, serve_trace_with_sink, Application, CapacityObservation, Planner,
    ReplanController,
};
use distserve::engine::spec::InstanceRole;
use distserve::engine::FidelityConfig;
use distserve::faults::{FaultKind, FaultSchedule, GoodputSample, RetryPolicy};
use distserve::models::RooflineModel;
use distserve::observe::ObserverSink;
use distserve::placement::alg1::SearchParams;
use distserve::simcore::SimRng;
use distserve::telemetry::{metrics, Recorder, TeeSink};
use distserve::workload::{Dataset, Request, RequestId, Trace, TraceBuilder};

fn main() {
    let mut cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100();
    let arch = Application::ChatbotOpt13B.model().arch();
    let slo = Application::ChatbotOpt13B.slo();

    // Plan for steady chatbot traffic at a rate that needs several
    // prefill/decode units, so a dead decoding instance leaves
    // survivors to absorb its work.
    let rate = 24.0;
    let specs = {
        let mut planner = Planner::new(&cost, &cluster, arch.clone());
        planner.params = SearchParams {
            probe_requests: 256,
            search_iters: 5,
            ..planner.params
        };
        let deployment = planner
            .plan_distserve(&Dataset::ShareGpt, slo, rate)
            .expect("planning succeeds");
        planner.materialize(&deployment).expect("plan fits")
    };
    let victim = specs
        .iter()
        .position(|s| s.role == InstanceRole::Decode)
        .expect("disaggregated plan has a decoding instance");
    let other_decode = specs
        .iter()
        .enumerate()
        .position(|(i, s)| i != victim && s.role == InstanceRole::Decode);
    println!(
        "deployment: {} instance(s) on {} GPU(s); victim = decode instance {victim}",
        specs.len(),
        specs
            .iter()
            .map(distserve::engine::InstanceSpec::num_gpus)
            .sum::<u32>()
    );

    // The fault storm: a permanent GPU loss on the victim decode
    // instance, plus transient noise that must not lose any request.
    let mut schedule = FaultSchedule::new().with(40.0, FaultKind::GpuLoss { instance: victim });
    if let Some(d) = other_decode {
        schedule.push(45.0, FaultKind::KvTransferFailure { instance: d });
    }
    schedule.push(
        55.0,
        FaultKind::Straggler {
            instance: 0,
            factor: 1.5,
            duration_secs: 10.0,
        },
    );

    // Phases A+B: steady traffic through the original deployment with
    // the faults injected; every lifecycle tees into a recorder (for
    // counters) and the windowed observer (for goodput).
    let mut rng = SimRng::seed(7);
    let trace_ab = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(rate)
        .num_requests(2400)
        .build(&mut rng);
    let recorder = Arc::new(Recorder::new());
    let observer = Arc::new(ObserverSink::new(slo.ttft, slo.tpot, 5.0, 128));
    let tee = TeeSink::new(vec![recorder.clone(), observer.clone()]);
    let outcome_ab = serve_trace_with_faults(
        &cost,
        &cluster,
        &arch,
        specs.clone(),
        &trace_ab,
        FidelityConfig::ideal(),
        7,
        &schedule,
        RetryPolicy::default(),
        &tee,
    )
    .expect("chaos run serves");
    println!(
        "chaos phase: {} finished, {} rejected, {} failed of {} offered",
        outcome_ab.records.len(),
        outcome_ab.rejected.len(),
        outcome_ab.failed.len(),
        trace_ab.requests().len()
    );

    // The victim's hardware is gone: mark its GPUs failed in the ledger
    // and feed the capacity loss to the replanning controller.
    for stage in &specs[victim].stages {
        for &gpu in stage {
            cluster.fail_gpu(gpu).expect("victim GPU is in the cluster");
        }
    }
    let mut controller = ReplanController::new(120.0, 10.0, slo);
    for r in trace_ab.requests() {
        controller.observe(r);
    }
    controller.baseline();
    let obs = CapacityObservation::from_cluster(&cluster, 1);
    println!(
        "capacity: {}/{} GPUs healthy, {} instance down",
        obs.available_gpus, obs.total_gpus, obs.down_instances
    );
    controller.observe_capacity(obs);

    // Replan over the shrunk cluster and continue traffic on the
    // recovery deployment.
    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner.params
    };
    let recovery_specs = match controller.poll(&planner) {
        ReplanDecision::Replanned(d) => {
            println!(
                "replanned over {} surviving GPU(s): plan uses {}",
                cluster.available_gpus(),
                d.total_gpus()
            );
            planner.materialize(&d).expect("recovery plan fits")
        }
        other => panic!("expected capacity-triggered replan, got {other:?}"),
    };

    // Phase C: same traffic pattern, arrivals continuing after the
    // chaos phase, served through the recovery deployment into the same
    // observer so the goodput series spans the whole incident.
    let offset = trace_ab.span() + 1.0;
    let mut rng_c = SimRng::seed(8);
    let trace_c_raw = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(rate)
        .num_requests(1200)
        .build(&mut rng_c);
    let shifted: Vec<Request> = trace_c_raw
        .requests()
        .iter()
        .map(|r| Request {
            id: RequestId(r.id.0 + 100_000),
            arrival: r.arrival.after(offset),
            input_len: r.input_len,
            output_len: r.output_len,
            tenant: r.tenant,
        })
        .collect();
    let trace_c = Trace::new(shifted);
    let outcome_c = serve_trace_with_sink(
        &cost,
        &cluster,
        &arch,
        recovery_specs,
        &trace_c,
        FidelityConfig::ideal(),
        8,
        &tee,
    )
    .expect("recovery deployment serves");
    println!(
        "recovery phase: {} finished, {} rejected, {} failed",
        outcome_c.records.len(),
        outcome_c.rejected.len(),
        outcome_c.failed.len()
    );

    // Assemble the availability report from the full goodput series.
    let samples: Vec<GoodputSample> = observer
        .series()
        .iter()
        .map(|b| GoodputSample {
            start_s: b.start_s,
            goodput_rps: b.goodput_rps,
        })
        .collect();
    let retries = recorder
        .snapshot()
        .metrics
        .counter(metrics::REQUEST_RETRIES, 0);
    let mut report = assemble_report(&samples, &schedule, &outcome_ab, retries);
    report.finished += outcome_c.records.len() as u64;
    report.rejected += outcome_c.rejected.len() as u64;
    report.failed_requests += outcome_c.failed.len() as u64;
    println!();
    print!("{}", report.render());

    std::fs::write("availability.json", report.to_json()).expect("write availability.json");
    println!("\nwrote availability.json");
}
