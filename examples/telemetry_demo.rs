//! Telemetry demo: serve a trace with recording enabled and export the
//! run as Perfetto + Prometheus + CSV artifacts.
//!
//! Serves a fixed-length trace on a disaggregated prefill/decode pair
//! (sim-clock telemetry), then runs the same request shape through the
//! real `tinyllm` engine (wall-clock telemetry — a separate recording,
//! since one recording must not mix clock domains). Writes:
//!
//! - `trace.perfetto.json` — open at <https://ui.perfetto.dev>; one
//!   track per GPU instance, one slice per batch, lifecycle instants.
//! - `metrics.prom` — Prometheus text exposition of the sim run.
//! - `requests.csv` — per-request lifecycle timestamps of the sim run.
//! - `tinyllm.perfetto.json` / `tinyllm.prom` — the real-engine run.
//!
//! The demo self-validates before writing: the trace JSON must parse,
//! every instance track must carry at least one slice, and every
//! request lifecycle must be well-formed.
//!
//! Run with: `cargo run --release --example telemetry_demo`

use std::sync::Arc;

use distserve::cluster::Cluster;
use distserve::core::{serve_trace_with_sink, Table};
use distserve::engine::{FidelityConfig, InstanceRole, InstanceSpec};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::placement::TraceSource;
use distserve::telemetry::{Recorder, Recording, TelemetrySink};
use distserve::workload::datasets::FixedLengths;
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

fn main() {
    // --- Simulated disaggregated serving, recorded ---------------------
    let cost = RooflineModel::a100();
    let cluster = Cluster::single_node(2);
    let arch = OptModel::Opt13B.arch();
    let specs = vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .expect("valid prefill instance"),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .expect("valid decode instance"),
    ];
    let dataset = FixedLengths {
        input_len: 512,
        output_len: 64,
    };
    let trace = dataset.make_trace(4.0, 200, 7);

    let rec = Recorder::new();
    let outcome = serve_trace_with_sink(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        7,
        &rec,
    )
    .expect("deployment is valid");
    let snap = rec.snapshot();
    validate(&snap, "sim");

    std::fs::write("trace.perfetto.json", snap.perfetto_json()).expect("write trace");
    std::fs::write("metrics.prom", snap.prometheus_text()).expect("write metrics");
    std::fs::write("requests.csv", snap.lifecycle_csv()).expect("write csv");

    // --- Real-engine run (wall clock), recorded separately --------------
    let model = Model::random(&TinyConfig::small(), 42);
    let tiny_rec = Arc::new(Recorder::new());
    let sink: Arc<dyn TelemetrySink> = tiny_rec.clone();
    let mut batcher = ContinuousBatcher::new(model, 8192).with_sink(sink, 0);
    for i in 0..8u64 {
        batcher.submit(GenRequest {
            id: i,
            prompt: vec![1 + i as u32 % 7, 2, 3, 4],
            max_new: 16,
        });
    }
    let done = batcher.run_to_completion();
    let tiny_snap = tiny_rec.snapshot();
    validate(&tiny_snap, "tinyllm");

    std::fs::write("tinyllm.perfetto.json", tiny_snap.perfetto_json()).expect("write trace");
    std::fs::write("tinyllm.prom", tiny_snap.prometheus_text()).expect("write metrics");

    // --- Summary ---------------------------------------------------------
    let mut table = Table::new(vec!["artifact", "contents"]);
    table.row(vec![
        "trace.perfetto.json".into(),
        format!(
            "{} slices, {} events, {} tracks",
            snap.slices.len(),
            snap.events.len(),
            snap.track_names().len()
        ),
    ]);
    table.row(vec![
        "metrics.prom".into(),
        format!("{} requests served", outcome.records.len()),
    ]);
    table.row(vec![
        "requests.csv".into(),
        format!("{} lifecycle rows", snap.lifecycles().len()),
    ]);
    table.row(vec![
        "tinyllm.perfetto.json".into(),
        format!(
            "{} slices over {} generations",
            tiny_snap.slices.len(),
            done.len()
        ),
    ]);
    print!("{}", table.render());
    println!("open trace.perfetto.json at https://ui.perfetto.dev");
}

/// Self-check: the recording must round-trip as valid trace JSON with at
/// least one slice per instance track, and every request's lifecycle
/// must be well-formed. Panics (failing the demo and the CI step that
/// runs it) otherwise.
fn validate(snap: &Recording, label: &str) {
    let json = snap.perfetto_json();
    let parsed: serde_json::Value =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("{label}: trace JSON invalid: {e}"));
    let events = parsed["traceEvents"]
        .as_array()
        .unwrap_or_else(|| panic!("{label}: traceEvents missing"));
    for (&track, name) in &snap.track_names() {
        let slices = events
            .iter()
            .filter(|e| {
                e["ph"].as_str() == Some("X") && e["pid"].as_u64() == Some(u64::from(track))
            })
            .count();
        assert!(slices >= 1, "{label}: track {track} ({name}) has no slices");
    }
    for (id, lc) in &snap.lifecycles() {
        lc.validate()
            .unwrap_or_else(|e| panic!("{label}: request {id}: {e}"));
    }
    println!("{label}: trace validated ({} trace events)", events.len());
}
