//! Quickstart: plan a DistServe placement and serve a trace.
//!
//! Plans the chatbot/OPT-13B workload (Table 1 row 1) on the paper's
//! 4×8 A100 testbed, materializes the placement, serves a synthetic
//! ShareGPT trace, and prints goodput and SLO attainment.
//!
//! Run with: `cargo run --release --example quickstart`

use distserve::cluster::Cluster;
use distserve::core::{serve_trace, Application, Planner, Table};
use distserve::engine::FidelityConfig;
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;
use distserve::placement::deploy::Deployment;
use distserve::placement::TraceSource;

fn main() {
    let app = Application::ChatbotOpt13B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let dataset = app.dataset();
    let target_rate = 8.0;

    println!("== DistServe quickstart ==");
    println!("model    : {}", arch.name);
    println!(
        "cluster  : {}x{} A100-80G, 25 Gbps cross-node",
        cluster.num_nodes(),
        cluster.gpus_per_node()
    );
    println!("workload : {} @ {target_rate} rps", dataset.name());
    println!(
        "SLO      : TTFT {:.3}s, TPOT {:.3}s, target {:.0}%",
        slo.ttft,
        slo.tpot,
        slo.target * 100.0
    );
    println!();

    // Plan (the cluster is low-affinity, so this runs Algorithm 2).
    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 384,
        search_iters: 6,
        ..planner.params
    };
    let deployment = planner
        .plan_distserve(&dataset, slo, target_rate)
        .expect("13B chatbot is plannable on the testbed");
    if let Deployment::Low(ref p) = deployment {
        println!(
            "placement: prefill {} + decode {} per unit, {} unit(s), unit goodput {:.2} rps",
            p.prefill_par, p.decode_par, p.num_units, p.unit_goodput
        );
        println!("per-GPU goodput: {:.3} rps/GPU", p.per_gpu_goodput());
    }

    // Serve a 500-request trace at the target rate.
    let specs = planner
        .materialize(&deployment)
        .expect("cluster has capacity");
    let trace = dataset.make_trace(target_rate, 500, 7);
    let outcome = serve_trace(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        7,
    )
    .expect("deployment is valid");

    println!();
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "SLO attainment".into(),
        format!("{:.1}%", outcome.attainment(slo.ttft, slo.tpot) * 100.0),
    ]);
    table.row(vec![
        "P90 TTFT".into(),
        format!("{:.3}s", outcome.ttft_summary().percentile(0.9)),
    ]);
    table.row(vec![
        "P90 TPOT".into(),
        format!("{:.4}s", outcome.tpot_summary().percentile(0.9)),
    ]);
    table.row(vec![
        "requests served".into(),
        outcome.records.len().to_string(),
    ]);
    table.row(vec!["makespan".into(), format!("{}", outcome.makespan)]);
    print!("{}", table.render());
}
