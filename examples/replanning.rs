//! Workload-shift detection and replanning (§4.3).
//!
//! Feeds the replanning controller a chatbot-like workload, baselines the
//! plan, then shifts traffic to summarization-like long prompts. The
//! profiler detects the drift, refits an empirical length distribution
//! from its window, and reruns the placement search.
//!
//! A third phase closes the loop through telemetry instead: the arrival
//! *pattern* stays put, but the offered rate outgrows the deployed plan.
//! The observe crate's windowed SLO attainment — measured by serving the
//! traffic through the deployment with an `ObserverSink` — erodes below
//! the floor, and that observation (not a pattern shift) arms the replan.
//!
//! Run with: `cargo run --release --example replanning`

use distserve::cluster::Cluster;
use distserve::core::replan::ReplanDecision;
use distserve::core::{serve_trace_with_sink, Application, Planner, ReplanController};
use distserve::engine::FidelityConfig;
use distserve::models::RooflineModel;
use distserve::observe::ObserverSink;
use distserve::placement::alg1::SearchParams;
use distserve::placement::deploy::Deployment;
use distserve::simcore::SimRng;
use distserve::workload::datasets::FixedLengths;
use distserve::workload::{Dataset, TraceBuilder};

fn main() {
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = Application::ChatbotOpt13B.model().arch();
    let slo = Application::ChatbotOpt13B.slo();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner.params
    };
    let mut controller = ReplanController::new(120.0, 0.3, slo);

    // Phase 1: chatbot traffic at 4 rps.
    println!("phase 1: ShareGPT-like traffic at 4 rps");
    let mut rng = SimRng::seed(11);
    let phase1 = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(4.0)
        .num_requests(300)
        .build(&mut rng);
    for r in phase1.requests() {
        controller.observe(r);
    }
    controller.baseline();
    match controller.poll(&planner) {
        ReplanDecision::Keep => println!("  stable → keep plan\n"),
        other => println!("  unexpected: {other:?}\n"),
    }

    // Phase 2: users start pasting documents — prompts triple in length.
    // (A full shift to LongBench-scale inputs under the chatbot's 0.2 s
    // TTFT would be *correctly* reported as infeasible: a 2048-token
    // prefill alone exceeds the SLO on this model. Replanning can only
    // rearrange GPUs, not repeal physics.)
    println!("phase 2: traffic shifts to much longer prompts");
    let mut rng2 = SimRng::seed(12);
    let mut phase2 = TraceBuilder::new(Box::new(FixedLengths {
        input_len: 900,
        output_len: 120,
    }))
    .rate(4.0)
    .num_requests(300)
    .build(&mut rng2);
    // Offset arrivals to continue after phase 1.
    let offset = phase1.span() + 1.0;
    let shifted: Vec<_> = phase2
        .requests()
        .iter()
        .map(|r| distserve::workload::Request {
            id: distserve::workload::RequestId(r.id.0 + 10_000),
            arrival: r.arrival.after(offset),
            input_len: r.input_len,
            output_len: r.output_len,
            tenant: r.tenant,
        })
        .collect();
    phase2 = distserve::workload::Trace::new(shifted);
    for r in phase2.requests() {
        controller.observe(r);
    }

    match controller.poll(&planner) {
        ReplanDecision::Replanned(d) => {
            println!("  shift detected → replanned");
            if let Deployment::Low(p) = &d {
                println!(
                    "  new unit: prefill {} decode {}, unit goodput {:.2} rps, {} unit(s)",
                    p.prefill_par, p.decode_par, p.unit_goodput, p.num_units
                );
            }
            println!("  replans so far: {}", controller.replans());
        }
        ReplanDecision::Failed(e) => {
            println!(
                "  shift detected but the new pattern is unservable under the current SLO: {e}"
            );
        }
        other => println!("  unexpected: {other:?}"),
    }

    // Phase 3: same pattern, more of it — detection via observed SLOs.
    println!("\nphase 3: pattern stable, but observed attainment erodes");
    let cost3 = RooflineModel::a100();
    let mut planner3 = Planner::new(&cost3, &cluster, arch.clone());
    planner3.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner3.params
    };
    // An absurd shift threshold: the profiler alone will never fire, so
    // any replan below is attributable to the telemetry path.
    let mut controller3 = ReplanController::new(120.0, 10.0, slo).with_attainment_floor(0.9);

    // Plan for the rate we *expected* (2 rps)...
    let planned_rate = 2.0;
    let deployment = planner3
        .plan_distserve(&Dataset::ShareGpt, slo, planned_rate)
        .expect("planning the expected rate succeeds");
    let specs = planner3
        .materialize(&deployment)
        .expect("plan fits the cluster");
    println!(
        "  planned for {planned_rate} rps on {} GPU(s)",
        specs
            .iter()
            .map(distserve::engine::InstanceSpec::num_gpus)
            .sum::<u32>()
    );

    // ...but traffic arrives at 15x that. Same lengths, same pattern.
    let offered_rate = 30.0;
    let mut rng3 = SimRng::seed(13);
    let overload = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(offered_rate)
        .num_requests(900)
        .build(&mut rng3);
    for r in overload.requests() {
        controller3.observe(r);
    }
    controller3.baseline();
    assert!(
        matches!(controller3.poll(&planner3), ReplanDecision::Keep),
        "the profiler must not fire on its own"
    );

    // Serve the overload through the deployment, observing live.
    let observer = ObserverSink::new(slo.ttft, slo.tpot, 10.0, 64);
    serve_trace_with_sink(
        &cost3,
        &cluster,
        &arch,
        specs,
        &overload,
        FidelityConfig::ideal(),
        13,
        &observer,
    )
    .expect("deployment serves the trace");
    let stats = observer.stats();
    println!(
        "  observed: {} requests, attainment {:.0}% (TTFT {:.0}%, TPOT {:.0}%), goodput {:.2} rps",
        stats.requests,
        stats.attainment * 100.0,
        stats.ttft_attainment * 100.0,
        stats.tpot_attainment * 100.0,
        stats.goodput_rps
    );

    // Feed the windowed observation to the controller and poll.
    controller3.observe_attainment(stats.to_observation());
    match controller3.poll(&planner3) {
        ReplanDecision::Replanned(d) => {
            println!("  attainment below floor → replanned from observed SLOs");
            if let Deployment::Low(p) = &d {
                println!(
                    "  new unit: prefill {} decode {}, unit goodput {:.2} rps, {} unit(s)",
                    p.prefill_par, p.decode_par, p.unit_goodput, p.num_units
                );
            }
        }
        ReplanDecision::Failed(e) => println!("  replan attempted but failed: {e}"),
        ReplanDecision::Keep => println!("  unexpected: controller kept the eroded plan"),
    }
}
