//! Workload-shift detection and replanning (§4.3).
//!
//! Feeds the replanning controller a chatbot-like workload, baselines the
//! plan, then shifts traffic to summarization-like long prompts. The
//! profiler detects the drift, refits an empirical length distribution
//! from its window, and reruns the placement search.
//!
//! Run with: `cargo run --release --example replanning`

use distserve::cluster::Cluster;
use distserve::core::replan::ReplanDecision;
use distserve::core::{Application, Planner, ReplanController};
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;
use distserve::placement::deploy::Deployment;
use distserve::simcore::SimRng;
use distserve::workload::datasets::FixedLengths;
use distserve::workload::{Dataset, TraceBuilder};

fn main() {
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = Application::ChatbotOpt13B.model().arch();
    let slo = Application::ChatbotOpt13B.slo();

    let mut planner = Planner::new(&cost, &cluster, arch);
    planner.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner.params
    };
    let mut controller = ReplanController::new(120.0, 0.3, slo);

    // Phase 1: chatbot traffic at 4 rps.
    println!("phase 1: ShareGPT-like traffic at 4 rps");
    let mut rng = SimRng::seed(11);
    let phase1 = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(4.0)
        .num_requests(300)
        .build(&mut rng);
    for r in phase1.requests() {
        controller.observe(r);
    }
    controller.baseline();
    match controller.poll(&planner) {
        ReplanDecision::Keep => println!("  stable → keep plan\n"),
        other => println!("  unexpected: {other:?}\n"),
    }

    // Phase 2: users start pasting documents — prompts triple in length.
    // (A full shift to LongBench-scale inputs under the chatbot's 0.2 s
    // TTFT would be *correctly* reported as infeasible: a 2048-token
    // prefill alone exceeds the SLO on this model. Replanning can only
    // rearrange GPUs, not repeal physics.)
    println!("phase 2: traffic shifts to much longer prompts");
    let mut rng2 = SimRng::seed(12);
    let mut phase2 = TraceBuilder::new(Box::new(FixedLengths {
        input_len: 900,
        output_len: 120,
    }))
    .rate(4.0)
    .num_requests(300)
    .build(&mut rng2);
    // Offset arrivals to continue after phase 1.
    let offset = phase1.span() + 1.0;
    let shifted: Vec<_> = phase2
        .requests()
        .iter()
        .map(|r| distserve::workload::Request {
            id: distserve::workload::RequestId(r.id.0 + 10_000),
            arrival: r.arrival.after(offset),
            input_len: r.input_len,
            output_len: r.output_len,
        })
        .collect();
    phase2 = distserve::workload::Trace::new(shifted);
    for r in phase2.requests() {
        controller.observe(r);
    }

    match controller.poll(&planner) {
        ReplanDecision::Replanned(d) => {
            println!("  shift detected → replanned");
            if let Deployment::Low(p) = &d {
                println!(
                    "  new unit: prefill {} decode {}, unit goodput {:.2} rps, {} unit(s)",
                    p.prefill_par, p.decode_par, p.unit_goodput, p.num_units
                );
            }
            println!("  replans so far: {}", controller.replans());
        }
        ReplanDecision::Failed(e) => {
            println!(
                "  shift detected but the new pattern is unservable under the current SLO: {e}"
            );
        }
        other => println!("  unexpected: {other:?}"),
    }
}
