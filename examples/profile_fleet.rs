//! Continuous self-profiler harness: profile a ≥1M-request routed
//! `ScaleSim` run *and* the real tinyllm batch-16 decode loop, render
//! the merged flamegraph, and feed the perf-regression sentinel.
//!
//! Four artifacts come out of one run:
//!
//! - `profile_fleet_flamegraph.svg` — self-contained icicle flamegraph
//!   (no JavaScript, no external fetches) of everything the profiler
//!   saw: router phases (`workload_gen`/`route_offer`/`drain_events`),
//!   tinyllm kernels (`forward_batch` down to `qkv_gemm`), and the
//!   worker-pool job scopes from the compute threads.
//! - `profile_fleet.folded.txt` — the same data as folded stacks for
//!   external flamegraph tooling and grep.
//! - `profile_dashboard.html` — the flamegraph and per-worker pool
//!   utilization panels as one offline dashboard page.
//! - `BENCH_prof.json` — profiler overhead on the batch-16 decode loop
//!   (paired off/on rounds, per-step-position minima; budget <3%),
//!   decode and sim
//!   throughput, and the sentinel's verdicts against the bench-history
//!   ledger. The run's key metrics are appended to `BENCH_history.jsonl`
//!   with a full provenance stamp.
//!
//! Self-validates: the flamegraph's leaf re-sum (Σ self time) must match
//! the profile total within 1%, and the profile must contain both the
//! router and kernel hot paths.
//!
//! Env knobs: `PROFILE_FLEET_REQUESTS=100000` for a CI-sized smoke;
//! `PROFILE_FLEET_INJECT_SLOWDOWN_PCT=10` fakes a decode regression in
//! the *current* record only (the ledger is not polluted) so CI can
//! prove the sentinel catches it.
//!
//! Run with: `cargo run --release --example profile_fleet`

use std::time::Instant;

use distserve::observe::{pool_panel, profile_panel};
use distserve::prof;
use distserve::router::{Assignment, FleetSpec, RouterPolicy, ScaleSim, ScaleSlo, ServiceProfile};
use distserve::workload::{Dataset, DiurnalCurve, RequestStream};
use distserve_bench::sentinel::{
    self, append_record, check, load_ledger, render_verdicts, BenchRecord, KEY_METRICS,
};
use serde::Value;
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

const BATCH: usize = 16;
const PROMPT_LEN: usize = 32;
const DECODE_STEPS: usize = 64;
const WARMUP_ROUNDS: usize = 2;
const ROUNDS: usize = 96;
const EXTRA_OFF_ROUNDS: usize = 24;
const SIM_RUNS: usize = 3;
const BUDGET_PCT: f64 = 3.0;
const SENTINEL_K: f64 = 3.0;

/// One batch-16 decode run (prefill excluded), fresh batcher each time
/// so rounds measure the same KV-growth trajectory. Each of the
/// `DECODE_STEPS` steps is timed individually and returned by position:
/// step `s` always runs at the same KV length, so its cost is a fixed
/// quantity that run-to-run interference can only inflate.
fn decode_once(model: &Model) -> Vec<f64> {
    let mut b = ContinuousBatcher::new(model.clone(), 8192);
    for i in 0..BATCH {
        b.submit(GenRequest {
            id: i as u64,
            prompt: (0..PROMPT_LEN)
                .map(|p| ((i * 17 + p * 5) % 512) as u32)
                .collect(),
            max_new: DECODE_STEPS + 2,
        });
    }
    b.step();
    let mut steps = Vec::with_capacity(DECODE_STEPS);
    for _ in 0..DECODE_STEPS {
        let t = Instant::now();
        b.step();
        steps.push(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(b.steps());
    steps
}

/// Median of `xs` (which it sorts in place).
fn median_mut(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Profiler overhead on the decode loop, built for a noisy shared host.
///
/// Interleaved off/on rounds with alternating order cancel slow drift.
/// Step `s` of every round runs at the same KV length, so per-position
/// statistics compare like with like:
///
/// - **Overhead** is the per-position *median of paired within-round
///   deltas* `on[s] − off[s]`, summed across positions. A neighbor-VM
///   spike inflates one side of one round at one position; the median
///   over all rounds shrugs it off, where a mean (or a pair of
///   independent minima) would carry it into the estimate.
/// - **Baseline decode time** (the denominator, and the tok/s fed to
///   the sentinel ledger) is the per-position *minimum* over all
///   profiler-off rounds, summed. Interference only ever slows a step
///   down, so each position's minimum converges to that KV length's
///   true cost, and summing 64 independently-converged minima averages
///   away the residual a single global minimum would keep. A few extra
///   off-only rounds widen the sampling window for this minimum.
///
/// Returns `(off decode secs, on decode secs, overhead pct)` where the
/// decode secs cover all `DECODE_STEPS` steps.
fn decode_overhead(model: &Model) -> (f64, f64, f64) {
    let mut min_off = vec![f64::INFINITY; DECODE_STEPS];
    let mut deltas: Vec<Vec<f64>> = (0..DECODE_STEPS)
        .map(|_| Vec::with_capacity(ROUNDS))
        .collect();
    for round in 0..WARMUP_ROUNDS + ROUNDS {
        let (off, on) = if round % 2 == 0 {
            let off = decode_once(model);
            prof::set_enabled(true);
            let on = decode_once(model);
            prof::set_enabled(false);
            (off, on)
        } else {
            prof::set_enabled(true);
            let on = decode_once(model);
            prof::set_enabled(false);
            (decode_once(model), on)
        };
        if round >= WARMUP_ROUNDS {
            for s in 0..DECODE_STEPS {
                min_off[s] = min_off[s].min(off[s]);
                deltas[s].push(on[s] - off[s]);
            }
        }
    }
    for _ in 0..EXTRA_OFF_ROUNDS {
        let off = decode_once(model);
        for s in 0..DECODE_STEPS {
            min_off[s] = min_off[s].min(off[s]);
        }
    }
    let off_s: f64 = min_off.iter().sum();
    let overhead_s: f64 = deltas.iter_mut().map(|d| median_mut(d)).sum();
    let on_s = off_s + overhead_s;
    (off_s, on_s, overhead_s / off_s * 100.0)
}

/// The routed fleet-scale run under the profiler, same fleet and diurnal
/// overload shape as `router_scale`. Returns simulated requests/sec —
/// the best of [`SIM_RUNS`] identical runs, since a single wall-clock
/// window carries whatever the host's neighbors were doing that second
/// (the profiler accumulates across all runs, which only adds samples).
fn profiled_sim(n: u64) -> f64 {
    (0..SIM_RUNS)
        .map(|_| profiled_sim_once(n))
        .fold(f64::NEG_INFINITY, f64::max)
}

fn profiled_sim_once(n: u64) -> f64 {
    let fleet = FleetSpec {
        prefill: 6,
        decode: 10,
        colocated: 8,
        profile: ServiceProfile::a100_13b(),
    };
    let policy = RouterPolicy {
        queue_cap: 4,
        max_wait_secs: 0.5,
        retry_gap_secs: 0.1,
        ..RouterPolicy::default()
    };
    let slo = ScaleSlo {
        ttft_s: 0.4,
        tpot_s: 0.1,
    };
    let stream = RequestStream::diurnal(
        Dataset::ShareGpt.sampler(),
        DiurnalCurve::new(150.0, 0.5, 3600.0),
        20_240_624,
    )
    .take(n as usize);
    let sim = ScaleSim::new(fleet, policy, slo, Assignment::Routed, 7);
    prof::set_enabled(true);
    let started = Instant::now();
    let out = sim.run(stream);
    let wall = started.elapsed().as_secs_f64();
    prof::set_enabled(false);
    assert_eq!(
        out.completed + out.shed,
        out.offered,
        "request conservation"
    );
    n as f64 / wall
}

fn main() {
    let n: u64 = std::env::var("PROFILE_FLEET_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let inject_pct: f64 = std::env::var("PROFILE_FLEET_INJECT_SLOWDOWN_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    println!(
        "profile_fleet: batch-{BATCH} decode x{ROUNDS} paired rounds, then {n} routed requests"
    );

    // --- Part 1: profiler overhead on the real decode hot path ----------
    let model = Model::random(&TinyConfig::small(), 5);
    let (off_s, on_s, overhead_pct) = decode_overhead(&model);
    let decode_tok_s = (BATCH * DECODE_STEPS) as f64 / off_s;
    println!(
        "  decode: {DECODE_STEPS} steps off {:.1} µs/step, on {:.1} µs/step → overhead \
         {overhead_pct:+.2}% (budget {BUDGET_PCT}%), {decode_tok_s:.0} tok/s",
        off_s / DECODE_STEPS as f64 * 1e6,
        on_s / DECODE_STEPS as f64 * 1e6,
    );
    if overhead_pct >= BUDGET_PCT {
        eprintln!(
            "  WARN: profiler overhead {overhead_pct:.2}% is over the {BUDGET_PCT}% budget on this host"
        );
    }

    // --- Part 2: profiled fleet-scale routed run -------------------------
    let sim_req_s = profiled_sim(n);
    println!(
        "  sim: {n} requests routed at {sim_req_s:.0} sim-req/s under the profiler \
         (best of {SIM_RUNS} runs)"
    );

    // --- Part 3: flamegraph + folded stacks + dashboard ------------------
    let profile = prof::snapshot();
    let total_s = profile.total_ns() as f64 / 1e9;
    let resum_err_pct = if profile.total_ns() > 0 {
        (profile.self_ns_sum() as f64 - profile.total_ns() as f64).abs() / profile.total_ns() as f64
            * 100.0
    } else {
        f64::NAN
    };
    assert!(
        resum_err_pct < 1.0,
        "flamegraph leaf re-sum must match the total within 1% (err {resum_err_pct:.3}%)"
    );
    let svg = profile.flamegraph_svg("profile_fleet: routed sim + batch-16 decode");
    let folded = profile.folded();
    assert!(
        folded.contains("route_offer") && folded.contains("forward_batch"),
        "profile must cover both the router and kernel hot paths"
    );
    assert!(
        !svg.contains("<script") && !svg.contains("href") && !svg.contains("@import"),
        "flamegraph must stay self-contained"
    );
    std::fs::write("profile_fleet_flamegraph.svg", &svg)
        .expect("write profile_fleet_flamegraph.svg");
    std::fs::write("profile_fleet.folded.txt", &folded).expect("write profile_fleet.folded.txt");

    let util = model.pool_utilization();
    let workers: Vec<(f64, f64, u64)> = util
        .workers
        .iter()
        .map(|w| (w.busy_s, w.idle_s, w.jobs))
        .collect();
    let html = format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>profile fleet</title><style>\
         body{{font:14px/1.5 system-ui,sans-serif;margin:2rem;color:#222}}\
         table{{border-collapse:collapse}}td,th{{border:1px solid #ddd;padding:.3rem .7rem}}\
         th{{background:#f0f0f3}}h2{{font-size:1.1rem;margin-top:1.5rem}}\
         .empty{{color:#888;font-style:italic}}</style></head><body>\n\
         <h1>Self-profiler: fleet sim + decode</h1>\n\
         <h2>Flamegraph</h2>\n{}\n\
         <h2>Worker pool ({} lanes)</h2>\n{}\n\
         </body></html>\n",
        profile_panel(&profile, "profile_fleet"),
        util.lanes,
        pool_panel(&workers, util.dispatch_wait_s, util.dispatches),
    );
    assert!(!html.contains("<script"), "dashboard must stay offline");
    std::fs::write("profile_dashboard.html", &html).expect("write profile_dashboard.html");
    println!(
        "  wrote profile_fleet_flamegraph.svg ({} paths, {total_s:.3} s attributed, \
         re-sum err {resum_err_pct:.4}%), profile_fleet.folded.txt, profile_dashboard.html",
        profile.node_count(),
    );

    // --- Part 4: sentinel — ledger append + regression check -------------
    let provenance =
        sentinel::Provenance::capture("TinyConfig::small() batch16 + diurnal routed sim", 7);
    let reported_tok_s = decode_tok_s / (1.0 + inject_pct / 100.0);
    if inject_pct != 0.0 {
        println!("  injecting synthetic {inject_pct:.0}% decode slowdown into the current record");
    }
    let current = BenchRecord::new(
        provenance.clone(),
        vec![
            ("decode_tok_s".into(), reported_tok_s),
            ("sim_req_s".into(), sim_req_s),
            ("prof_overhead_pct".into(), overhead_pct),
        ],
    );
    let history = load_ledger("BENCH_history.jsonl");
    let verdicts = check(&history, &current, KEY_METRICS, SENTINEL_K);
    let regressed = verdicts.iter().any(|v| v.regressed);
    println!(
        "  sentinel vs {} ledger records:\n{}",
        history.len(),
        render_verdicts(&verdicts)
    );
    if regressed {
        eprintln!("  WARN: sentinel flagged a regression (see verdicts above)");
    }
    // Synthetic-slowdown runs exist to prove detection; keep them out of
    // the ledger so they don't drag the baseline down.
    if inject_pct == 0.0 {
        append_record("BENCH_history.jsonl", &current).expect("append BENCH_history.jsonl");
        println!("  appended provenance-stamped record to BENCH_history.jsonl");
    }

    let verdict_values: Vec<Value> = verdicts
        .iter()
        .map(|v| {
            Value::Object(vec![
                ("metric".into(), Value::Str(v.metric.clone())),
                ("baseline_median".into(), Value::Float(v.baseline_median)),
                ("noise_sigma".into(), Value::Float(v.noise_sigma)),
                ("current".into(), Value::Float(v.current)),
                ("threshold".into(), Value::Float(v.threshold)),
                ("samples".into(), Value::UInt(v.samples as u64)),
                ("enough_history".into(), Value::Bool(v.enough_history)),
                ("regressed".into(), Value::Bool(v.regressed)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("provenance".into(), provenance.value()),
        ("batch".into(), Value::UInt(BATCH as u64)),
        ("decode_steps".into(), Value::UInt(DECODE_STEPS as u64)),
        ("rounds".into(), Value::UInt(ROUNDS as u64)),
        (
            "decode_step_off_us".into(),
            Value::Float(off_s / DECODE_STEPS as f64 * 1e6),
        ),
        (
            "decode_step_on_us".into(),
            Value::Float(on_s / DECODE_STEPS as f64 * 1e6),
        ),
        ("overhead_pct".into(), Value::Float(overhead_pct)),
        ("budget_pct".into(), Value::Float(BUDGET_PCT)),
        ("decode_tok_s".into(), Value::Float(reported_tok_s)),
        ("sim_requests".into(), Value::UInt(n)),
        ("sim_req_s".into(), Value::Float(sim_req_s)),
        (
            "profile".into(),
            Value::Object(vec![
                ("paths".into(), Value::UInt(profile.node_count() as u64)),
                ("total_s".into(), Value::Float(total_s)),
                ("self_resum_err_pct".into(), Value::Float(resum_err_pct)),
            ]),
        ),
        (
            "sentinel".into(),
            Value::Object(vec![
                ("history_len".into(), Value::UInt(history.len() as u64)),
                ("k".into(), Value::Float(SENTINEL_K)),
                ("injected_slowdown_pct".into(), Value::Float(inject_pct)),
                ("regressed".into(), Value::Bool(regressed)),
                ("verdicts".into(), Value::Array(verdict_values)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize bench results");
    std::fs::write("BENCH_prof.json", json + "\n").expect("write BENCH_prof.json");
    println!("  wrote BENCH_prof.json");
}
