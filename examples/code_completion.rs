//! Code completion scenario: a real-time coding assistant.
//!
//! HumanEval-style prompts with the tightest TTFT SLO of Table 1
//! (0.125 s): both systems end up TTFT-constrained, and DistServe wins by
//! giving prefill instances dedicated GPUs and more intra-op parallelism
//! (§6.2). OPT-66B per Table 1.
//!
//! Run with: `cargo run --release --example code_completion`

use distserve::cluster::Cluster;
use distserve::core::{rate_sweep, Application, Planner, Table};
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;
use distserve::placement::deploy::Deployment;

fn main() {
    let app = Application::CodeCompletionOpt66B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let dataset = app.dataset();

    println!("== Code completion OPT-66B on HumanEval ==");
    println!(
        "SLO: TTFT {:.3}s (stringent), TPOT {:.2}s\n",
        slo.ttft, slo.tpot
    );

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner.params
    };

    let distserve = planner
        .plan_distserve(&dataset, slo, 2.0)
        .expect("plannable");
    if let Deployment::Low(ref p) = distserve {
        println!(
            "chosen unit: prefill {} (TTFT-driven), decode {}\n",
            p.prefill_par, p.decode_par
        );
    }
    let ds_specs = planner.materialize(&distserve).expect("fits");
    let vllm = planner.plan_vllm(app.vllm_parallelism(), 1).expect("valid");
    let vllm_specs = planner.materialize(&vllm).expect("fits");

    let rates = [0.025, 0.05, 0.1, 0.2, 0.4, 0.8];
    let ds = rate_sweep(
        &cost, &cluster, &arch, &ds_specs, &dataset, slo, &rates, 200, 9,
    )
    .expect("sweep runs");
    let vl = rate_sweep(
        &cost,
        &cluster,
        &arch,
        &vllm_specs,
        &dataset,
        slo,
        &rates,
        200,
        9,
    )
    .expect("sweep runs");

    let mut table = Table::new(vec![
        "rate/GPU",
        "DistServe",
        "Dist-TTFT-only",
        "vLLM",
        "vLLM-TTFT-only",
    ]);
    for (d, v) in ds.iter().zip(&vl) {
        table.row(vec![
            format!("{:.3}", d.x),
            format!("{:.2}", d.attainment),
            format!("{:.2}", d.ttft_attainment),
            format!("{:.2}", v.attainment),
            format!("{:.2}", v.ttft_attainment),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nBoth systems track their TTFT-only curves: the tight first-token budget dominates."
    );
}
