//! Chatbot scenario: DistServe vs vLLM on ShareGPT (Figure 8 style).
//!
//! Serves the OPT-13B chatbot workload at increasing per-GPU rates with
//! both systems and prints the attainment series, marking each system's
//! goodput at the 90% target.
//!
//! Run with: `cargo run --release --example chatbot`

use distserve::cluster::Cluster;
use distserve::core::{rate_sweep, Application, Planner, Table};
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;

fn main() {
    let app = Application::ChatbotOpt13B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let dataset = app.dataset();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 384,
        search_iters: 6,
        ..planner.params
    };

    println!("== Chatbot OPT-13B on ShareGPT: DistServe vs vLLM ==\n");

    // DistServe: planned placement.
    let distserve = planner
        .plan_distserve(&dataset, slo, 6.0)
        .expect("plannable");
    let ds_specs = planner.materialize(&distserve).expect("fits");

    // vLLM baseline: tp=1 (§6.1), one replica.
    let vllm = planner.plan_vllm(app.vllm_parallelism(), 1).expect("valid");
    let vllm_specs = planner.materialize(&vllm).expect("fits");

    let rates = [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0];
    let ds = rate_sweep(
        &cost, &cluster, &arch, &ds_specs, &dataset, slo, &rates, 300, 3,
    )
    .expect("sweep runs");
    let vl = rate_sweep(
        &cost,
        &cluster,
        &arch,
        &vllm_specs,
        &dataset,
        slo,
        &rates,
        300,
        3,
    )
    .expect("sweep runs");

    let mut table = Table::new(vec![
        "rate/GPU",
        "DistServe",
        "Dist-TTFT",
        "Dist-TPOT",
        "vLLM",
        "vLLM-TTFT",
        "vLLM-TPOT",
    ]);
    for (d, v) in ds.iter().zip(&vl) {
        table.row(vec![
            format!("{:.2}", d.x),
            format!("{:.2}", d.attainment),
            format!("{:.2}", d.ttft_attainment),
            format!("{:.2}", d.tpot_attainment),
            format!("{:.2}", v.attainment),
            format!("{:.2}", v.ttft_attainment),
            format!("{:.2}", v.tpot_attainment),
        ]);
    }
    print!("{}", table.render());

    let goodput = |pts: &[distserve::core::SweepPoint]| -> f64 {
        pts.iter()
            .filter(|p| p.attainment >= slo.target)
            .map(|p| p.x)
            .fold(0.0, f64::max)
    };
    let gd = goodput(&ds);
    let gv = goodput(&vl);
    println!("\nper-GPU goodput @90%: DistServe {gd:.2} rps, vLLM {gv:.2} rps");
    if gv > 0.0 {
        println!("improvement: {:.2}x", gd / gv);
    }
}
