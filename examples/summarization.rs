//! Summarization scenario: long inputs, loose TTFT, tight TPOT.
//!
//! LongBench-style documents put heavy pressure on prefill; the
//! colocated baseline's decoding steps stall behind those long prefills
//! and blow the TPOT SLO — the workload where the paper reports
//! DistServe's largest win (4.48×, §6.2). OPT-66B per Table 1.
//!
//! Run with: `cargo run --release --example summarization`

use distserve::cluster::Cluster;
use distserve::core::{rate_sweep, Application, Planner, Table};
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;

fn main() {
    let app = Application::SummarizationOpt66B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let dataset = app.dataset();

    println!("== Summarization OPT-66B on LongBench ==");
    println!(
        "SLO: TTFT {:.1}s (loose — summaries can start slowly), TPOT {:.2}s (tight)\n",
        slo.ttft, slo.tpot
    );

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 256,
        search_iters: 5,
        ..planner.params
    };

    let distserve = planner
        .plan_distserve(&dataset, slo, 2.0)
        .expect("plannable");
    let ds_specs = planner.materialize(&distserve).expect("fits");

    let vllm = planner.plan_vllm(app.vllm_parallelism(), 1).expect("valid");
    let vllm_specs = planner.materialize(&vllm).expect("fits");

    let rates = [0.0125, 0.025, 0.05, 0.1, 0.2, 0.4];
    let ds = rate_sweep(
        &cost, &cluster, &arch, &ds_specs, &dataset, slo, &rates, 200, 5,
    )
    .expect("sweep runs");
    let vl = rate_sweep(
        &cost,
        &cluster,
        &arch,
        &vllm_specs,
        &dataset,
        slo,
        &rates,
        200,
        5,
    )
    .expect("sweep runs");

    let mut table = Table::new(vec!["rate/GPU", "DistServe", "vLLM", "vLLM-TPOT-only"]);
    for (d, v) in ds.iter().zip(&vl) {
        table.row(vec![
            format!("{:.4}", d.x),
            format!("{:.2}", d.attainment),
            format!("{:.2}", v.attainment),
            format!("{:.2}", v.tpot_attainment),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nNote how vLLM's attainment is dragged down by TPOT violations \
         (long prefills starve decoding), while DistServe's decode \
         instances never see a prefill."
    );
}
