//! Cluster-scale router harness: stream 10M requests through the
//! request-granular simulator, once through the EPP-style router and
//! once through a static round-robin baseline, at matched SLOs.
//!
//! The workload is a diurnal (non-homogeneous Poisson) curve whose peak
//! deliberately exceeds fleet capacity — the regime where load-aware
//! routing and admission control earn their keep. The trace is never
//! materialized: arrivals come from `workload::stream::RequestStream`,
//! so memory stays flat at any request count.
//!
//! Self-validates: both runs must conserve every request
//! (completed + shed == offered) and the routed run's goodput must be
//! at least the static baseline's. Writes `BENCH_sim.json` with the
//! wall-clock simulated-requests-per-second figure (target: ≥1M/s).
//!
//! Set `ROUTER_SCALE_REQUESTS=100000` for a CI-sized smoke.
//!
//! Run with: `cargo run --release --example router_scale`

use std::time::Instant;

use distserve::router::{
    Assignment, FleetSpec, RouterPolicy, ScaleOutcome, ScaleSim, ScaleSlo, ServiceProfile,
};
use distserve::workload::{Dataset, DiurnalCurve, RequestStream};

/// Fleet and workload for the scale run. 14 entry replicas (6 prefill +
/// 8 colocated) absorb ~100 rps within SLO; the diurnal peak pushes past
/// that so the router has real admission decisions to make.
fn fleet() -> FleetSpec {
    FleetSpec {
        prefill: 6,
        decode: 10,
        colocated: 8,
        profile: ServiceProfile::a100_13b(),
    }
}

fn curve() -> DiurnalCurve {
    // Mean 150 rps swinging 75..225 over a 1-hour simulated day: the
    // peak exceeds the fleet's ~200 rps TTFT-bounded entry capacity, so
    // admission control and load-aware lane choice decide the goodput.
    DiurnalCurve::new(150.0, 0.5, 3600.0)
}

fn slo() -> ScaleSlo {
    ScaleSlo {
        ttft_s: 0.4,
        tpot_s: 0.1,
    }
}

/// Admission tuned to the 0.4s TTFT SLO: a 4-deep prefill queue (~0.3s
/// at the mean ShareGPT prompt) is the deepest backlog that can still
/// meet it, so anything beyond that is shed quickly instead of being
/// served late and wasted.
fn policy() -> RouterPolicy {
    RouterPolicy {
        queue_cap: 4,
        max_wait_secs: 0.5,
        retry_gap_secs: 0.1,
        ..RouterPolicy::default()
    }
}

fn run(assignment: Assignment, n: u64) -> (ScaleOutcome, f64) {
    let stream =
        RequestStream::diurnal(Dataset::ShareGpt.sampler(), curve(), 20_240_624).take(n as usize);
    let sim = ScaleSim::new(fleet(), policy(), slo(), assignment, 7);
    let started = Instant::now();
    let out = sim.run(stream);
    (out, started.elapsed().as_secs_f64())
}

fn outcome_json(o: &ScaleOutcome) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"offered\": {},\n",
            "    \"completed\": {},\n",
            "    \"shed\": {},\n",
            "    \"slo_ok\": {},\n",
            "    \"requeues\": {},\n",
            "    \"sim_secs\": {:.3},\n",
            "    \"mean_ttft_s\": {:.6},\n",
            "    \"mean_tpot_s\": {:.6},\n",
            "    \"goodput_rps\": {:.3},\n",
            "    \"attainment\": {:.6}\n",
            "  }}"
        ),
        o.offered,
        o.completed,
        o.shed,
        o.slo_ok,
        o.requeues,
        o.sim_secs,
        o.mean_ttft_s,
        o.mean_tpot_s,
        o.goodput_rps(),
        o.attainment()
    )
}

fn main() {
    let n: u64 = std::env::var("ROUTER_SCALE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let c = curve();
    println!(
        "router_scale: {n} requests, diurnal {:.0}±{:.0}% rps over {:.0}s periods, fleet {}P/{}D/{}C",
        c.base_rate,
        c.amplitude * 100.0,
        c.period_secs,
        fleet().prefill,
        fleet().decode,
        fleet().colocated,
    );

    let (routed, routed_wall) = run(Assignment::Routed, n);
    let rate = routed.offered as f64 / routed_wall;
    println!(
        "  routed: {:.2}s wall ({:.0} sim-req/s), goodput {:.1} rps, attainment {:.3}, shed {}, ttft {:.3}s, tpot {:.4}s",
        routed_wall,
        rate,
        routed.goodput_rps(),
        routed.attainment(),
        routed.shed,
        routed.mean_ttft_s,
        routed.mean_tpot_s,
    );

    let (fixed, static_wall) = run(Assignment::Static, n);
    println!(
        "  static: {:.2}s wall, goodput {:.1} rps, attainment {:.3}, shed {}, ttft {:.3}s, tpot {:.4}s",
        static_wall,
        fixed.goodput_rps(),
        fixed.attainment(),
        fixed.shed,
        fixed.mean_ttft_s,
        fixed.mean_tpot_s,
    );

    // Self-checks: conservation on both paths, and routed goodput must
    // meet or beat static assignment at matched SLOs (the tentpole's
    // acceptance bar).
    assert_eq!(routed.completed + routed.shed, routed.offered);
    assert_eq!(fixed.completed + fixed.shed, fixed.offered);
    assert!(
        routed.goodput_rps() >= fixed.goodput_rps(),
        "routed goodput {:.2} rps fell below static baseline {:.2} rps",
        routed.goodput_rps(),
        fixed.goodput_rps()
    );
    if rate < 1_000_000.0 {
        eprintln!("  WARN: {rate:.0} sim-req/s is below the 1M/s target on this host");
    }

    let provenance = distserve_bench::sentinel::Provenance::capture("router_scale diurnal", 7);
    let prov_json = serde_json::to_string(&provenance.value()).expect("serialize provenance stamp");
    let json = format!(
        concat!(
            "{{\n",
            "  \"provenance\": {},\n",
            "  \"requests\": {},\n",
            "  \"wall_secs\": {:.3},\n",
            "  \"sim_requests_per_sec\": {:.0},\n",
            "  \"workload\": {{\n",
            "    \"arrival\": \"diurnal\",\n",
            "    \"base_rate_rps\": {:.1},\n",
            "    \"amplitude\": {:.2},\n",
            "    \"period_secs\": {:.0},\n",
            "    \"dataset\": \"sharegpt\"\n",
            "  }},\n",
            "  \"routed\": {},\n",
            "  \"static\": {}\n",
            "}}\n"
        ),
        prov_json,
        n,
        routed_wall,
        rate,
        c.base_rate,
        c.amplitude,
        c.period_secs,
        outcome_json(&routed),
        outcome_json(&fixed),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("  wrote BENCH_sim.json ({:.0} sim-req/s)", rate);
}
