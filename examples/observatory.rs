//! The goodput observatory, end to end: serve a disaggregated trace
//! near capacity (with admission control rejecting the overflow),
//! attribute every request's latency, diagnose the bottleneck, render
//! the dashboard, and serve it live over HTTP.
//!
//! Self-validates before writing anything: attribution must telescope
//! exactly to each request's end-to-end latency, the dashboard must be
//! a self-contained HTML document, and the Prometheus endpoint must
//! answer over a real socket. Writes:
//!
//! - `dashboard.html` — open in any browser; inline SVG, no JS.
//! - `observatory.port` — the ephemeral port the live server bound.
//!
//! Set `OBSERVATORY_SERVE_SECS=30` to keep the server up for 30 s
//! after the self-checks (CI probes it from a separate process); the
//! server also exits early when something GETs `/quit`.
//!
//! Run with: `cargo run --release --example observatory`

use std::sync::Arc;

use distserve::cluster::Cluster;
use distserve::engine::{InstanceRole, InstanceSpec, ServingSim, SimConfig};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::observe::{
    attribute, diagnose, http_get, render_dashboard, MetricsServer, ObserverSink,
};
use distserve::placement::TraceSource;
use distserve::telemetry::{Recorder, TeeSink, TelemetrySink};
use distserve::workload::datasets::FixedLengths;
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

const TTFT_SLO: f64 = 0.6;
const TPOT_SLO: f64 = 0.04;

fn main() {
    // --- A disaggregated pair pushed past its admission cap ------------
    let cost = RooflineModel::a100_conservative();
    let cluster = Cluster::single_node(2);
    let specs = vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .expect("valid prefill instance"),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .expect("valid decode instance"),
    ];
    let trace = FixedLengths {
        input_len: 512,
        output_len: 48,
    }
    .make_trace(30.0, 400, 9);

    let rec = Arc::new(Recorder::new());
    let observer = Arc::new(ObserverSink::new(TTFT_SLO, TPOT_SLO, 2.0, 64));
    let tee = TeeSink::new(vec![
        rec.clone() as Arc<dyn TelemetrySink>,
        observer.clone() as Arc<dyn TelemetrySink>,
    ]);
    let out = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()).with_admission_cap(24),
        &cost,
        &cluster,
        specs,
    )
    .expect("valid deployment")
    .with_sink(&tee)
    .run(&trace);
    println!(
        "served {} requests, rejected {} at the admission cap",
        out.records.len(),
        out.rejected.len()
    );

    // --- Self-check: attribution telescopes exactly ---------------------
    let snap = rec.snapshot();
    let mut checked = 0usize;
    for (key, lc) in &snap.lifecycles() {
        let attr = attribute(lc).unwrap_or_else(|e| panic!("request {key}: {e}"));
        if let (Some(t), Some(d)) = (&attr.ttft, &attr.decode) {
            let parts = t.batch_formation + t.queueing + t.exec + t.migration + d.total;
            assert!(
                (parts - attr.end_to_end).abs() < 1e-9,
                "request {key}: attribution drifted: {parts} vs {}",
                attr.end_to_end
            );
            checked += 1;
        }
    }
    println!("attribution exact on all {checked} finished requests");

    // --- Bottleneck diagnosis -------------------------------------------
    let report = diagnose(&snap, TTFT_SLO, TPOT_SLO, 2.0, 64).expect("diagnosable recording");
    print!("{}", report.render());

    // --- Dashboard ------------------------------------------------------
    let html = render_dashboard(&report, "DistServe observatory");
    assert!(html.contains("<svg"), "dashboard must carry inline SVG");
    assert!(
        html.trim_end().ends_with("</html>"),
        "dashboard must be complete"
    );
    assert!(
        !html.contains("<script"),
        "dashboard must work offline, no JS"
    );
    std::fs::write("dashboard.html", &html).expect("write dashboard.html");
    println!("wrote dashboard.html ({} bytes)", html.len());

    // --- Live endpoint: dashboard at /, Prometheus text at /metrics -----
    let prom = snap.prometheus_text();
    let index = Arc::new(move || html.clone());
    let metrics = Arc::new(move || prom.clone());
    let server = MetricsServer::start(0, index, metrics).expect("bind an ephemeral port");
    let addr = server.addr();
    std::fs::write("observatory.port", format!("{}\n", addr.port())).expect("write port file");

    // Self-probe over the real socket before declaring victory.
    let body = http_get(addr, "/metrics").expect("GET /metrics");
    assert!(
        body.contains("distserve_requests_finished_total"),
        "metrics endpoint must expose the finished counter"
    );
    let page = http_get(addr, "/").expect("GET /");
    assert!(
        page.contains("<svg"),
        "served dashboard must match the file"
    );
    println!("serving dashboard + metrics at http://{addr}/");

    // --- The same observability on the real engine ----------------------
    let model = Model::random(&TinyConfig::small(), 23);
    let tiny_obs = Arc::new(ObserverSink::new(5.0, 1.0, 0.5, 64));
    let sink: Arc<dyn TelemetrySink> = tiny_obs.clone();
    let mut batcher = ContinuousBatcher::new(model, 4096).with_sink(sink, 0);
    for i in 0..6u64 {
        batcher.submit(GenRequest {
            id: i,
            prompt: vec![1 + i as u32 % 5, 2, 3, 4],
            max_new: 12,
        });
    }
    let done = batcher.run_to_completion();
    let tiny_stats = tiny_obs.stats();
    println!(
        "tinyllm (wall clock): {} generations, windowed TTFT p50 {:.1} ms",
        done.len(),
        tiny_stats.ttft_p50.unwrap_or(0.0) * 1e3
    );

    // --- Optionally stay up for an external probe -----------------------
    let serve_secs: u64 = std::env::var("OBSERVATORY_SERVE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if serve_secs > 0 {
        println!("serving for up to {serve_secs}s (GET /quit to stop early)");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(serve_secs);
        while std::time::Instant::now() < deadline && !server.is_shutdown() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }
    server.stop();
    println!("observatory done");
}
