//! Property tests for the always-on self-profiler (`crates/prof`).
//!
//! Two contracts the rest of the system leans on:
//!
//! 1. **Fold well-formedness** — whatever arbitrary nesting a program
//!    runs (straight-line, recursive, early returns via `?`, panics
//!    unwinding through open guards), the thread's scope stack is
//!    depth-balanced afterwards and the snapshot folds to well-formed
//!    `a;b;c <self_ns>` lines whose self times re-sum to the total
//!    *exactly*.
//! 2. **Heisenberg guard** — enabling the profiler must never change
//!    what the profiled system computes: a routed `ScaleSim` run is
//!    bit-identical (every `ScaleOutcome` field) with profiling on and
//!    off.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use proptest::prelude::*;

use distserve::prof;
use distserve::router::{
    Assignment, FleetSpec, RouterPolicy, ScaleOutcome, ScaleSim, ScaleSlo, ServiceProfile,
};
use distserve::workload::{Dataset, RequestStream};

/// Case count from `PROPTEST_CASES`, falling back to `default`.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The profiler's gate and registry are process-global; tests that
/// toggle them must not interleave.
fn lock_prof() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Scope names the generated programs draw from. `&'static str` is part
/// of the profiler's contract, so programs pick from a fixed palette.
const NAMES: &[&str] = &["pp_a", "pp_b", "pp_c", "pp_d", "pp_e"];

/// Interprets one opcode stream as a scope program using an explicit
/// guard stack: `op % 3 == 0` pushes a scope, `1` pops one, `2` runs a
/// leaf scope. Unclosed guards unwind in LIFO order at the end — the
/// "early return with scopes still open" shape.
fn run_stack_program(ops: &[u8]) {
    let mut stack = Vec::new();
    for &op in ops {
        match op % 3 {
            0 => {
                if stack.len() < 12 {
                    stack.push(prof::scope(NAMES[(op / 3) as usize % NAMES.len()]));
                }
            }
            1 => {
                drop(stack.pop());
            }
            _ => {
                let _leaf = prof::scope(NAMES[(op / 3) as usize % NAMES.len()]);
            }
        }
    }
    while let Some(g) = stack.pop() {
        drop(g);
    }
}

/// Recursive descent with a `?`-style early return at `fail_depth`:
/// every frame holds a live guard when the error propagates up through
/// all of them.
fn run_recursive(path: &[u8], depth: usize, fail_depth: Option<usize>) -> Result<(), ()> {
    let Some(&name) = path.get(depth) else {
        return Ok(());
    };
    let _g = prof::scope(NAMES[name as usize % NAMES.len()]);
    if fail_depth == Some(depth) {
        return Err(());
    }
    run_recursive(path, depth + 1, fail_depth)
}

/// Panic unwinding through open guards must also rebalance the stack.
fn run_panicking(path: &[u8]) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _outer = prof::scope(NAMES[0]);
        for &name in path {
            let _inner = prof::scope(NAMES[name as usize % NAMES.len()]);
        }
        let _deep = prof::scope(NAMES[1]);
        panic!("unwind through open scopes");
    }));
    assert!(result.is_err(), "program is expected to panic");
}

/// Asserts every folded line parses as `seg(;seg)* <u64>` with
/// non-empty segments, and that lines rooted in the program palette
/// never nest deeper than the interpreter's depth bound.
fn assert_folded_well_formed(folded: &str) {
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("folded line has a count");
        count.parse::<u64>().expect("folded count is a bare u64");
        let segs: Vec<&str> = path.split(';').collect();
        assert!(!segs.is_empty(), "folded path has segments: {line:?}");
        for seg in &segs {
            assert!(!seg.is_empty(), "no empty path segment: {line:?}");
            assert!(
                !seg.contains(' '),
                "segment must not eat the separator: {line:?}"
            );
        }
        if NAMES.contains(&segs[0]) {
            assert!(
                segs.len() <= 14,
                "program scopes respect the depth bound: {line:?}"
            );
            assert!(
                segs.iter().all(|s| NAMES.contains(s)),
                "program subtrees contain only palette names: {line:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// Arbitrary push/pop/leaf programs leave the thread depth-balanced
    /// and fold to well-formed stacks whose self times re-sum exactly.
    #[test]
    fn stack_programs_fold_well_formed(ops in prop::collection::vec(any::<u8>(), 0..200)) {
        let _guard = lock_prof();
        prof::reset();
        prof::set_enabled(true);
        run_stack_program(&ops);
        prof::set_enabled(false);
        prop_assert_eq!(prof::depth(), 0, "guard stack must rebalance");
        let profile = prof::snapshot();
        assert_folded_well_formed(&profile.folded());
        prop_assert_eq!(
            profile.self_ns_sum(),
            profile.total_ns(),
            "leaf self times re-sum to the root total exactly"
        );
    }

    /// Early returns (`?`) and panic unwinds drop every open guard and
    /// restore depth 0, however deep the failure happened.
    #[test]
    fn early_exits_rebalance_the_stack(
        path in prop::collection::vec(any::<u8>(), 1..10),
        fail_at in any::<u8>(),
        use_panic in any::<bool>(),
    ) {
        let _guard = lock_prof();
        prof::set_enabled(true);
        if use_panic {
            run_panicking(&path);
        } else {
            let fail_depth = fail_at as usize % path.len();
            prop_assert_eq!(run_recursive(&path, 0, Some(fail_depth)), Err(()));
        }
        prof::set_enabled(false);
        prop_assert_eq!(prof::depth(), 0, "early exit must rebalance the stack");
        let profile = prof::snapshot();
        prop_assert_eq!(profile.self_ns_sum(), profile.total_ns());
    }
}

/// One routed scale run, small enough for a property-test loop.
fn routed_outcome(n: usize, arrival_seed: u64, sim_seed: u64) -> ScaleOutcome {
    let fleet = FleetSpec {
        prefill: 2,
        decode: 3,
        colocated: 2,
        profile: ServiceProfile::a100_13b(),
    };
    let policy = RouterPolicy {
        queue_cap: 4,
        max_wait_secs: 0.5,
        retry_gap_secs: 0.1,
        ..RouterPolicy::default()
    };
    let slo = ScaleSlo {
        ttft_s: 0.4,
        tpot_s: 0.1,
    };
    let stream = RequestStream::poisson(Dataset::ShareGpt.sampler(), 80.0, arrival_seed).take(n);
    ScaleSim::new(fleet, policy, slo, Assignment::Routed, sim_seed).run(stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// The profiler observes; it must never steer. A routed sim run
    /// yields bit-identical outcomes with profiling off and on.
    #[test]
    fn profiler_never_perturbs_sim_results(
        arrival_seed in 0u64..1_000_000,
        sim_seed in 0u64..1_000_000,
    ) {
        let _guard = lock_prof();
        prof::set_enabled(false);
        let off = routed_outcome(2_000, arrival_seed, sim_seed);
        prof::set_enabled(true);
        let on = routed_outcome(2_000, arrival_seed, sim_seed);
        prof::set_enabled(false);
        prop_assert_eq!(
            format!("{off:?}"),
            format!("{on:?}"),
            "profiling must not change any outcome field"
        );
    }
}
