//! Property tests for the router's pure decision core.
//!
//! The core contract (`route(&RouterState, &RequestFeatures) ->
//! Decision` is total, deterministic, and safe) is exercised over
//! randomized fleets and requests:
//!
//! - routing never selects a Down/Draining/Recovering replica;
//! - admission-control sheds only happen above the configured capacity
//!   bound (every viable path at/over `queue_cap`) with the wait budget
//!   exhausted;
//! - identical `(RouterState, RequestFeatures, seed)` always yields the
//!   identical `Decision`;
//! - assigned work is conserved end to end — no request is executed
//!   twice or silently dropped — in both the request-granular scale
//!   simulator and the token-granular engine, and engine runs replay
//!   exactly from their decision logs.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (the CI
//! router job runs with `PROPTEST_CASES=512`).

use proptest::prelude::*;

use distserve::cluster::Cluster;
use distserve::core::{serve_trace_replayed, serve_trace_routed, Planner};
use distserve::engine::FidelityConfig;
use distserve::faults::InstanceHealth;
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::observe::ObserverSink;
use distserve::router::{
    route, Assignment, Decision, FleetSpec, ReplicaId, ReplicaRole, ReplicaSnapshot,
    RequestFeatures, RouterPolicy, RouterState, ScaleSim, ScaleSlo, ServiceProfile, ShedReason,
};
use distserve::telemetry::{metrics, TelemetrySink};
use distserve::workload::{Dataset, RequestStream};

/// Case count from `PROPTEST_CASES`, falling back to `default`.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One randomized replica: `(role, health, queue_depth, queued_tokens,
/// inflight_tokens, active_decodes)` selectors.
type ReplicaTuple = (u8, u8, u32, u64, u64, u32);

fn replica_strategy() -> impl Strategy<Value = ReplicaTuple> {
    (
        0u8..3,
        0u8..7,
        0u32..12,
        0u64..20_000,
        0u64..8_192,
        0u32..128,
    )
}

fn fleet_from(entries: Vec<ReplicaTuple>) -> Vec<ReplicaSnapshot> {
    entries
        .into_iter()
        .enumerate()
        .map(
            |(i, (role, health, queue_depth, queued, inflight, active))| {
                let role = match role {
                    0 => ReplicaRole::Prefill,
                    1 => ReplicaRole::Decode,
                    _ => ReplicaRole::Colocated,
                };
                // Weight toward serving states so decisions are common, but
                // cover every health variant.
                let health = match health {
                    0..=2 => InstanceHealth::Up,
                    3 => InstanceHealth::Degraded { slowdown: 2.0 },
                    4 => InstanceHealth::Draining,
                    5 => InstanceHealth::Down,
                    _ => InstanceHealth::Recovering,
                };
                ReplicaSnapshot {
                    id: ReplicaId(i as u32),
                    role,
                    health,
                    queue_depth,
                    queued_tokens: queued,
                    inflight_tokens: inflight,
                    active_decodes: active,
                    kv_utilization: (queued % 100) as f64 / 100.0,
                }
            },
        )
        .collect()
}

/// `(queue_cap, waited_secs, prompt, decode, seed)` request context.
fn request_strategy() -> impl Strategy<Value = (u32, f64, u32, u32, u64)> {
    (
        1u32..8,
        0.0f64..3.0,
        1u32..2_048,
        1u32..512,
        0u64..1_000_000,
    )
}

fn tight_policy(queue_cap: u32) -> RouterPolicy {
    RouterPolicy {
        queue_cap,
        max_wait_secs: 2.0,
        retry_gap_secs: 0.25,
        ..RouterPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// Down/Draining/Recovering replicas are never selected, on either
    /// side of either path, and targets always carry the right role.
    #[test]
    fn route_never_selects_unavailable(
        entries in prop::collection::vec(replica_strategy(), 1..24),
        req in request_strategy(),
    ) {
        let (queue_cap, waited, prompt, decode, seed) = req;
        let fleet = fleet_from(entries);
        let state = RouterState::new(fleet, tight_policy(queue_cap), seed);
        let features = RequestFeatures {
            waited_secs: waited,
            ..RequestFeatures::arrival(seed, prompt, decode)
        };
        match route(&state, &features) {
            Decision::Disagg { prefill, decode } => {
                let p = &state.replicas()[prefill.0 as usize];
                let d = &state.replicas()[decode.0 as usize];
                prop_assert!(p.role == ReplicaRole::Prefill);
                prop_assert!(d.role == ReplicaRole::Decode);
                prop_assert!(p.health.accepts_new_work());
                prop_assert!(d.health.accepts_new_work());
            }
            Decision::Coloc { replica } => {
                let c = &state.replicas()[replica.0 as usize];
                prop_assert!(c.role == ReplicaRole::Colocated);
                prop_assert!(c.health.accepts_new_work());
            }
            Decision::Queue { .. } | Decision::Shed { .. } => {}
        }
    }

    /// Sheds only happen above the capacity bound: an `OverCapacity`
    /// shed requires every viable path to be at/over `queue_cap` AND an
    /// exhausted wait budget; `NoCapablePath` requires that no healthy
    /// path exists at all. Conversely, while any path has headroom the
    /// router must place the request.
    #[test]
    fn sheds_only_above_capacity_bound(
        entries in prop::collection::vec(replica_strategy(), 1..24),
        req in request_strategy(),
    ) {
        let (queue_cap, waited, prompt, decode, seed) = req;
        let fleet = fleet_from(entries);
        let policy = tight_policy(queue_cap);
        let state = RouterState::new(fleet, policy, seed);
        let features = RequestFeatures {
            waited_secs: waited,
            ..RequestFeatures::arrival(seed, prompt, decode)
        };

        let accepting = |role: ReplicaRole| {
            state
                .replicas()
                .iter()
                .any(|r| r.role == role && r.health.accepts_new_work())
        };
        let under_cap = |role: ReplicaRole| {
            state.replicas().iter().any(|r| {
                r.role == role && r.health.accepts_new_work() && r.queue_depth < queue_cap
            })
        };
        let split_open = under_cap(ReplicaRole::Prefill) && accepting(ReplicaRole::Decode);
        let coloc_open = under_cap(ReplicaRole::Colocated);
        let split_exists = accepting(ReplicaRole::Prefill) && accepting(ReplicaRole::Decode);
        let path_exists = split_exists || accepting(ReplicaRole::Colocated);

        match route(&state, &features) {
            Decision::Shed { reason: ShedReason::OverCapacity } => {
                prop_assert!(!split_open && !coloc_open, "shed with headroom available");
                prop_assert!(path_exists, "OverCapacity but no path at all");
                prop_assert!(
                    waited + policy.retry_gap_secs > policy.max_wait_secs,
                    "shed before the wait budget ran out"
                );
            }
            Decision::Shed { reason: ShedReason::NoCapablePath } => {
                prop_assert!(!path_exists, "NoCapablePath with a healthy path");
            }
            Decision::Queue { .. } => {
                prop_assert!(!split_open && !coloc_open, "queued with headroom available");
                prop_assert!(path_exists);
                prop_assert!(waited + policy.retry_gap_secs <= policy.max_wait_secs);
            }
            Decision::Disagg { .. } | Decision::Coloc { .. } => {
                prop_assert!(split_open || coloc_open);
            }
        }
    }

    /// Identical `(RouterState, RequestFeatures, seed)` — including a
    /// state rebuilt from scratch from the same snapshots — always
    /// yields the identical `Decision`.
    #[test]
    fn route_is_deterministic(
        entries in prop::collection::vec(replica_strategy(), 1..24),
        req in request_strategy(),
    ) {
        let (queue_cap, waited, prompt, decode, seed) = req;
        let fleet = fleet_from(entries);
        let policy = tight_policy(queue_cap);
        let features = RequestFeatures {
            waited_secs: waited,
            ..RequestFeatures::arrival(seed, prompt, decode)
        };
        let a = RouterState::new(fleet.clone(), policy, seed);
        let b = RouterState::new(fleet, policy, seed);
        let first = route(&a, &features);
        prop_assert_eq!(route(&a, &features), first, "same state, same call");
        prop_assert_eq!(route(&b, &features), first, "rebuilt state");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64).clamp(8, 256)))]

    /// Conservation through the scale simulator: every offered request
    /// is either completed or shed — none executed twice, none dropped.
    /// The workload streams straight from the generator (no Vec).
    #[test]
    fn scale_sim_conserves_work(
        rates in (5.0f64..80.0, 1u32..3, 1u32..3, 0u32..3, 0u64..1_000),
    ) {
        let (rate, prefill, decode, colocated, seed) = rates;
        let n = 600usize;
        let fleet = FleetSpec {
            prefill,
            decode,
            colocated,
            profile: ServiceProfile::a100_13b(),
        };
        let stream =
            RequestStream::poisson(Dataset::ShareGpt.sampler(), rate, seed).take(n);
        let out = ScaleSim::new(
            fleet,
            RouterPolicy { queue_cap: 4, max_wait_secs: 0.5, retry_gap_secs: 0.1, ..RouterPolicy::default() },
            ScaleSlo { ttft_s: 0.4, tpot_s: 0.1 },
            Assignment::Routed,
            seed,
        )
        .run(stream);
        prop_assert_eq!(out.offered, n as u64);
        prop_assert_eq!(out.completed + out.shed, out.offered);
    }
}

proptest! {
    // The engine property prices every token, so each case is ~three
    // orders of magnitude more work than a decision-core case; scale the
    // budget down while still tracking PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases((cases(64) / 8).clamp(4, 64)))]

    /// Conservation and replayability through the token-granular engine:
    /// offered == completed + rejected + failed, and re-running from the
    /// decision log reproduces the outcome exactly.
    #[test]
    fn engine_routed_conserves_and_replays(
        inputs in (1.0f64..6.0, 1u64..500),
    ) {
        let (rate, seed) = inputs;
        let cost = RooflineModel::a100();
        let cluster = Cluster::single_node(4);
        let arch = OptModel::Opt13B.arch();
        let planner = Planner::new(&cost, &cluster, arch.clone());
        let plan = planner.plan_vllm(ParallelismConfig::SINGLE, 2).unwrap();
        let specs = planner.materialize(&plan).unwrap();
        let trace = distserve::placement::TraceSource::make_trace(
            &Dataset::ShareGpt,
            rate,
            50,
            seed,
        );
        let (outcome, log) = serve_trace_routed(
            &cost,
            &cluster,
            &arch,
            specs.clone(),
            &trace,
            FidelityConfig::ideal(),
            seed,
            RouterPolicy::default(),
            &distserve::telemetry::NOOP,
        )
        .unwrap();
        prop_assert_eq!(
            outcome.records.len() + outcome.rejected.len() + outcome.failed.len(),
            trace.len(),
            "request lost or duplicated"
        );
        let (replayed, replay_log) = serve_trace_replayed(
            &cost,
            &cluster,
            &arch,
            specs,
            &trace,
            FidelityConfig::ideal(),
            seed,
            &log,
            &distserve::telemetry::NOOP,
        )
        .unwrap();
        prop_assert_eq!(replayed.records, outcome.records);
        prop_assert_eq!(replayed.rejected, outcome.rejected);
        prop_assert_eq!(replayed.failed, outcome.failed);
        prop_assert_eq!(replay_log, log, "replay must re-emit the identical log");
    }
}

/// The tentpole's observe integration: per-instance load read from
/// `ObserverSink` windows feeds `ReplicaSnapshot`s, and the router
/// steers to the instance the window says is idle.
#[test]
fn observe_load_snapshot_feeds_routing() {
    let obs = ObserverSink::new(0.25, 0.1, 1.0, 16);
    obs.declare_track(0, "prefill[0]");
    obs.declare_track(1, "prefill[1]");
    obs.declare_track(2, "decode[2]");
    obs.event(distserve::telemetry::Event {
        request: 1,
        tenant: 0,
        time_s: 5.0,
        kind: distserve::telemetry::LifecycleEvent::Arrived,
    });
    obs.gauge_set(metrics::PREFILL_QUEUE_TOKENS, 0, 6_000.0);
    obs.gauge_set(metrics::PREFILL_QUEUE_TOKENS, 1, 12.0);
    obs.gauge_set(metrics::DECODE_LOAD, 2, 3.0);

    let roles = [
        ReplicaRole::Prefill,
        ReplicaRole::Prefill,
        ReplicaRole::Decode,
    ];
    let replicas: Vec<ReplicaSnapshot> = obs
        .load_snapshot()
        .into_iter()
        .map(|l| ReplicaSnapshot {
            id: ReplicaId(l.track),
            role: roles[l.track as usize],
            health: InstanceHealth::Up,
            queue_depth: 0,
            queued_tokens: l.queued_tokens as u64,
            inflight_tokens: 0,
            active_decodes: l.decode_load as u32,
            kv_utilization: l.kv_utilization,
        })
        .collect();
    let state = RouterState::new(replicas, RouterPolicy::default(), 9);
    let d = route(&state, &RequestFeatures::arrival(0, 512, 64));
    assert_eq!(
        d,
        Decision::Disagg {
            prefill: ReplicaId(1),
            decode: ReplicaId(2)
        },
        "router must prefer the instance the observe window reports idle"
    );
}
