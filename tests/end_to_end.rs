//! End-to-end integration: plan → materialize → serve, across systems.

use distserve::cluster::Cluster;
use distserve::core::{rate_sweep, serve_trace, Application, Planner};
use distserve::engine::{FidelityConfig, InstanceSpec};
use distserve::models::RooflineModel;
use distserve::placement::alg1::SearchParams;
use distserve::placement::deploy::Deployment;
use distserve::placement::goodput::{max_goodput, probe_count_with};
use distserve::placement::TraceSource;

/// Per-GPU goodput of a fixed deployment measured with the full
/// simulator: the largest per-GPU rate whose attainment meets the target.
fn per_gpu_goodput(
    cost: &RooflineModel,
    cluster: &Cluster,
    app: Application,
    specs: &[InstanceSpec],
) -> f64 {
    let arch = app.model().arch();
    let slo = app.slo();
    let gpus: u32 = specs.iter().map(InstanceSpec::num_gpus).sum();
    let total = max_goodput(
        |rate| {
            let n = probe_count_with(rate, 200, 60.0);
            let trace = app.dataset().make_trace(rate, n, 13);
            serve_trace(
                cost,
                cluster,
                &arch,
                specs.to_vec(),
                &trace,
                FidelityConfig::ideal(),
                13,
            )
            .map(|o| o.attainment(slo.ttft, slo.tpot))
            .unwrap_or(0.0)
        },
        slo.target,
        0.5,
        6,
    );
    total / f64::from(gpus)
}

fn quick_params() -> SearchParams {
    SearchParams {
        max_tp: 4,
        max_pp: 2,
        probe_requests: 256,
        probe_secs: 60.0,
        search_iters: 6,
        ..SearchParams::default()
    }
}

#[test]
fn chatbot_13b_full_pipeline() {
    let app = Application::ChatbotOpt13B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = quick_params();
    let deployment = planner
        .plan_distserve(&app.dataset(), slo, 8.0)
        .expect("13B chatbot plans");
    let specs = planner.materialize(&deployment).expect("fits the testbed");

    // The materialized deployment must carry 80% of the planned rate
    // within SLO (planning probes are coarse, so operators run with
    // headroom — §4.3's replanning absorbs drift).
    let trace = app.dataset().make_trace(8.0 * 0.8, 400, 21);
    let outcome = serve_trace(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        21,
    )
    .expect("valid deployment");
    assert_eq!(outcome.records.len(), 400);
    let att = outcome.attainment(slo.ttft, slo.tpot);
    assert!(att >= 0.85, "planned deployment attains only {att}");

    // Every record's timeline must be ordered and self-consistent.
    for r in &outcome.records {
        assert!(r.prefill_start >= r.arrival);
        assert!(r.first_token >= r.prefill_start);
        assert!(r.transfer_done >= r.first_token);
        assert!(r.decode_start >= r.transfer_done);
        assert!(r.completion >= r.decode_start);
        let b = r.breakdown();
        assert!((b.total() - r.total_latency()).abs() < 1e-9);
    }
}

#[test]
fn disaggregation_dominates_colocation_latency() {
    // The paper's core claim (Figures 1 and 8), asserted as tail-latency
    // dominance at a matched per-GPU rate: disaggregation removes the
    // prefill-decoding interference, so both P90 TTFT and P90 TPOT are
    // lower than the colocated baseline's. (Goodput *factors* are noisy
    // near flat attainment curves; the figure harnesses report them.)
    let app = Application::ChatbotOpt13B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = quick_params();

    let distserve = planner
        .plan_distserve(&app.dataset(), slo, 8.0)
        .expect("plans");
    let ds_specs = planner.materialize(&distserve).expect("fits");
    let ds_gpus: u32 = ds_specs.iter().map(InstanceSpec::num_gpus).sum();
    let vllm = planner.plan_vllm(app.vllm_parallelism(), 1).expect("valid");
    let vllm_specs = planner.materialize(&vllm).expect("fits");

    // A per-GPU rate where the colocated baseline is pressured but not
    // collapsed.
    let per_gpu_rate = 1.5;
    let run = |specs: Vec<InstanceSpec>, gpus: u32, seed: u64| {
        let rate = per_gpu_rate * f64::from(gpus);
        let trace = app
            .dataset()
            .make_trace(rate, ((rate * 60.0) as usize).max(300), seed);
        serve_trace(
            &cost,
            &cluster,
            &arch,
            specs,
            &trace,
            FidelityConfig::ideal(),
            seed,
        )
        .expect("valid deployment")
    };
    for seed in [13u64, 14, 15] {
        let ds = run(ds_specs.clone(), ds_gpus, seed);
        let vl = run(vllm_specs.clone(), 1, seed);
        // Interference removal shows directly in the first token: the
        // dedicated prefill instances keep tail TTFT below the colocated
        // baseline's.
        let ds_ttft = ds.ttft_summary().percentile(0.9);
        let vl_ttft = vl.ttft_summary().percentile(0.9);
        assert!(
            ds_ttft < vl_ttft,
            "seed {seed}: DS P90 TTFT {ds_ttft:.3} !< vLLM {vl_ttft:.3}"
        );
        // Decoding batches *up to* the TPOT SLO (that is the point of the
        // dedicated decode instance): raw TPOT may exceed the lightly
        // loaded baseline's, but it must respect the SLO.
        let ds_tpot = ds.tpot_summary().percentile(0.9);
        assert!(
            ds_tpot <= slo.tpot,
            "seed {seed}: DS P90 TPOT {ds_tpot:.4} > SLO {:.4}",
            slo.tpot
        );
        // And the joint SLO attainment never regresses vs the baseline.
        let a_ds = ds.attainment(slo.ttft, slo.tpot);
        let a_vl = vl.attainment(slo.ttft, slo.tpot);
        assert!(
            a_ds >= a_vl - 0.02,
            "seed {seed}: DS attainment {a_ds:.3} below vLLM {a_vl:.3}"
        );
    }
}

#[test]
fn summarization_shows_large_factor() {
    // §6.2: the long-prompt workload is where colocation hurts most —
    // vLLM's TPOT attainment collapses while DistServe's holds.
    let app = Application::SummarizationOpt66B;
    let cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = quick_params();

    let vllm = planner.plan_vllm(app.vllm_parallelism(), 1).expect("valid");
    let vllm_specs = planner.materialize(&vllm).expect("fits");
    let g_vl = per_gpu_goodput(&cost, &cluster, app, &vllm_specs);

    let distserve = planner
        .plan_distserve(&app.dataset(), slo, g_vl * 8.0)
        .expect("plans");
    let ds_specs = planner.materialize(&distserve).expect("fits");
    let g_ds = per_gpu_goodput(&cost, &cluster, app, &ds_specs);

    // §6.2 reports 4.48x on this workload; our synthetic LongBench and
    // calibrated engine land a smaller but clear win (~1.5x, see
    // EXPERIMENTS.md).
    assert!(
        g_ds > 1.3 * g_vl,
        "DistServe {g_ds:.3} rps/GPU vs vLLM {g_vl:.3} rps/GPU"
    );

    // And vLLM's failure past its knee is TPOT-driven (decoding starved
    // by long prefills).
    let pts = rate_sweep(
        &cost,
        &cluster,
        &arch,
        &vllm_specs,
        &app.dataset(),
        slo,
        &[g_vl * 2.0],
        300,
        9,
    )
    .unwrap();
    assert!(
        pts[0].tpot_attainment < 0.9,
        "expected vLLM TPOT collapse past the knee, got {}",
        pts[0].tpot_attainment
    );
}

#[test]
fn high_affinity_plan_on_ib_cluster() {
    // On an InfiniBand cluster the planner uses Algorithm 1 and the
    // resulting cross-node-capable deployment still meets its SLOs.
    let app = Application::ChatbotOpt13B;
    let cluster = Cluster::high_affinity(4, 8);
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();

    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = quick_params();
    let deployment = planner
        .plan_distserve(&app.dataset(), slo, 6.0)
        .expect("plans");
    assert!(matches!(deployment, Deployment::High(_)));
    let specs = planner.materialize(&deployment).expect("fits");
    // Serve with 20% headroom below the planned rate.
    let trace = app.dataset().make_trace(6.0 * 0.8, 300, 33);
    let outcome = serve_trace(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        33,
    )
    .unwrap();
    let att = outcome.attainment(slo.ttft, slo.tpot);
    assert!(att >= 0.8, "attainment {att}");
}

/// Golden replay gate: a routed run's decision log is serialized JSON;
/// this fixture pins the exact decisions for a fixed (config, trace,
/// seed) triple, and re-running from the fixture must reproduce the
/// live outcome record-for-record. Regenerate deliberately with
/// `UPDATE_GOLDEN=1 cargo test --test end_to_end golden_replay` after
/// any intentional routing change.
#[test]
fn golden_replay_fixture_reproduces_routed_run() {
    use distserve::core::{serve_trace_replayed, serve_trace_routed};
    use distserve::models::{OptModel, ParallelismConfig};
    use distserve::router::{log_from_json, log_to_json, RouterPolicy};
    use distserve::workload::Dataset;

    let cost = RooflineModel::a100();
    let cluster = Cluster::single_node(4);
    let arch = OptModel::Opt13B.arch();
    let planner = Planner::new(&cost, &cluster, arch.clone());
    let plan = planner
        .plan_vllm(ParallelismConfig::SINGLE, 2)
        .expect("plans");
    let specs = planner.materialize(&plan).expect("fits");
    let trace = Dataset::ShareGpt.make_trace(3.0, 40, 21);

    let (live, log) = serve_trace_routed(
        &cost,
        &cluster,
        &arch,
        specs.clone(),
        &trace,
        FidelityConfig::ideal(),
        21,
        RouterPolicy::default(),
        &distserve::telemetry::NOOP,
    )
    .expect("routed run");
    let json = log_to_json(&log).expect("serializes");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/router_replay.golden.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write fixture");
    }
    let golden = std::fs::read_to_string(path).expect("fixture exists");
    assert_eq!(
        json, golden,
        "decision log drifted from the golden fixture; if the routing \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );

    let fixture_log = log_from_json(&golden).expect("fixture parses");
    let (replayed, replay_log) = serve_trace_replayed(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        21,
        &fixture_log,
        &distserve::telemetry::NOOP,
    )
    .expect("replayed run");
    assert_eq!(replayed.records, live.records, "byte-identical outcome");
    assert_eq!(replayed.rejected, live.rejected);
    assert_eq!(replayed.failed, live.failed);
    assert_eq!(replayed.makespan, live.makespan);
    assert_eq!(replay_log, fixture_log, "replay re-emits the golden log");
}
