//! Integration tests for the observe crate: attribution exactness
//! against the engine's own records across serving modes, windowed
//! attainment accounting of rejections, and wall-clock exactness on
//! the real tinyllm engine.

use std::sync::Arc;

use distserve::cluster::Cluster;
use distserve::engine::{
    ColocatedPolicy, InstanceRole, InstanceSpec, ServingSim, SimConfig, SimOutcome,
};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::observe::{attribute, ObserverSink, Outcome};
use distserve::placement::TraceSource;
use distserve::telemetry::{Recorder, TeeSink, TelemetrySink};
use distserve::workload::datasets::FixedLengths;
use tinyllm::{ContinuousBatcher, GenRequest, Model, TinyConfig};

const EPS: f64 = 1e-9;

fn cost() -> RooflineModel {
    RooflineModel::a100_conservative()
}

fn spec(cluster: &Cluster, role: InstanceRole, gpu: u32) -> InstanceSpec {
    InstanceSpec::new(
        role,
        ParallelismConfig::SINGLE,
        vec![vec![cluster.gpu(0, gpu)]],
    )
    .unwrap()
}

/// Runs a recorded simulation and checks, for every finished request,
/// that the attribution components telescope exactly to the engine's
/// own TTFT and end-to-end figures.
fn check_exactness(label: &str, cfg: SimConfig, cluster: &Cluster, specs: Vec<InstanceSpec>) {
    let cost = cost();
    let trace = FixedLengths {
        input_len: 384,
        output_len: 24,
    }
    .make_trace(12.0, 120, 11);
    let rec = Recorder::new();
    let out: SimOutcome = ServingSim::new(cfg, &cost, cluster, specs)
        .unwrap()
        .with_sink(&rec)
        .run(&trace);
    assert_eq!(out.records.len(), 120, "{label}: lost requests");

    let by_id: std::collections::HashMap<u64, _> =
        out.records.iter().map(|r| (r.id.0, r)).collect();
    let snap = rec.snapshot();
    let lifecycles = snap.lifecycles();
    assert_eq!(lifecycles.len(), 120, "{label}: lifecycles missing");

    for (key, lc) in &lifecycles {
        let attr = attribute(lc).unwrap_or_else(|e| panic!("{label}: request {key}: {e}"));
        assert_eq!(attr.outcome, Outcome::Finished);
        let r = by_id[key];

        let ttft = attr.ttft.expect("finished request has a TTFT");
        let parts = ttft.batch_formation + ttft.queueing + ttft.exec + ttft.migration;
        assert!(
            (parts - ttft.total).abs() < EPS,
            "{label}: request {key}: TTFT parts {parts} != total {}",
            ttft.total
        );
        assert!(
            (ttft.total - r.ttft()).abs() < EPS,
            "{label}: request {key}: attributed TTFT {} != engine {}",
            ttft.total,
            r.ttft()
        );

        let dec = attr.decode.expect("finished request has a decode phase");
        let parts = dec.migration_wait + dec.migration + dec.queueing + dec.step_exec + dec.stall;
        assert!(
            (parts - dec.total).abs() < EPS,
            "{label}: request {key}: decode parts {parts} != total {}",
            dec.total
        );

        let e2e = r.completion.since(r.arrival);
        assert!(
            (ttft.total + dec.total - attr.end_to_end).abs() < EPS
                && (attr.end_to_end - e2e).abs() < EPS,
            "{label}: request {key}: TTFT {} + decode {} != end-to-end {e2e}",
            ttft.total,
            dec.total
        );
    }
}

#[test]
fn attribution_exact_on_disaggregated_serving() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    check_exactness(
        "disagg",
        SimConfig::new(OptModel::Opt13B.arch()),
        &cluster,
        specs,
    );
}

#[test]
fn attribution_exact_on_colocated_serving() {
    let cluster = Cluster::single_node(1);
    let specs = vec![spec(&cluster, InstanceRole::Colocated, 0)];
    check_exactness(
        "coloc",
        SimConfig::new(OptModel::Opt13B.arch()),
        &cluster,
        specs,
    );
}

#[test]
fn attribution_exact_on_chunked_prefill_serving() {
    let cluster = Cluster::single_node(1);
    let specs = vec![
        spec(&cluster, InstanceRole::Colocated, 0).with_policy(ColocatedPolicy {
            chunked_prefill: Some(256),
            ..ColocatedPolicy::default()
        }),
    ];
    check_exactness(
        "chunked",
        SimConfig::new(OptModel::Opt13B.arch()),
        &cluster,
        specs,
    );
}

/// Rejections must count against windowed attainment and goodput: with
/// SLOs so loose every *finished* request meets them, attainment still
/// sits below 1.0 by exactly the rejected fraction.
#[test]
fn windowed_attainment_counts_rejections_as_misses() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let cost = cost();
    let trace = FixedLengths {
        input_len: 512,
        output_len: 16,
    }
    .make_trace(80.0, 120, 5);
    let obs = ObserverSink::new(1e9, 1e9, 1.0, 4096);
    let out = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()).with_admission_cap(4),
        &cost,
        &cluster,
        specs,
    )
    .unwrap()
    .with_sink(&obs)
    .run(&trace);
    assert!(!out.rejected.is_empty(), "cap must reject under this load");

    let stats = obs.stats();
    assert_eq!(stats.finished, out.records.len() as u64);
    assert_eq!(stats.rejected, out.rejected.len() as u64);
    assert_eq!(stats.requests, 120);
    let expected = out.records.len() as f64 / 120.0;
    assert!(
        (stats.attainment - expected).abs() < EPS,
        "attainment {} should equal finished fraction {expected}",
        stats.attainment
    );
    assert!(stats.attainment < 1.0);
    // The engine's own attainment agrees with the windowed view.
    assert!((out.attainment(1e9, 1e9) - stats.attainment).abs() < EPS);
}

/// Wall-clock telemetry from the real engine must attribute exactly
/// too: the decomposition is built by telescoping, so even with OS
/// timer jitter in the stamps, components re-sum to the recorded
/// end-to-end figure within a timer tick.
#[test]
fn tinyllm_wall_clock_attribution_is_exact() {
    const TICK: f64 = 1e-6; // one microsecond — a generous timer tick
    let model = Model::random(&TinyConfig::small(), 17);
    let rec = Arc::new(Recorder::new());
    let obs = Arc::new(ObserverSink::new(10.0, 10.0, 0.5, 64));
    let tee: Arc<dyn TelemetrySink> = Arc::new(TeeSink::new(vec![
        rec.clone() as Arc<dyn TelemetrySink>,
        obs.clone() as Arc<dyn TelemetrySink>,
    ]));
    let mut batcher = ContinuousBatcher::new(model, 4096).with_sink(tee, 0);
    for i in 0..6u64 {
        batcher.submit(GenRequest {
            id: i,
            prompt: vec![1 + i as u32 % 5, 2, 3],
            max_new: 8,
        });
    }
    let done = batcher.run_to_completion();
    assert_eq!(done.len(), 6);

    let snap = rec.snapshot();
    let lifecycles = snap.lifecycles();
    assert_eq!(lifecycles.len(), 6);
    for (key, lc) in &lifecycles {
        let attr = attribute(lc).unwrap_or_else(|e| panic!("tinyllm request {key}: {e}"));
        let ttft = attr.ttft.expect("ttft");
        let dec = attr.decode.expect("decode");
        let parts = ttft.batch_formation
            + ttft.queueing
            + ttft.exec
            + ttft.migration
            + dec.migration_wait
            + dec.migration
            + dec.queueing
            + dec.step_exec
            + dec.stall;
        assert!(
            (parts - attr.end_to_end).abs() < TICK,
            "tinyllm request {key}: parts {parts} != end-to-end {}",
            attr.end_to_end
        );
    }
    // The live window saw the same six requests finish.
    let stats = obs.stats();
    assert_eq!(stats.finished, 6);
    assert_eq!(stats.rejected, 0);
}
