//! Tracing-pipeline gates: tail-sampling determinism and flat memory.
//!
//! The tracing design leans on two load-bearing claims:
//!
//! 1. **Determinism.** Trace ids are pure functions of `(seed, request
//!    id)` and the reservoir is a salted hash of the trace id, so two
//!    runs of the same seeded simulation — router state rebuilt from
//!    scratch each time — must keep the *identical* set of traces,
//!    span for span. Anything less and a trace file cannot be joined
//!    to a decision log after the fact.
//! 2. **Flat RSS.** The tail sampler buffers spans in pooled arenas
//!    bounded by live requests, so tracing a multi-million-request
//!    `ScaleSim` run must not grow memory with request count.
//!
//! Case counts honor `PROPTEST_CASES`; the RSS gate scales with
//! `TRACE_RSS_REQUESTS` (CI runs the 10M-request version).

use std::sync::Arc;

use proptest::prelude::*;

use distserve::router::{Assignment, FleetSpec, RouterPolicy, ScaleSim, ScaleSlo, ServiceProfile};
use distserve::telemetry::NO_PARENT;
use distserve::trace::{TailSampler, TailSamplerConfig};
use distserve::workload::{Dataset, RequestStream};

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One traced run: fresh sim (router state rebuilt from scratch), fresh
/// sampler, fixed seeds throughout. Returns each kept trace as
/// `(trace_id, span count, root payload)`, sorted.
fn traced_run(
    sim_seed: u64,
    stream_seed: u64,
    rate: f64,
    n: usize,
    fleet: FleetSpec,
) -> Vec<(u64, usize, u32)> {
    let sampler = Arc::new(TailSampler::new(TailSamplerConfig {
        sample_every: 64,
        ..TailSamplerConfig::default()
    }));
    let mut sim = ScaleSim::new(
        fleet,
        RouterPolicy {
            queue_cap: 4,
            max_wait_secs: 0.5,
            retry_gap_secs: 0.1,
            ..RouterPolicy::default()
        },
        ScaleSlo {
            ttft_s: 0.4,
            tpot_s: 0.1,
        },
        Assignment::Routed,
        sim_seed,
    );
    sim.set_tracing(sampler.clone(), sim_seed);
    let stream = RequestStream::poisson(Dataset::ShareGpt.sampler(), rate, stream_seed).take(n);
    let out = sim.run(stream);
    assert_eq!(out.completed + out.shed, out.offered, "conservation");

    let mut kept: Vec<(u64, usize, u32)> = sampler
        .take_kept()
        .iter()
        .map(|t| {
            let root = t
                .iter()
                .find(|s| s.ctx.parent == NO_PARENT)
                .expect("kept traces are finalized");
            (root.ctx.trace_id, t.len(), root.payload)
        })
        .collect();
    kept.sort_unstable();
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    /// Two independent traced runs at the same seeds keep the identical
    /// trace set — same trace ids, same span counts, same outcome
    /// flags — even though every piece of state (router, sim, sampler)
    /// was rebuilt in between.
    #[test]
    fn tail_sampled_trace_sets_are_deterministic(
        sim_seed in 0u64..1_000_000,
        stream_seed in 0u64..1_000_000,
        rate in 50.0f64..250.0,
        prefill in 1u32..4,
        colocated in 1u32..4,
    ) {
        let fleet = FleetSpec {
            prefill,
            decode: prefill.max(1),
            colocated,
            profile: ServiceProfile::a100_13b(),
        };
        let n = 3_000;
        let a = traced_run(sim_seed, stream_seed, rate, n, fleet);
        let b = traced_run(sim_seed, stream_seed, rate, n, fleet);
        prop_assert!(!a.is_empty(), "overdriven runs must keep traces");
        prop_assert_eq!(a, b);
    }

    /// A different trace seed relabels every trace but keeps the same
    /// simulation outcome — tracing never perturbs the simulation.
    #[test]
    fn trace_seed_never_perturbs_the_simulation(
        seed in 0u64..100_000,
    ) {
        let fleet = FleetSpec {
            prefill: 2,
            decode: 2,
            colocated: 2,
            profile: ServiceProfile::a100_13b(),
        };
        let run = |trace_seed: u64| {
            let sampler = Arc::new(TailSampler::default());
            let mut sim = ScaleSim::new(
                fleet,
                RouterPolicy::default(),
                ScaleSlo { ttft_s: 0.4, tpot_s: 0.1 },
                Assignment::Routed,
                seed,
            );
            sim.set_tracing(sampler, trace_seed);
            let stream =
                RequestStream::poisson(Dataset::ShareGpt.sampler(), 150.0, seed).take(2_000);
            let out = sim.run(stream);
            (out.completed, out.shed, out.slo_ok)
        };
        prop_assert_eq!(run(seed), run(seed ^ 0xDEAD_BEEF));
    }
}

fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The flat-RSS gate: a traced `ScaleSim` run over millions of requests
/// (10M with `TRACE_RSS_REQUESTS=10000000`, CI's setting) must not grow
/// peak RSS by more than 64 MiB — the tail sampler's arenas recycle and
/// the kept set is capped, so memory is O(live requests), not O(n).
#[test]
fn traced_scale_sim_holds_flat_rss() {
    let n: usize = std::env::var("TRACE_RSS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let Some(before) = peak_rss_kib() else {
        eprintln!("no /proc/self/status; skipping RSS assertion");
        return;
    };
    let sampler = Arc::new(TailSampler::new(TailSamplerConfig::default()));
    let mut sim = ScaleSim::new(
        FleetSpec {
            prefill: 6,
            decode: 10,
            colocated: 8,
            profile: ServiceProfile::a100_13b(),
        },
        RouterPolicy {
            queue_cap: 4,
            max_wait_secs: 0.5,
            retry_gap_secs: 0.1,
            ..RouterPolicy::default()
        },
        ScaleSlo {
            ttft_s: 0.4,
            tpot_s: 0.1,
        },
        Assignment::Routed,
        7,
    );
    sim.set_tracing(sampler.clone(), 7);
    let stream = RequestStream::poisson(Dataset::ShareGpt.sampler(), 220.0, 11).take(n);
    let out = sim.run(stream);
    assert_eq!(out.completed + out.shed, out.offered);

    let stats = sampler.stats();
    assert_eq!(stats.finished, out.offered, "every request finalized");
    assert!(stats.kept > 0, "an overdriven run keeps traces");
    assert!(
        stats.kept <= sampler.config().max_kept as u64,
        "kept set respects the cap"
    );
    assert_eq!(stats.live, 0, "no trace left buffering after drain");

    let after = peak_rss_kib().expect("status readable");
    let grew_kib = after.saturating_sub(before);
    assert!(
        grew_kib < 64 * 1024,
        "traced {n}-request run grew peak RSS by {grew_kib} KiB (cap 64 MiB)"
    );
}
