//! Property tests for the radix-tree prefix cache (`crates/prefix`).
//!
//! Three contracts are exercised over randomized workloads:
//!
//! - **Bit-exactness** — driving `tinyllm`'s continuous batcher through
//!   a `PrefixCache` yields token streams byte-identical to a cold run,
//!   on both compute tiers (f32 and int8) at any worker-pool width.
//!   Cached prefill is an optimization, never an approximation.
//! - **Refcount hygiene** — after every sequence finishes, the only
//!   blocks still held are the cache's own references; clearing the
//!   cache returns the KV pool to pristine. No block leaks, ever.
//! - **Eviction safety** — LRU eviction under capacity pressure never
//!   frees (or lets the pool recycle) a block a live sequence still
//!   references: the sequence's KV contents survive arbitrary
//!   insert/evict/release interleavings.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (the CI
//! prefix job runs with an explicit budget).

use std::collections::HashMap;

use proptest::prelude::*;

use distserve::prefix::PrefixCache;
use tinyllm::{
    ComputeConfig, ContinuousBatcher, GenRequest, Model, PagedKv, Precision, TinyConfig,
};

/// Case count from `PROPTEST_CASES`, falling back to `default`.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The batcher's KV block size (fixed in `ContinuousBatcher::new`).
const BS: usize = 16;

/// Workload shape for the engine-level properties: shared system
/// prompts per tenant plus short per-request user suffixes.
#[derive(Debug, Clone)]
struct Shape {
    tenants: usize,
    reqs_per_tenant: usize,
    sys_tokens: usize,
    max_new: usize,
    threads: usize,
    int8: bool,
    seed: u64,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        (
            1usize..4,  // tenants
            1usize..5,  // requests per tenant
            0usize..72, // system-prompt tokens (covers 0 and non-block-aligned)
            1usize..6,  // generated tokens
        ),
        (
            1usize..4, // worker-pool lanes
            any::<bool>(),
            0u64..1_000_000,
        ),
    )
        .prop_map(
            |((tenants, reqs_per_tenant, sys_tokens, max_new), (threads, int8, seed))| Shape {
                tenants,
                reqs_per_tenant,
                sys_tokens,
                max_new,
                threads,
                int8,
                seed,
            },
        )
}

/// Deterministic prompt set for a shape: tenant-shared system prefix,
/// request-unique user suffix (tokens bounded by tiny's vocab of 128).
fn prompts(s: &Shape) -> Vec<(u64, Vec<u32>)> {
    let mut out = Vec::new();
    for t in 0..s.tenants {
        let sys: Vec<u32> = (0..s.sys_tokens)
            .map(|i| ((t * 31 + i * 7 + s.seed as usize) % 128) as u32)
            .collect();
        for r in 0..s.reqs_per_tenant {
            let mut p = sys.clone();
            let user = 1 + (r * 5 + t) % 12;
            p.extend((0..user).map(|i| ((r * 13 + i * 3 + t + 1) % 128) as u32));
            out.push(((t * s.reqs_per_tenant + r) as u64, p));
        }
    }
    out
}

/// Runs the continuous batcher over the shape's prompts, optionally
/// through a prefix cache. Returns `(outputs by id, blocks still held
/// after all sequences finished)`.
fn run_engine(s: &Shape, cache: Option<&mut PrefixCache>) -> (HashMap<u64, Vec<u32>>, usize) {
    let compute = ComputeConfig {
        precision: if s.int8 {
            Precision::Int8
        } else {
            Precision::F32
        },
        threads: s.threads,
    };
    let model = Model::random_with(&TinyConfig::tiny(), s.seed ^ 0x5EED, compute);
    // Budget exactly one maximal prompt per step: prompts longer than
    // the budget are never admitted (livelock), and with block-sized
    // system prompts this forces sequential prefill batches, so later
    // requests hit prefixes inserted by earlier ones.
    let work = prompts(s);
    let budget = work.iter().map(|(_, p)| p.len()).max().unwrap_or(1);
    let mut batcher = ContinuousBatcher::new(model, 4096).with_token_budget(budget);
    for (id, prompt) in work {
        batcher.submit(GenRequest {
            id,
            prompt,
            max_new: s.max_new,
        });
    }
    let finished = match cache {
        Some(c) => batcher.run_to_completion_with(c),
        None => batcher.run_to_completion(),
    };
    let held = batcher.kv_total_blocks() - batcher.kv_free_blocks();
    (
        finished.into_iter().map(|f| (f.id, f.tokens)).collect(),
        held,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Cached and cold runs emit byte-identical token streams for every
    /// request, across both weight precisions and any thread count —
    /// and neither run leaks KV blocks (the warm run's residue is
    /// exactly the cache's own references, reclaimable by `clear`).
    #[test]
    fn cached_matches_cold_bit_exact_and_leak_free(s in shape_strategy()) {
        let (cold, cold_held) = run_engine(&s, None);
        prop_assert_eq!(cold_held, 0, "cold run leaked blocks");

        let mut cache = PrefixCache::new(BS, 128);
        let (warm, warm_held) = run_engine(&s, Some(&mut cache));
        prop_assert_eq!(
            warm_held,
            cache.owned_blocks(),
            "blocks held beyond the cache's own references"
        );

        prop_assert_eq!(cold.len(), warm.len());
        for (id, cold_tokens) in &cold {
            prop_assert_eq!(
                Some(cold_tokens),
                warm.get(id),
                "request {} diverged between cold and cached runs",
                id
            );
        }

        // Shared system prompts of at least one whole block must
        // actually exercise the cache (every tenant's 2nd..nth request
        // can reuse the 1st's blocks).
        if s.sys_tokens >= BS && s.reqs_per_tenant > 1 {
            prop_assert!(cache.stats().hits > 0, "shared prefixes never hit");
        }
    }
}

/// Tiny KV pool for the eviction-safety property: 1 layer, hidden 2.
fn pool(block_size: usize, blocks: usize) -> PagedKv {
    PagedKv::new(1, 2, block_size, blocks)
}

/// Prefills `tokens` for `seq` with recognizable values (`token` in the
/// key's first lane) and returns the sequence's full blocks.
fn fill(kv: &mut PagedKv, seq: u64, tokens: &[u32], block_size: usize) -> Vec<usize> {
    kv.register(seq);
    for (pos, &t) in tokens.iter().enumerate() {
        kv.append(seq, 0, pos, &[t as f32, seq as f32], &[0.0; 2])
            .unwrap();
    }
    kv.block_table(seq).unwrap()[..tokens.len() / block_size].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// Under arbitrary insert/release interleavings against a
    /// capacity-starved cache, eviction only ever drops the cache's own
    /// references: live sequences keep their blocks and their KV
    /// contents, and the final release returns the pool to pristine.
    #[test]
    fn eviction_never_frees_live_referenced_blocks(
        capacity in 1usize..6,
        // Per prompt: (first-token family 0..6, extra blocks 0..4,
        // release the sequence right after insert?)
        plan in prop::collection::vec((0u32..6, 0usize..4, any::<bool>()), 1..12),
    ) {
        let block_size = 4;
        let mut kv = pool(block_size, 256);
        let mut cache = PrefixCache::new(block_size, capacity);
        // Live sequences we intentionally keep: (seq, tokens).
        let mut live: Vec<(u64, Vec<u32>)> = Vec::new();

        for (i, &(family, extra, release)) in plan.iter().enumerate() {
            let seq = i as u64 + 1;
            // Prompts within a family share a leading block; extras
            // diverge, growing chains deep enough to force evictions.
            let mut tokens: Vec<u32> = (0..block_size as u32)
                .map(|j| family * 100 + j)
                .collect();
            for b in 0..extra {
                tokens.extend(
                    (0..block_size as u32).map(|j| family * 100 + seq as u32 * 10 + b as u32 + j),
                );
            }
            let blocks = fill(&mut kv, seq, &tokens, block_size);
            cache.insert(&tokens, &blocks, &mut kv);
            prop_assert!(cache.owned_blocks() <= capacity, "capacity exceeded");

            if release {
                kv.release(seq).unwrap();
            } else {
                live.push((seq, tokens));
            }

            // Every live sequence still owns every one of its blocks,
            // and the contents it wrote are intact — eviction (which
            // has certainly fired once families outgrow `capacity`)
            // never touched a block with a live referent.
            for (s, toks) in &live {
                for (pos, &t) in toks.iter().enumerate() {
                    let key = kv.key(*s, 0, pos);
                    prop_assert_eq!(key[0], t as f32, "seq {} clobbered at pos {}", s, pos);
                    prop_assert_eq!(key[1], *s as f32);
                }
                for &b in kv.block_table(*s).unwrap() {
                    prop_assert!(kv.block_ref_count(b) >= 1, "live block {} freed", b);
                }
            }
        }

        // Teardown in either order leaves no references behind.
        for (s, _) in &live {
            kv.release(*s).unwrap();
        }
        cache.clear(&mut kv);
        prop_assert_eq!(kv.free_blocks(), kv.total_blocks(), "blocks leaked");
        prop_assert_eq!(cache.owned_blocks(), 0);
    }
}
