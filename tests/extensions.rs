//! Regression tests for the extension features (the paper's discussion
//! and future-work items implemented here): GQA, SJF scheduling, chunked
//! prefill, burstiness handling, and sampling.

use distserve::cluster::Cluster;
use distserve::core::serve_trace;
use distserve::engine::{
    ColocatedPolicy, FidelityConfig, InstanceRole, InstanceSpec, ServingSim, SimConfig,
};
use distserve::models::{
    CostModel, DType, DecodeBatch, LlamaModel, ModelArch, OptModel, ParallelismConfig,
    RooflineModel,
};
use distserve::placement::TraceSource;
use distserve::simcore::SimRng;
use distserve::workload::datasets::LengthSampler;
use distserve::workload::{ArrivalProcess, Dataset, TraceBuilder};

fn cost() -> RooflineModel {
    RooflineModel::a100_conservative()
}

fn disagg_specs(cluster: &Cluster) -> Vec<InstanceSpec> {
    vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .unwrap(),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .unwrap(),
    ]
}

#[test]
fn gqa_strictly_cheaper_to_decode() {
    // LLaMA-2-70B (GQA) vs a multi-head twin: every decoding step with
    // meaningful context must be faster, and the KV footprint 8x smaller.
    let gqa = LlamaModel::Llama2_70B.arch();
    let mha = ModelArch::new("mha-70b", 80, 8192, 64, 28_672, 32_000, 4096)
        .unwrap()
        .with_gated_ffn();
    let cost = cost();
    let par = ParallelismConfig::new(4, 1);
    for bs in [16usize, 64, 256] {
        let batch = DecodeBatch::uniform(bs, 512);
        let t_gqa = cost.decode_stage_time(&gqa, par, &batch).total();
        let t_mha = cost.decode_stage_time(&mha, par, &batch).total();
        assert!(t_gqa < t_mha, "bs={bs}: GQA {t_gqa} !< MHA {t_mha}");
    }
    assert_eq!(
        gqa.kv_bytes_per_token(DType::F16) * 8,
        mha.kv_bytes_per_token(DType::F16)
    );
}

/// Bimodal prompts: mostly short, occasionally very long.
#[derive(Debug, Clone, Copy)]
struct Bimodal;

impl LengthSampler for Bimodal {
    fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        if rng.below(10) == 0 {
            (1600, 32)
        } else {
            (128, 32)
        }
    }

    fn name(&self) -> &str {
        "bimodal"
    }
}

#[test]
fn sjf_improves_short_request_tail() {
    let cluster = Cluster::single_node(2);
    let cost = cost();
    let arch = OptModel::Opt13B.arch();
    let mut rng = SimRng::seed(31);
    let trace = TraceBuilder::new(Box::new(Bimodal))
        .rate(6.0)
        .num_requests(600)
        .build(&mut rng);

    let short_p90 = |sjf: bool| {
        let mut cfg = SimConfig::new(arch.clone()).with_seed(31);
        if sjf {
            cfg = cfg.with_sjf_prefill();
        }
        let sim = ServingSim::new(cfg, &cost, &cluster, disagg_specs(&cluster)).unwrap();
        let out = sim.run(&trace);
        let mut short = distserve::simcore::Summary::new();
        for r in &out.records {
            if r.input_len <= 128 {
                short.record(r.ttft());
            }
        }
        short.percentile(0.9)
    };
    let fcfs = short_p90(false);
    let sjf = short_p90(true);
    assert!(
        sjf < fcfs,
        "SJF should cut the short-request tail: {sjf} !< {fcfs}"
    );
}

#[test]
fn chunked_prefill_trades_ttft_for_tpot() {
    // §2.2's claim, as a regression test: versus alternation, chunking
    // lowers P90 TPOT and raises P90 TTFT at the same rate.
    let cluster = Cluster::single_node(1);
    let cost = cost();
    let arch = OptModel::Opt13B.arch();
    let trace = Dataset::ShareGpt.make_trace(1.6, 400, 17);

    let run = |chunk: Option<u32>| {
        let spec = InstanceSpec::new(
            InstanceRole::Colocated,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .unwrap()
        .with_policy(ColocatedPolicy {
            prefill_token_budget: 2048,
            chunked_prefill: chunk,
        });
        serve_trace(
            &cost,
            &cluster,
            &arch,
            vec![spec],
            &trace,
            FidelityConfig::ideal(),
            17,
        )
        .unwrap()
    };
    let alt = run(None);
    let chunked = run(Some(256));
    let (alt_ttft, alt_tpot) = (
        alt.ttft_summary().percentile(0.9),
        alt.tpot_summary().percentile(0.9),
    );
    let (ch_ttft, ch_tpot) = (
        chunked.ttft_summary().percentile(0.9),
        chunked.tpot_summary().percentile(0.9),
    );
    assert!(
        ch_tpot < alt_tpot,
        "chunking should cut TPOT: {ch_tpot} !< {alt_tpot}"
    );
    assert!(
        ch_ttft > alt_ttft,
        "chunking should pay TTFT: {ch_ttft} !> {alt_ttft}"
    );
}

#[test]
fn bursty_arrivals_never_overflow_memory() {
    // §4.3 "combat burstiness": whatever the burst, both KV pools stay
    // within capacity and every request completes.
    let cluster = Cluster::single_node(2);
    let cost = cost();
    let arch = OptModel::Opt13B.arch();
    let mut rng = SimRng::seed(99);
    let trace = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .arrival(ArrivalProcess::bursty(3.0, 4.0))
        .num_requests(500)
        .build(&mut rng);
    let out = serve_trace(
        &cost,
        &cluster,
        &arch,
        disagg_specs(&cluster),
        &trace,
        FidelityConfig::ideal(),
        99,
    )
    .unwrap();
    assert_eq!(out.records.len(), 500);
    for s in &out.instances {
        assert!(
            s.kv_peak_utilization <= 1.0 + 1e-9,
            "KV pool overflowed: {}",
            s.kv_peak_utilization
        );
    }
}

#[test]
fn sampled_generation_is_plausible_and_seeded() {
    use distserve::tinyllm::{Model, Sampler, Sampling, TinyConfig};
    let model = Model::random(&TinyConfig::tiny(), 9);
    let prompt = vec![4, 8, 15];
    let greedy = model.generate(&prompt, 12);
    let mut s1 = Sampler::new(
        Sampling::TopK {
            k: 4,
            temperature: 0.9,
        },
        123,
    );
    let sampled1 = model.generate_with(&prompt, 12, &mut s1);
    let mut s2 = Sampler::new(
        Sampling::TopK {
            k: 4,
            temperature: 0.9,
        },
        123,
    );
    let sampled2 = model.generate_with(&prompt, 12, &mut s2);
    assert_eq!(sampled1, sampled2, "same seed must reproduce");
    assert_eq!(sampled1.len(), greedy.len());
    // Top-1 sampling collapses to greedy.
    let mut s3 = Sampler::new(
        Sampling::TopK {
            k: 1,
            temperature: 1.0,
        },
        7,
    );
    assert_eq!(model.generate_with(&prompt, 12, &mut s3), greedy);
}

#[test]
fn segment_paired_175b_unit_serves_within_slo() {
    // The extension of Algorithm 2 to segment-paired units must produce a
    // deployment that actually serves OPT-175B within its Table-1 SLOs.
    use distserve::placement::alg2::unit_specs;
    let cluster = Cluster::paper_testbed();
    let cost = cost();
    let arch = OptModel::Opt175B.arch();
    let specs = unit_specs(
        &cluster,
        ParallelismConfig::new(3, 3),
        ParallelismConfig::new(4, 3),
    )
    .unwrap();
    let trace = Dataset::ShareGpt.make_trace(1.2, 300, 3);
    let out = serve_trace(
        &cost,
        &cluster,
        &arch,
        specs,
        &trace,
        FidelityConfig::ideal(),
        3,
    )
    .unwrap();
    let att = out.attainment(4.0, 0.2);
    assert!(att >= 0.9, "175B unit attains only {att}");
    // All transfers rode NVLink: wire times must be tiny despite the
    // 25 Gbps cross-node fabric.
    for r in &out.records {
        assert!(
            r.transfer_active < 0.05,
            "transfer took {}s — crossed the slow link?",
            r.transfer_active
        );
    }
}
