//! Cross-crate property-based tests (proptest).
//!
//! These exercise public invariants end-to-end with randomized inputs:
//! request conservation and timeline ordering through the serving
//! simulator, KV-block conservation, latency-model monotonicity, and
//! scheduler/indexing invariants of the real inference engine.

use proptest::prelude::*;

use distserve::cluster::Cluster;
use distserve::engine::{InstanceRole, InstanceSpec, KvBlockManager, ServingSim, SimConfig};
use distserve::faults::{FaultKind, FaultSchedule, RetryPolicy};
use distserve::models::{
    CostModel, DecodeBatch, OptModel, ParallelismConfig, PrefillBatch, RooflineModel,
};
use distserve::simcore::{SimRng, SimTime, Summary};
use distserve::workload::{Request, RequestId, Trace};

fn arb_trace(max_requests: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((1u32..1024, 1u32..128, 0.0f64..30.0), 1..max_requests).prop_map(
        |entries| {
            let requests = entries
                .into_iter()
                .enumerate()
                .map(|(i, (input, output, at))| Request {
                    id: RequestId(i as u64),
                    arrival: SimTime::from_secs(at),
                    input_len: input,
                    output_len: output,
                    tenant: 0,
                })
                .collect();
            Trace::new(requests)
        },
    )
}

fn disagg_specs(cluster: &Cluster) -> Vec<InstanceSpec> {
    vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .unwrap(),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .unwrap(),
    ]
}

/// A wider disaggregated deployment (1 prefill + 2 decode) so fault
/// recovery has survivors to fail over to.
fn wide_disagg_specs(cluster: &Cluster) -> Vec<InstanceSpec> {
    let mut specs = disagg_specs(cluster);
    specs.push(
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 2)]],
        )
        .unwrap(),
    );
    specs
}

/// An arbitrary fault schedule over a 3-instance deployment: each entry
/// is (time, kind selector, instance).
fn arb_faults() -> impl Strategy<Value = Vec<(f64, u8, usize)>> {
    prop::collection::vec((0.0f64..40.0, 0u8..6, 0usize..3), 0..4)
}

fn build_schedule(faults: &[(f64, u8, usize)]) -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    for &(at, kind, instance) in faults {
        let kind = match kind {
            0 => FaultKind::InstanceCrash {
                instance,
                downtime_secs: 3.0,
            },
            1 => FaultKind::GpuLoss { instance },
            2 => FaultKind::LinkDegradation {
                factor: 2.0,
                duration_secs: 5.0,
            },
            3 => FaultKind::Straggler {
                instance,
                factor: 1.8,
                duration_secs: 4.0,
            },
            4 => FaultKind::KvTransferFailure { instance },
            _ => FaultKind::Drain {
                instance,
                maintenance_secs: 2.0,
            },
        };
        schedule.push(at, kind);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serving_sim_conserves_requests(trace in arb_trace(60)) {
        let cluster = Cluster::single_node(2);
        let cost = RooflineModel::a100();
        let sim = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cluster,
            disagg_specs(&cluster),
        ).unwrap();
        let out = sim.run(&trace);
        // Every request completes exactly once, with an ordered timeline.
        prop_assert_eq!(out.records.len(), trace.len());
        for r in &out.records {
            prop_assert!(r.prefill_start >= r.arrival);
            prop_assert!(r.first_token >= r.prefill_start);
            prop_assert!(r.transfer_done >= r.first_token);
            prop_assert!(r.decode_start >= r.transfer_done);
            prop_assert!(r.completion >= r.decode_start);
            prop_assert!(r.ttft() >= 0.0);
            prop_assert!(r.tpot() >= 0.0);
        }
        // KV pools drain completely: peak was recorded but final state
        // must show all tokens produced and nothing stuck.
        let produced: u64 = out.instances.iter().map(|i| i.tokens_out).sum();
        let expected: u64 = trace.requests().iter().map(|r| u64::from(r.output_len)).sum();
        prop_assert_eq!(produced, expected);
    }

    #[test]
    fn chaos_runs_are_deterministic_and_conserve_requests(
        trace in arb_trace(40),
        faults in arb_faults(),
    ) {
        let cluster = Cluster::single_node(3);
        let cost = RooflineModel::a100();
        let schedule = build_schedule(&faults);
        let run = || {
            let sim = ServingSim::new(
                SimConfig::new(OptModel::Opt13B.arch()).with_seed(5),
                &cost,
                &cluster,
                wide_disagg_specs(&cluster),
            ).unwrap();
            sim.with_faults(&schedule, RetryPolicy::default()).run(&trace)
        };
        let a = run();
        let b = run();
        // Identical seed + identical fault schedule ⇒ bit-identical
        // outcomes, faults or not.
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.rejected, &b.rejected);
        prop_assert_eq!(&a.failed, &b.failed);
        prop_assert_eq!(a.makespan, b.makespan);
        // And no request is lost to the chaos: every offered request
        // reaches exactly one terminal state.
        prop_assert_eq!(
            a.records.len() + a.rejected.len() + a.failed.len(),
            trace.len()
        );
    }

    #[test]
    fn colocated_sim_conserves_requests(trace in arb_trace(60)) {
        let cluster = Cluster::single_node(1);
        let cost = RooflineModel::a100();
        let spec = InstanceSpec::new(
            InstanceRole::Colocated,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        ).unwrap();
        let sim = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cluster,
            vec![spec],
        ).unwrap();
        let out = sim.run(&trace);
        prop_assert_eq!(out.records.len(), trace.len());
        for r in &out.records {
            // Colocated serving has no transfer stage.
            prop_assert_eq!(r.transfer_done, r.first_token);
            prop_assert!(r.transfer_active == 0.0);
        }
    }

    #[test]
    fn kv_manager_conserves_blocks(
        ops in prop::collection::vec((0u64..16, 1u32..500), 1..200)
    ) {
        // Alternate alloc/free with random sizes; free blocks plus used
        // blocks must always equal the total.
        let mut kv = KvBlockManager::new(128, 16);
        let mut live: std::collections::HashSet<u64> = Default::default();
        for (id, tokens) in ops {
            let rid = RequestId(id);
            if live.contains(&id) {
                let freed = kv.free(rid).unwrap();
                prop_assert!(freed > 0 || tokens == 0);
                live.remove(&id);
            } else if kv.alloc(rid, tokens).is_ok() {
                live.insert(id);
            }
            prop_assert_eq!(kv.free_blocks() + kv.blocks_in_use(), kv.total_blocks());
            prop_assert_eq!(kv.num_allocations(), live.len());
        }
        for id in live {
            kv.free(RequestId(id)).unwrap();
        }
        prop_assert_eq!(kv.blocks_in_use(), 0);
    }

    #[test]
    fn latency_model_monotone_in_tokens(
        t1 in 16u32..1024,
        extra in 1u32..1024,
        bs in 1usize..64,
        ctx in 16u32..1024,
    ) {
        let cost = RooflineModel::a100();
        let arch = OptModel::Opt13B.arch();
        let par = ParallelismConfig::SINGLE;
        // More prompt tokens never make prefill faster.
        let a = cost.prefill_latency(&arch, par, &PrefillBatch::single(t1)).total();
        let b = cost.prefill_latency(&arch, par, &PrefillBatch::single(t1 + extra)).total();
        prop_assert!(b >= a);
        // A bigger decode batch never takes less time, and never less
        // than proportionally amortizes below the single-request time.
        let d1 = cost.decode_stage_time(&arch, par, &DecodeBatch::uniform(bs, ctx)).total();
        let d2 = cost.decode_stage_time(&arch, par, &DecodeBatch::uniform(bs + 1, ctx)).total();
        prop_assert!(d2 >= d1);
    }

    #[test]
    fn summary_percentiles_match_sorted_reference(
        values in prop::collection::vec(0.0f64..1e6, 1..300),
        p in 0.0f64..=1.0,
    ) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p * (sorted.len() as f64 - 1.0);
        let lo = sorted[rank.floor() as usize];
        let hi = sorted[rank.ceil() as usize];
        let got = s.percentile(p);
        prop_assert!(got >= lo - 1e-9 && got <= hi + 1e-9,
            "p={p}: got {got}, bracket [{lo}, {hi}]");
        prop_assert!((s.max() - sorted[sorted.len() - 1]).abs() < 1e-12);
        prop_assert!((s.min() - sorted[0]).abs() < 1e-12);
    }

    #[test]
    fn tinyllm_batched_equals_standalone(
        seeds in prop::collection::vec(0u32..100u32, 1..4),
        max_new in 2usize..6,
    ) {
        let model = distserve::tinyllm::Model::random(
            &distserve::tinyllm::TinyConfig::tiny(), 5);
        let mut batcher = distserve::tinyllm::ContinuousBatcher::new(model.clone(), 8192);
        let mut expected = Vec::new();
        for (i, s) in seeds.iter().enumerate() {
            let prompt = vec![s % 128, (s * 7 + 1) % 128, 3];
            expected.push(model.generate(&prompt, max_new));
            batcher.submit(distserve::tinyllm::GenRequest {
                id: i as u64,
                prompt,
                max_new,
            });
        }
        let mut done = batcher.run_to_completion();
        done.sort_by_key(|f| f.id);
        for (f, e) in done.iter().zip(&expected) {
            prop_assert_eq!(&f.tokens, e);
        }
    }

    #[test]
    fn rng_split_streams_do_not_collide(seed in 0u64..1_000_000) {
        let parent = SimRng::seed(seed);
        let mut a = parent.split("a");
        let mut b = parent.split("b");
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64_raw()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64_raw()).collect();
        prop_assert_ne!(xs, ys);
    }
}

// The batched engine tier: random architectures and batch shapes, checked
// against the token-at-a-time reference path and the unsharded result.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tinyllm_batched_forward_matches_token_at_a_time(
        heads in 1usize..5,
        head_dim in 2usize..7,
        layers in 1usize..4,
        ffn in 4usize..48,
        vocab in 8usize..48,
        seed in 0u64..1000,
        prompts in prop::collection::vec(
            prop::collection::vec(0u32..1_000_000, 1..6), 1..4),
    ) {
        use distserve::tinyllm::{BatchRow, Model, Scratch, TinyConfig};
        use distserve::tinyllm::tensor::argmax;

        let cfg = TinyConfig {
            layers,
            hidden: heads * head_dim,
            heads,
            ffn,
            vocab,
            max_seq: 32,
        };
        let model = Model::random(&cfg, seed);
        let prompts: Vec<Vec<u32>> = prompts
            .into_iter()
            .map(|p| p.into_iter().map(|t| t % vocab as u32).collect())
            .collect();

        // Reference: each sequence alone, token at a time, then one
        // decode token.
        let mut ref_prefill = Vec::new();
        let mut ref_decode = Vec::new();
        for prompt in &prompts {
            let mut kv = model.make_kv(32, 4);
            kv.register(0);
            let mut logits = Vec::new();
            for (pos, &t) in prompt.iter().enumerate() {
                logits = model.forward_token(0, pos, t, &mut kv);
            }
            ref_prefill.push(logits.clone());
            let next = argmax(&logits) as u32;
            ref_decode.push(model.forward_token(0, prompt.len(), next, &mut kv));
        }

        // Batched: every prompt stacked into ONE prefill batch over a
        // shared cache, then one fused decode batch over all sequences.
        let mut kv = model.make_kv(256, 4);
        let mut scratch = Scratch::new();
        let mut rows = Vec::new();
        let mut last_rows = Vec::new();
        for (s, prompt) in prompts.iter().enumerate() {
            let seq = s as u64;
            kv.register(seq);
            for (pos, &token) in prompt.iter().enumerate() {
                rows.push(BatchRow { seq, pos, token });
            }
            last_rows.push(rows.len() - 1);
        }
        model.forward_batch(&rows, &mut kv, &mut scratch);
        model.logits_batch(&last_rows, &mut scratch);
        let mut decode_rows = Vec::new();
        for (s, prompt) in prompts.iter().enumerate() {
            let batched = scratch.logits_row(s);
            for (a, b) in batched.iter().zip(&ref_prefill[s]) {
                prop_assert!((a - b).abs() < 1e-5, "prefill seq {s}: {a} vs {b}");
            }
            decode_rows.push(BatchRow {
                seq: s as u64,
                pos: prompt.len(),
                token: argmax(batched) as u32,
            });
        }
        model.forward_batch(&decode_rows, &mut kv, &mut scratch);
        let picks: Vec<usize> = (0..decode_rows.len()).collect();
        model.logits_batch(&picks, &mut scratch);
        for (s, expect) in ref_decode.iter().enumerate() {
            for (a, b) in scratch.logits_row(s).iter().zip(expect) {
                prop_assert!((a - b).abs() < 1e-5, "decode seq {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn tinyllm_sharded_partials_sum_to_unsharded(
        world_pow in 0u32..3,
        head_groups in 1usize..4,
        head_dim in 2usize..6,
        layers in 1usize..3,
        ffn_mult in 1usize..5,
        seed in 0u64..1000,
        prompt in prop::collection::vec(0u32..1_000_000, 1..5),
        max_new in 1usize..5,
    ) {
        use distserve::tinyllm::{Model, Shard, TinyConfig};
        use distserve::tinyllm::parallel::generate_tp;

        let world = 1usize << world_pow;
        let cfg = TinyConfig {
            layers,
            hidden: world * head_groups * head_dim,
            heads: world * head_groups,
            ffn: world * ffn_mult * 2,
            vocab: 32,
            max_seq: 32,
        };
        let model = Model::random(&cfg, seed);
        let prompt: Vec<u32> = prompt.into_iter().map(|t| t % 32).collect();

        // Partial sums over shards equal the full-shard computation.
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.37).sin()).collect();
        let xa = model.ln1(0, &x);
        let mut kv_full = model.make_kv(8, 8);
        kv_full.register(0);
        let full = model.attn_partial(0, &xa, 0, 0, &mut kv_full, Shard::full(&cfg));
        let mut sum = vec![0.0f32; cfg.hidden];
        for rank in 0..world {
            let mut kv_s = model.make_kv(8, 8);
            kv_s.register(0);
            let part = model.attn_partial(0, &xa, 0, 0, &mut kv_s, Shard::of(&cfg, rank, world));
            for (s, p) in sum.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full.iter().zip(&sum) {
            prop_assert!((a - b).abs() < 1e-5, "attention partial: {a} vs {b}");
        }
        let xf = model.ln2(0, &x);
        let full_ffn = model.ffn_partial(0, &xf, Shard::full(&cfg));
        let mut sum_ffn = vec![0.0f32; cfg.hidden];
        for rank in 0..world {
            let part = model.ffn_partial(0, &xf, Shard::of(&cfg, rank, world));
            for (s, p) in sum_ffn.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            prop_assert!((a - b).abs() < 1e-5, "ffn partial: {a} vs {b}");
        }

        // End to end: threaded tensor parallelism over the batched tier
        // produces the single-device token stream.
        let reference = model.generate(&prompt, max_new);
        prop_assert_eq!(generate_tp(&model, &prompt, max_new, world), reference);
    }
}
