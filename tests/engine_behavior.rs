//! Targeted behavioral tests of the serving engines: dispatch balance,
//! admission under tiny KV pools, decode-batch overflow, and pull-based
//! transfer backpressure.

use distserve::cluster::Cluster;
use distserve::engine::{InstanceRole, InstanceSpec, ServingSim, SimConfig, SimOutcome};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::placement::TraceSource;
use distserve::workload::datasets::FixedLengths;

fn cost() -> RooflineModel {
    RooflineModel::a100_conservative()
}

fn spec(cluster: &Cluster, role: InstanceRole, gpu: u32) -> InstanceSpec {
    InstanceSpec::new(
        role,
        ParallelismConfig::SINGLE,
        vec![vec![cluster.gpu(0, gpu)]],
    )
    .unwrap()
}

fn run(
    cluster: &Cluster,
    cfg: SimConfig,
    specs: Vec<InstanceSpec>,
    n: usize,
    rate: f64,
) -> SimOutcome {
    let cost = cost();
    let trace = FixedLengths {
        input_len: 256,
        output_len: 32,
    }
    .make_trace(rate, n, 5);
    ServingSim::new(cfg, &cost, cluster, specs)
        .unwrap()
        .run(&trace)
}

#[test]
fn shortest_queue_dispatch_balances_prefill_instances() {
    let cluster = Cluster::single_node(3);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Prefill, 1),
        spec(&cluster, InstanceRole::Decode, 2),
    ];
    // Near joint capacity, so arrivals almost always see outstanding
    // work and the shortest-queue metric actually discriminates. (At low
    // load both counters read zero and ties legitimately go to the first
    // instance.)
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        300,
        25.0,
    );
    // First tokens produced on the two prefill instances should split
    // roughly evenly under shortest-queue dispatch.
    let p0 = out.instances[0].tokens_out as f64;
    let p1 = out.instances[1].tokens_out as f64;
    assert_eq!(p0 + p1, 300.0);
    let imbalance = (p0 - p1).abs() / 300.0;
    assert!(imbalance < 0.2, "prefill imbalance {imbalance}");
    // All decoding happened on the decode instance.
    assert_eq!(out.instances[2].tokens_out, 300 * 31);
}

#[test]
fn least_loaded_dispatch_balances_decode_instances() {
    let cluster = Cluster::single_node(3);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
        spec(&cluster, InstanceRole::Decode, 2),
    ];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        300,
        8.0,
    );
    let d0 = out.instances[1].tokens_out as f64;
    let d1 = out.instances[2].tokens_out as f64;
    assert_eq!(d0 + d1, 300.0 * 31.0);
    let imbalance = (d0 - d1).abs() / (d0 + d1);
    assert!(imbalance < 0.2, "decode imbalance {imbalance}");
}

#[test]
fn decode_overflow_queue_engages_and_drains() {
    // Cap the decode batch far below the concurrency the trace creates:
    // extra requests must wait in the overflow queue and still finish.
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let mut cfg = SimConfig::new(OptModel::Opt13B.arch());
    cfg.max_decode_batch = 4;
    let out = run(&cluster, cfg, specs, 120, 30.0);
    assert_eq!(out.records.len(), 120);
    // With batch 4 and ~30 rps of arrivals, decode queueing must be
    // visible in the breakdown.
    let b = out.breakdown_totals();
    assert!(
        b.decode_queue > 0.0,
        "expected overflow-induced decode queueing"
    );
}

#[test]
fn tiny_decode_pool_backpressures_into_prefill_buffer() {
    // Give the decode instance almost no KV pool by serving a model whose
    // shard almost fills its GPU... simpler: shrink the margin knob so
    // the pool is small relative to demand, then check transfers stall
    // (transfer stage time >> wire time) without losing requests.
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let mut cfg = SimConfig::new(OptModel::Opt13B.arch());
    // A 66% margin leaves only ~3.5 GB of KV pool per instance — room
    // for ~14 concurrent requests against ~20 in steady state.
    cfg.mem_margin = 0.66;
    let out = run(&cluster, cfg, specs, 80, 20.0);
    assert_eq!(out.records.len(), 80, "backpressure must not lose requests");
    let b = out.breakdown_totals();
    // Waiting-to-be-pulled time dwarfs pure wire time.
    let wire: f64 = out.records.iter().map(|r| r.transfer_active).sum();
    assert!(
        b.transfer > 5.0 * wire,
        "expected pull stalls: stage {} vs wire {wire}",
        b.transfer
    );
    // And the decode pool saturated at some point.
    assert!(out.instances[1].kv_peak_utilization > 0.9);
}

#[test]
fn decode_pipeline_groups_interleave() {
    // A pp=2 decode instance forms two micro-batch groups; both must see
    // work and the instance must produce every token.
    let cluster = Cluster::single_node(3);
    let decode = InstanceSpec::new(
        InstanceRole::Decode,
        ParallelismConfig::new(1, 2),
        vec![vec![cluster.gpu(0, 1)], vec![cluster.gpu(0, 2)]],
    )
    .unwrap();
    let specs = vec![spec(&cluster, InstanceRole::Prefill, 0), decode];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        200,
        15.0,
    );
    assert_eq!(out.records.len(), 200);
    assert_eq!(out.instances[1].tokens_out, 200 * 31);
    // Two groups interleaving means at least ~2x the batches a single
    // group of the same size would commit.
    assert!(
        out.instances[1].batches > 62,
        "batches {}",
        out.instances[1].batches
    );
}

#[test]
fn makespan_and_busy_accounting_consistent() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        150,
        10.0,
    );
    // No instance can be busy longer than the simulation ran.
    for s in &out.instances {
        assert!(
            s.busy_secs <= out.makespan.as_secs() + 1e-9,
            "busy {} > makespan {}",
            s.busy_secs,
            out.makespan
        );
    }
    // Completions are ordered and the makespan is the last one.
    let last = out.records.iter().map(|r| r.completion).max().unwrap();
    assert_eq!(last, out.makespan);
}
