//! Targeted behavioral tests of the serving engines: dispatch balance,
//! admission under tiny KV pools, decode-batch overflow, pull-based
//! transfer backpressure, and telemetry lifecycle invariants.

use proptest::prelude::*;

use distserve::cluster::Cluster;
use distserve::engine::{
    ColocatedPolicy, InstanceRole, InstanceSpec, ServingSim, SimConfig, SimOutcome,
};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::placement::TraceSource;
use distserve::simcore::SimTime;
use distserve::telemetry::{metrics, Recorder, Recording};
use distserve::workload::datasets::FixedLengths;
use distserve::workload::{Request, RequestId, Trace};

fn cost() -> RooflineModel {
    RooflineModel::a100_conservative()
}

fn spec(cluster: &Cluster, role: InstanceRole, gpu: u32) -> InstanceSpec {
    InstanceSpec::new(
        role,
        ParallelismConfig::SINGLE,
        vec![vec![cluster.gpu(0, gpu)]],
    )
    .unwrap()
}

fn run(
    cluster: &Cluster,
    cfg: SimConfig,
    specs: Vec<InstanceSpec>,
    n: usize,
    rate: f64,
) -> SimOutcome {
    let cost = cost();
    let trace = FixedLengths {
        input_len: 256,
        output_len: 32,
    }
    .make_trace(rate, n, 5);
    ServingSim::new(cfg, &cost, cluster, specs)
        .unwrap()
        .run(&trace)
}

#[test]
fn shortest_queue_dispatch_balances_prefill_instances() {
    let cluster = Cluster::single_node(3);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Prefill, 1),
        spec(&cluster, InstanceRole::Decode, 2),
    ];
    // Near joint capacity, so arrivals almost always see outstanding
    // work and the shortest-queue metric actually discriminates. (At low
    // load both counters read zero and ties legitimately go to the first
    // instance.)
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        300,
        25.0,
    );
    // First tokens produced on the two prefill instances should split
    // roughly evenly under shortest-queue dispatch.
    let p0 = out.instances[0].tokens_out as f64;
    let p1 = out.instances[1].tokens_out as f64;
    assert_eq!(p0 + p1, 300.0);
    let imbalance = (p0 - p1).abs() / 300.0;
    assert!(imbalance < 0.2, "prefill imbalance {imbalance}");
    // All decoding happened on the decode instance.
    assert_eq!(out.instances[2].tokens_out, 300 * 31);
}

#[test]
fn least_loaded_dispatch_balances_decode_instances() {
    let cluster = Cluster::single_node(3);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
        spec(&cluster, InstanceRole::Decode, 2),
    ];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        300,
        8.0,
    );
    let d0 = out.instances[1].tokens_out as f64;
    let d1 = out.instances[2].tokens_out as f64;
    assert_eq!(d0 + d1, 300.0 * 31.0);
    let imbalance = (d0 - d1).abs() / (d0 + d1);
    assert!(imbalance < 0.2, "decode imbalance {imbalance}");
}

#[test]
fn decode_overflow_queue_engages_and_drains() {
    // Cap the decode batch far below the concurrency the trace creates:
    // extra requests must wait in the overflow queue and still finish.
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let mut cfg = SimConfig::new(OptModel::Opt13B.arch());
    cfg.max_decode_batch = 4;
    let out = run(&cluster, cfg, specs, 120, 30.0);
    assert_eq!(out.records.len(), 120);
    // With batch 4 and ~30 rps of arrivals, decode queueing must be
    // visible in the breakdown.
    let b = out.breakdown_totals();
    assert!(
        b.decode_queue > 0.0,
        "expected overflow-induced decode queueing"
    );
}

#[test]
fn tiny_decode_pool_backpressures_into_prefill_buffer() {
    // Give the decode instance almost no KV pool by serving a model whose
    // shard almost fills its GPU... simpler: shrink the margin knob so
    // the pool is small relative to demand, then check transfers stall
    // (transfer stage time >> wire time) without losing requests.
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let mut cfg = SimConfig::new(OptModel::Opt13B.arch());
    // A 66% margin leaves only ~3.5 GB of KV pool per instance — room
    // for ~14 concurrent requests against ~20 in steady state.
    cfg.mem_margin = 0.66;
    let out = run(&cluster, cfg, specs, 80, 20.0);
    assert_eq!(out.records.len(), 80, "backpressure must not lose requests");
    let b = out.breakdown_totals();
    // Waiting-to-be-pulled time dwarfs pure wire time.
    let wire: f64 = out.records.iter().map(|r| r.transfer_active).sum();
    assert!(
        b.transfer > 5.0 * wire,
        "expected pull stalls: stage {} vs wire {wire}",
        b.transfer
    );
    // And the decode pool saturated at some point.
    assert!(out.instances[1].kv_peak_utilization > 0.9);
}

#[test]
fn decode_pipeline_groups_interleave() {
    // A pp=2 decode instance forms two micro-batch groups; both must see
    // work and the instance must produce every token.
    let cluster = Cluster::single_node(3);
    let decode = InstanceSpec::new(
        InstanceRole::Decode,
        ParallelismConfig::new(1, 2),
        vec![vec![cluster.gpu(0, 1)], vec![cluster.gpu(0, 2)]],
    )
    .unwrap();
    let specs = vec![spec(&cluster, InstanceRole::Prefill, 0), decode];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        200,
        15.0,
    );
    assert_eq!(out.records.len(), 200);
    assert_eq!(out.instances[1].tokens_out, 200 * 31);
    // Two groups interleaving means at least ~2x the batches a single
    // group of the same size would commit.
    assert!(
        out.instances[1].batches > 62,
        "batches {}",
        out.instances[1].batches
    );
}

#[test]
fn makespan_and_busy_accounting_consistent() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let out = run(
        &cluster,
        SimConfig::new(OptModel::Opt13B.arch()),
        specs,
        150,
        10.0,
    );
    // No instance can be busy longer than the simulation ran.
    for s in &out.instances {
        assert!(
            s.busy_secs <= out.makespan.as_secs() + 1e-9,
            "busy {} > makespan {}",
            s.busy_secs,
            out.makespan
        );
    }
    // Completions are ordered and the makespan is the last one.
    let last = out.records.iter().map(|r| r.completion).max().unwrap();
    assert_eq!(last, out.makespan);
}

// --- Queue-depth gauge hygiene (observability) ----------------------

/// The exported queue-depth gauges must be re-published on dequeue, not
/// only on enqueue: after a run fully drains, the last written value
/// has to be zero or a scrape would report phantom backlog forever.
#[test]
fn queue_depth_gauges_fall_to_zero_after_drain() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    let trace = FixedLengths {
        input_len: 256,
        output_len: 8,
    }
    .make_trace(20.0, 60, 5);
    let cost = cost();
    let rec = Recorder::new();
    let out = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()),
        &cost,
        &cluster,
        specs,
    )
    .unwrap()
    .with_sink(&rec)
    .run(&trace);
    assert_eq!(out.records.len(), 60);
    let snap = rec.snapshot();
    assert_eq!(
        snap.metrics.gauge(metrics::PREFILL_QUEUE_DEPTH, 0),
        Some(0.0),
        "depth gauge must end at zero after the queue drains"
    );
    assert_eq!(
        snap.metrics.gauge(metrics::PREFILL_QUEUE_TOKENS, 0),
        Some(0.0),
        "token gauge must end at zero after the queue drains"
    );
}

/// Same invariant for the planner's prefill phase-sim, which batches on
/// a different code path.
#[test]
fn phase_sim_queue_depth_gauge_falls_to_zero() {
    use distserve::placement::phase_sim::{prefill_ttfts_with_sink, PhaseSimConfig};

    let cluster = Cluster::single_node(1);
    let cfg = PhaseSimConfig::new(OptModel::Opt13B.arch(), cluster.gpu_spec().clone());
    let trace = FixedLengths {
        input_len: 256,
        output_len: 8,
    }
    .make_trace(20.0, 60, 5);
    let rec = Recorder::new();
    let s = prefill_ttfts_with_sink(&cost(), &cfg, ParallelismConfig::SINGLE, &trace, &rec);
    assert_eq!(s.count(), 60);
    let snap = rec.snapshot();
    assert_eq!(
        snap.metrics.gauge(metrics::PREFILL_QUEUE_DEPTH, 0),
        Some(0.0),
        "phase-sim depth gauge must end at zero"
    );
    assert_eq!(
        snap.metrics.gauge(metrics::PREFILL_QUEUE_TOKENS, 0),
        Some(0.0),
        "phase-sim token gauge must end at zero"
    );
}

// --- Admission control ----------------------------------------------

/// With a queue cap, overload sheds load as `Rejected` lifecycles that
/// are visible in telemetry and count against attainment.
#[test]
fn admission_cap_rejects_with_full_attribution() {
    let cluster = Cluster::single_node(2);
    let specs = vec![
        spec(&cluster, InstanceRole::Prefill, 0),
        spec(&cluster, InstanceRole::Decode, 1),
    ];
    // A burst far beyond one prefill instance's service rate with a
    // 4-deep queue must reject some arrivals.
    let trace = FixedLengths {
        input_len: 512,
        output_len: 8,
    }
    .make_trace(80.0, 120, 5);
    let cost = cost();
    let rec = Recorder::new();
    let out = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()).with_admission_cap(4),
        &cost,
        &cluster,
        specs,
    )
    .unwrap()
    .with_sink(&rec)
    .run(&trace);
    assert!(!out.rejected.is_empty(), "expected rejections under burst");
    assert_eq!(
        out.records.len() + out.rejected.len(),
        120,
        "every request must be accounted for"
    );
    // Attainment denominators include the rejections: with generous
    // SLOs, attainment equals the completed fraction exactly.
    let completed_frac = out.records.len() as f64 / 120.0;
    assert!((out.attainment(1e9, 1e9) - completed_frac).abs() < 1e-12);
    assert!((out.ttft_attainment(1e9) - completed_frac).abs() < 1e-12);

    let snap = rec.snapshot();
    let lifecycles = snap.lifecycles();
    assert_eq!(lifecycles.len(), 120);
    for id in &out.rejected {
        let lc = &lifecycles[&id.0];
        lc.validate()
            .unwrap_or_else(|e| panic!("rejected request {}: {e}", id.0));
        assert_eq!(lc.events.len(), 2, "rejection is Arrived → Rejected");
    }
    let rejected_total: u64 = (0..2u32)
        .map(|i| snap.metrics.counter(metrics::REQUESTS_REJECTED, i))
        .sum();
    assert_eq!(rejected_total as usize, out.rejected.len());
    // The CSV surfaces the rejection column for those rows.
    let csv = snap.lifecycle_csv();
    let rejected_rows = csv
        .lines()
        .skip(1)
        .filter(|l| !l.split(',').nth(10).unwrap_or("").is_empty())
        .count();
    assert_eq!(rejected_rows, out.rejected.len());
}

// --- Telemetry lifecycle properties ---------------------------------

fn arb_trace(max_requests: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((1u32..1024, 1u32..96, 0.0f64..20.0), 1..max_requests).prop_map(
        |entries| {
            let requests = entries
                .into_iter()
                .enumerate()
                .map(|(i, (input, output, at))| Request {
                    id: RequestId(i as u64),
                    arrival: SimTime::from_secs(at),
                    input_len: input,
                    output_len: output,
                    tenant: 0,
                })
                .collect();
            Trace::new(requests)
        },
    )
}

fn record_run(cluster: &Cluster, specs: Vec<InstanceSpec>, trace: &Trace) -> Recording {
    let cost = cost();
    let rec = Recorder::new();
    let _ = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()),
        &cost,
        cluster,
        specs,
    )
    .unwrap()
    .with_sink(&rec)
    .run(trace);
    rec.snapshot()
}

/// Shared invariant: one well-formed lifecycle per request — `Arrived`
/// first (at the request's arrival time), timestamps monotone, paired
/// start/end events matched, and a terminal event last — and the
/// finished-requests counter reconciles with the trace.
fn assert_lifecycles_complete(snap: &Recording, trace: &Trace, instances: u32) {
    let lifecycles = snap.lifecycles();
    assert_eq!(lifecycles.len(), trace.len());
    for req in trace.requests() {
        let lc = &lifecycles[&req.id.0];
        lc.validate()
            .unwrap_or_else(|e| panic!("request {}: {e}", req.id.0));
        let (t0, first) = lc.events[0];
        assert_eq!(first.name(), "Arrived");
        assert!((t0 - req.arrival.as_secs()).abs() < 1e-12);
    }
    let finished: u64 = (0..instances)
        .map(|i| snap.metrics.counter(metrics::REQUESTS_FINISHED, i))
        .sum();
    assert_eq!(finished as usize, trace.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn telemetry_lifecycles_monotone_and_complete(
        trace in arb_trace(48),
        chunk_sel in 0u32..512,
    ) {
        // Below 64 means "no chunking" (vLLM-style alternation), so both
        // colocated schedulers get proptest coverage.
        let chunk = (chunk_sel >= 64).then_some(chunk_sel);
        // Disaggregated pair: lifecycles include the KvMigrate stage.
        let cluster = Cluster::single_node(2);
        let specs = vec![
            spec(&cluster, InstanceRole::Prefill, 0),
            spec(&cluster, InstanceRole::Decode, 1),
        ];
        let snap = record_run(&cluster, specs, &trace);
        assert_lifecycles_complete(&snap, &trace, 2);

        // Colocated instance, vLLM-style or SARATHI-chunked per `chunk`:
        // same invariants, no migration stage.
        let coloc_cluster = Cluster::single_node(1);
        let coloc = spec(&coloc_cluster, InstanceRole::Colocated, 0).with_policy(ColocatedPolicy {
            chunked_prefill: chunk,
            ..ColocatedPolicy::default()
        });
        let snap = record_run(&coloc_cluster, vec![coloc], &trace);
        assert_lifecycles_complete(&snap, &trace, 1);
        assert!(snap.events.iter().all(|e| !e.kind.name().starts_with("KvMigrate")));
    }
}
