//! Chaos acceptance: fault injection end-to-end.
//!
//! Two contracts the fault subsystem must honor, asserted against the
//! observe crate's windows and the telemetry recorder:
//!
//! 1. **No silent drops.** Under a decode-instance crash every offered
//!    request still reaches a terminal state (finished, rejected, or
//!    failed), and every recorded lifecycle validates.
//! 2. **Goodput recovers.** After the capacity loss arms the replanning
//!    controller and placement reruns over the surviving GPUs, windowed
//!    goodput returns to ≥ 90% of its pre-fault level.

use std::sync::Arc;

use distserve::cluster::Cluster;
use distserve::core::recovery::assemble_report;
use distserve::core::replan::ReplanDecision;
use distserve::core::{
    serve_trace_with_faults, serve_trace_with_sink, Application, CapacityObservation, Planner,
    ReplanController,
};
use distserve::engine::spec::InstanceRole;
use distserve::engine::{FidelityConfig, InstanceSpec, ServingSim, SimConfig};
use distserve::faults::{FaultKind, FaultSchedule, GoodputSample, RetryPolicy};
use distserve::models::{OptModel, ParallelismConfig, RooflineModel};
use distserve::observe::ObserverSink;
use distserve::placement::alg1::SearchParams;
use distserve::simcore::SimRng;
use distserve::telemetry::{Recorder, TeeSink};
use distserve::workload::{Dataset, Request, RequestId, Trace, TraceBuilder};

#[test]
fn decode_crash_drops_no_request_silently() {
    let cluster = Cluster::single_node(4);
    let cost = RooflineModel::a100();
    let specs = vec![
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 0)]],
        )
        .unwrap(),
        InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 1)]],
        )
        .unwrap(),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 2)]],
        )
        .unwrap(),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 3)]],
        )
        .unwrap(),
    ];
    let mut rng = SimRng::seed(42);
    let trace = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(6.0)
        .num_requests(240)
        .build(&mut rng);
    // Crash one decoding instance mid-run (it restarts after 4 s), and
    // poke a transfer failure at the survivor while it is absorbing the
    // extra load.
    let schedule = FaultSchedule::new()
        .with(
            10.0,
            FaultKind::InstanceCrash {
                instance: 2,
                downtime_secs: 4.0,
            },
        )
        .with(11.0, FaultKind::KvTransferFailure { instance: 3 });
    let recorder = Recorder::new();
    let sim = ServingSim::new(
        SimConfig::new(OptModel::Opt13B.arch()).with_seed(42),
        &cost,
        &cluster,
        specs,
    )
    .unwrap();
    let out = sim
        .with_faults(&schedule, RetryPolicy::default())
        .with_sink(&recorder)
        .run(&trace);

    // Conservation: every offered request reached a terminal state.
    assert_eq!(
        out.records.len() + out.rejected.len() + out.failed.len(),
        trace.len(),
        "request lost: {} finished, {} rejected, {} failed of {}",
        out.records.len(),
        out.rejected.len(),
        out.failed.len(),
        trace.len()
    );
    // The crash actually disturbed service.
    assert!(
        out.instances[2].downtime_secs > 3.9,
        "victim recorded {} s of downtime",
        out.instances[2].downtime_secs
    );
    // Every recorded lifecycle is well-formed and terminal.
    let snap = recorder.snapshot();
    let lifecycles = snap.lifecycles();
    assert_eq!(lifecycles.len(), trace.len());
    for (req, lc) in lifecycles {
        lc.validate()
            .unwrap_or_else(|e| panic!("request {req}: {e}"));
        let &(_, last) = lc.events.last().expect("non-empty lifecycle");
        assert!(last.is_terminal(), "request {req} ended on {last:?}");
    }
}

#[test]
fn goodput_recovers_after_capacity_replan() {
    let mut cluster = Cluster::paper_testbed();
    let cost = RooflineModel::a100();
    let arch = Application::ChatbotOpt13B.model().arch();
    let slo = Application::ChatbotOpt13B.slo();

    // Plan for a rate that needs several units.
    let rate = 24.0;
    let specs = {
        let mut planner = Planner::new(&cost, &cluster, arch.clone());
        planner.params = SearchParams {
            probe_requests: 128,
            search_iters: 4,
            ..planner.params
        };
        let d = planner
            .plan_distserve(&Dataset::ShareGpt, slo, rate)
            .expect("plans");
        planner.materialize(&d).expect("fits")
    };
    let victim = specs
        .iter()
        .position(|s| s.role == InstanceRole::Decode)
        .expect("has a decode instance");
    assert!(
        specs
            .iter()
            .filter(|s| s.role == InstanceRole::Decode)
            .count()
            > 1,
        "test needs surviving decode instances"
    );

    let fault_at = 20.0;
    let schedule = FaultSchedule::new().with(fault_at, FaultKind::GpuLoss { instance: victim });
    let mut rng = SimRng::seed(7);
    let trace_ab = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(rate)
        .num_requests(1200)
        .build(&mut rng);
    let recorder = Arc::new(Recorder::new());
    let observer = Arc::new(ObserverSink::new(slo.ttft, slo.tpot, 5.0, 128));
    let tee = TeeSink::new(vec![recorder.clone(), observer.clone()]);
    let out_ab = serve_trace_with_faults(
        &cost,
        &cluster,
        &arch,
        specs.clone(),
        &trace_ab,
        FidelityConfig::ideal(),
        7,
        &schedule,
        RetryPolicy::default(),
        &tee,
    )
    .expect("chaos phase serves");
    assert_eq!(
        out_ab.records.len() + out_ab.rejected.len() + out_ab.failed.len(),
        trace_ab.len()
    );

    // Report the dead hardware and let the controller replan.
    for stage in &specs[victim].stages {
        for &gpu in stage {
            cluster.fail_gpu(gpu).unwrap();
        }
    }
    let mut controller = ReplanController::new(120.0, 10.0, slo);
    for r in trace_ab.requests() {
        controller.observe(r);
    }
    controller.baseline();
    controller.observe_capacity(CapacityObservation::from_cluster(&cluster, 1));
    assert!(controller.capacity_lost().is_some());
    let mut planner = Planner::new(&cost, &cluster, arch.clone());
    planner.params = SearchParams {
        probe_requests: 128,
        search_iters: 4,
        ..planner.params
    };
    let recovery_specs = match controller.poll(&planner) {
        ReplanDecision::Replanned(d) => planner.materialize(&d).expect("recovery plan fits"),
        other => panic!("expected capacity replan, got {other:?}"),
    };
    assert_eq!(controller.replans(), 1);

    // Continue the same traffic on the recovery deployment, into the
    // same observe window.
    let offset = trace_ab.span() + 1.0;
    let mut rng_c = SimRng::seed(8);
    let cont: Vec<Request> = TraceBuilder::new(Dataset::ShareGpt.sampler())
        .rate(rate)
        .num_requests(600)
        .build(&mut rng_c)
        .requests()
        .iter()
        .map(|r| Request {
            id: RequestId(r.id.0 + 100_000),
            arrival: r.arrival.after(offset),
            input_len: r.input_len,
            output_len: r.output_len,
            tenant: r.tenant,
        })
        .collect();
    let trace_c = Trace::new(cont);
    let out_c = serve_trace_with_sink(
        &cost,
        &cluster,
        &arch,
        recovery_specs,
        &trace_c,
        FidelityConfig::ideal(),
        8,
        &tee,
    )
    .expect("recovery phase serves");
    assert_eq!(
        out_c.records.len() + out_c.rejected.len() + out_c.failed.len(),
        trace_c.len()
    );

    // Judge recovery on the windowed goodput series.
    let series = observer.series();
    let pre: Vec<f64> = series
        .iter()
        .filter(|b| b.start_s < fault_at && b.finished + b.rejected + b.failed > 0)
        .map(|b| b.goodput_rps)
        .collect();
    assert!(!pre.is_empty(), "no pre-fault buckets");
    let baseline = pre.iter().sum::<f64>() / pre.len() as f64;
    // Recovered goodput: buckets fully inside the phase-C arrival span
    // (excluding the drain tail after arrivals stop).
    let span_c = trace_c.span();
    let post: Vec<f64> = series
        .iter()
        .filter(|b| b.start_s >= offset && b.start_s + 5.0 <= offset + span_c)
        .map(|b| b.goodput_rps)
        .collect();
    assert!(!post.is_empty(), "no post-replan buckets");
    let recovered = post.iter().sum::<f64>() / post.len() as f64;
    assert!(
        recovered >= 0.9 * baseline,
        "goodput did not recover: baseline {baseline:.2} rps, recovered {recovered:.2} rps"
    );

    // The assembled availability report agrees.
    let samples: Vec<GoodputSample> = series
        .iter()
        .map(|b| GoodputSample {
            start_s: b.start_s,
            goodput_rps: b.goodput_rps,
        })
        .collect();
    let mut report = assemble_report(&samples, &schedule, &out_ab, 0);
    report.finished += out_c.records.len() as u64;
    // The report sees the same story: a dip, then goodput back at ≥90%
    // of baseline within the run (its recovered-goodput average also
    // spans the post-arrival drain tail, so judge recovery by the
    // recovery time, not the tail mean).
    assert!(
        report.dip_goodput_rps < report.baseline_goodput_rps,
        "report: {}",
        report.render()
    );
    assert!(
        report.recovery_secs.is_some(),
        "goodput never returned to ≥90% of baseline: {}",
        report.render()
    );
    let json = report.to_json();
    assert!(json.contains("\"recovery_frac\""));
}
