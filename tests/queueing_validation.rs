//! Validates the discrete-event engine against M/D/1 queueing theory
//! (paper §3.1, Eqs. 1–3).
//!
//! With uniform prompt lengths, Poisson arrivals, single-request batches
//! (`L_m = 1`), and single-token outputs, a prefill instance *is* an
//! M/D/1 queue. The DES's mean TTFT must match the closed forms.

use distserve::cluster::Cluster;
use distserve::engine::{InstanceRole, InstanceSpec, ServingSim, SimConfig};
use distserve::models::queueing::{eq1_avg_ttft, eq2_avg_ttft_inter, eq3_avg_ttft_intra};
use distserve::models::{CostModel, OptModel, ParallelismConfig, PrefillBatch, RooflineModel};
use distserve::placement::TraceSource;
use distserve::workload::datasets::FixedLengths;

const INPUT_LEN: u32 = 512;

/// Mean TTFT measured by the DES for a prefill-only workload served by
/// one instance with parallelism `par`.
fn measured_avg_ttft(par: ParallelismConfig, rate: f64, n: usize) -> f64 {
    let cluster = Cluster::single_node(8);
    let cost = RooflineModel::a100();
    let arch = OptModel::Opt13B.arch();
    // Output length 1: requests complete at prefill; decode instance idle.
    let trace = FixedLengths {
        input_len: INPUT_LEN,
        output_len: 1,
    }
    .make_trace(rate, n, 1234);

    let prefill_stages = (0..par.pp)
        .map(|s| {
            (0..par.tp)
                .map(|k| cluster.gpu(0, s * par.tp + k))
                .collect()
        })
        .collect();
    let specs = vec![
        InstanceSpec::new(InstanceRole::Prefill, par, prefill_stages).unwrap(),
        InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![cluster.gpu(0, 7)]],
        )
        .unwrap(),
    ];
    // L_m = 1 disables batching: FCFS single-request service, as the
    // M/D/1 model assumes.
    let cfg = SimConfig::new(arch).with_l_m(1);
    let sim = ServingSim::new(cfg, &cost, &cluster, specs).unwrap();
    let out = sim.run(&trace);
    out.ttft_summary().mean()
}

/// Deterministic service time of one 512-token prefill at `par`.
fn service_time(par: ParallelismConfig) -> f64 {
    let cost = RooflineModel::a100();
    let arch = OptModel::Opt13B.arch();
    cost.prefill_latency(&arch, par, &PrefillBatch::single(INPUT_LEN))
        .total()
}

#[test]
fn eq1_matches_des_single_device() {
    let par = ParallelismConfig::SINGLE;
    let d = service_time(par);
    for rate in [2.0, 5.0, 8.0] {
        let theory = eq1_avg_ttft(rate, d).expect("stable");
        let measured = measured_avg_ttft(par, rate, 4000);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "rate {rate}: DES {measured:.4}s vs Eq.1 {theory:.4}s ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn eq2_matches_des_two_stage_pipeline() {
    let par = ParallelismConfig::new(1, 2);
    // Eq. 2 is parameterized by the single-device time D with D_s ≈ D.
    let d = service_time(ParallelismConfig::SINGLE);
    for rate in [5.0, 10.0, 15.0] {
        let theory = eq2_avg_ttft_inter(rate, d).expect("stable");
        let measured = measured_avg_ttft(par, rate, 4000);
        let rel = (measured - theory).abs() / theory;
        // The DES charges per-stage launch overhead and stage-boundary
        // transfers Eq. 2 ignores, so the tolerance is looser.
        assert!(
            rel < 0.15,
            "rate {rate}: DES {measured:.4}s vs Eq.2 {theory:.4}s ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn eq3_matches_des_tensor_parallel() {
    let par = ParallelismConfig::new(2, 1);
    let d = service_time(ParallelismConfig::SINGLE);
    // Measure the speedup coefficient K from the cost model itself.
    let k = d / service_time(par);
    assert!(k > 1.0 && k < 2.0, "K = {k}");
    for rate in [5.0, 10.0] {
        let theory = eq3_avg_ttft_intra(rate, d, k).expect("stable");
        let measured = measured_avg_ttft(par, rate, 4000);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "rate {rate}: DES {measured:.4}s vs Eq.3 {theory:.4}s ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn crossover_direction_matches_theory() {
    // Figure 4(a): intra-op wins at low rate, inter-op wins close to
    // saturation.
    let d = service_time(ParallelismConfig::SINGLE);
    let intra = ParallelismConfig::new(2, 1);
    let inter = ParallelismConfig::new(1, 2);
    let low = 2.0;
    let high = 0.95 * 2.0 / d; // Close to the inter-op stability limit.
    let intra_low = measured_avg_ttft(intra, low, 3000);
    let inter_low = measured_avg_ttft(inter, low, 3000);
    assert!(
        intra_low < inter_low,
        "low rate: intra {intra_low} should beat inter {inter_low}"
    );
    let intra_high = measured_avg_ttft(intra, high, 3000);
    let inter_high = measured_avg_ttft(inter, high, 3000);
    assert!(
        inter_high < intra_high,
        "high rate: inter {inter_high} should beat intra {intra_high}"
    );
}
