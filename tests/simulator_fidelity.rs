//! Simulator-fidelity validation (paper Table 2).
//!
//! The paper compares the planner's simulator against the real testbed
//! and reports SLO-attainment error under 2% at every rate. We reproduce
//! the comparison as idealized-vs-detailed fidelity of one engine: the
//! detailed configuration carries scheduler overhead, execution jitter,
//! and transfer launch latency the idealized planner ignores.

use distserve::cluster::Cluster;
use distserve::core::{serve_trace, Application};
use distserve::engine::{FidelityConfig, InstanceRole, InstanceSpec};
use distserve::models::{ParallelismConfig, RooflineModel};
use distserve::placement::alg2::unit_specs;
use distserve::placement::TraceSource;

fn testbed_unit() -> (Cluster, Vec<InstanceSpec>) {
    let cluster = Cluster::paper_testbed();
    let specs = unit_specs(
        &cluster,
        ParallelismConfig::new(2, 1),
        ParallelismConfig::new(1, 1),
    )
    .unwrap();
    (cluster, specs)
}

#[test]
fn fidelity_gap_is_small_across_rates() {
    let app = Application::ChatbotOpt13B;
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let (cluster, specs) = testbed_unit();

    for rate in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let trace = app.dataset().make_trace(rate, 600, 77);
        let ideal = serve_trace(
            &cost,
            &cluster,
            &arch,
            specs.clone(),
            &trace,
            FidelityConfig::ideal(),
            77,
        )
        .unwrap();
        let detailed = serve_trace(
            &cost,
            &cluster,
            &arch,
            specs.clone(),
            &trace,
            FidelityConfig::detailed(),
            77,
        )
        .unwrap();
        let a_ideal = ideal.attainment(slo.ttft, slo.tpot);
        let a_detailed = detailed.attainment(slo.ttft, slo.tpot);
        let gap = (a_ideal - a_detailed).abs();
        // Table 2 reports <2% on their testbed; our detailed proxy's
        // perturbations are deliberately pessimistic, and near the goodput
        // knee the attainment curve is steep, so allow 10%.
        assert!(
            gap < 0.10,
            "rate {rate}: ideal {a_ideal:.3} vs detailed {a_detailed:.3} (gap {gap:.3})"
        );
        // The detailed run can only be slower, never faster.
        assert!(
            detailed.ttft_summary().mean() >= ideal.ttft_summary().mean(),
            "detailed TTFT below ideal at rate {rate}"
        );
    }
}

#[test]
fn colocated_fidelity_gap_is_small() {
    let app = Application::ChatbotOpt13B;
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let slo = app.slo();
    let cluster = Cluster::paper_testbed();
    let spec = InstanceSpec::new(
        InstanceRole::Colocated,
        ParallelismConfig::SINGLE,
        vec![vec![cluster.gpu(0, 0)]],
    )
    .unwrap();

    for rate in [0.5, 1.0, 1.5] {
        let trace = app.dataset().make_trace(rate, 400, 55);
        let run = |fid: FidelityConfig| {
            serve_trace(&cost, &cluster, &arch, vec![spec.clone()], &trace, fid, 55)
                .unwrap()
                .attainment(slo.ttft, slo.tpot)
        };
        let gap = (run(FidelityConfig::ideal()) - run(FidelityConfig::detailed())).abs();
        assert!(gap < 0.08, "rate {rate}: gap {gap:.3}");
    }
}

#[test]
fn detailed_jitter_is_deterministic() {
    // Even with jitter on, the same seed must reproduce identical runs —
    // the property that makes every experiment in this repo replayable.
    let app = Application::ChatbotOpt13B;
    let cost = RooflineModel::a100_conservative();
    let arch = app.model().arch();
    let (cluster, specs) = testbed_unit();
    let trace = app.dataset().make_trace(3.0, 300, 91);
    let run = || {
        serve_trace(
            &cost,
            &cluster,
            &arch,
            specs.clone(),
            &trace,
            FidelityConfig::detailed(),
            91,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x, y);
    }
}
