//! Offline stand-in for `bytes`.
//!
//! The workspace declares a `bytes` dependency but no crate uses it yet;
//! this placeholder provides a minimal contiguous byte buffer so the
//! patch target exists and future users have a starting surface.

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(std::sync::Arc::new(data.to_vec()))
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
