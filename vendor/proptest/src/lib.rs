//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized property testing with proptest's call shape:
//! the [`proptest!`] macro (`fn name(x in strategy, ...)`),
//! [`strategy::Strategy`] with `prop_map`, range strategies, tuple
//! strategies, [`prop::collection::vec`], `prop_assert*`, and
//! [`test_runner::ProptestConfig`]. No shrinking — a failing case panics
//! with the generating seed visible via the deterministic per-test
//! stream, which is reproducible because generation is a pure function
//! of (test name, case index).

pub mod test_runner {
    //! Deterministic case generation.

    /// FNV-1a hash of a string, usable in const context for stable
    /// per-test seeds.
    #[must_use]
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }

    /// SplitMix64 generator seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one test case.
        #[must_use]
        pub fn for_case(test_seed: u64, case: u64) -> Self {
            TestRng {
                state: test_seed
                    .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    | 1,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }

    /// Run configuration (`cases` = property executions per test).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    // Include the endpoint by drawing over a slightly
                    // wider lattice and clamping.
                    let u = rng.next_f64() as $t * 1.000_000_1;
                    (lo + u * (hi - lo)).clamp(lo, hi)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    );
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.next_f64() * 2e6 - 1e6) as f32
        }
    }

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec` etc).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive-exclusive element-count range for collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        /// Strategy for `Vec<T>` with random length.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                assert!(self.size.lo < self.size.hi, "empty size range");
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A strategy generating vectors of `elem` with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs, glob-importable.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: `fn name(x in strategy, ...) { body }` runs
/// `body` for each of `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident(
            $($pat:pat in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        $crate::test_runner::fnv1a(
                            concat!(module_path!(), "::", stringify!($name)),
                        ),
                        u64::from(__case),
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..16, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 16));
        }

        #[test]
        fn prop_map_applies(d in (1u32..10).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0 && d >= 2 && d < 20);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::{fnv1a, TestRng};
        let seed = fnv1a("some::test");
        let mut a = TestRng::for_case(seed, 3);
        let mut b = TestRng::for_case(seed, 3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
