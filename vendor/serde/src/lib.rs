//! Offline stand-in for `serde`.
//!
//! The real serde's visitor architecture is far more than this workspace
//! needs: every serialized type here flows into `serde_json` and nowhere
//! else. So this stand-in collapses the data model to one [`Value`] tree;
//! [`Serialize`] renders into it and [`Deserialize`] reads back out of it.
//! The companion `serde_derive` crate provides `#[derive(Serialize,
//! Deserialize)]` for named structs, tuple structs, and unit-variant
//! enums — the shapes this repository uses.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as f64, widening integers.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as u64 if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }
}

/// Missing keys and indexes resolve to this, mirroring serde_json's
/// `Value::Null` static on failed lookups.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a value tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) => Ok(*f as $t),
                    _ => Err(DeError::new(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64,
    f32 => Float as f64, f64 => Float as f64,
);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| DeError::new("tuple too short"))?
                )?,)+))
            }
        }
    )+};
}

ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup_and_compare() {
        let v = Value::Object(vec![(
            "headers".to_string(),
            Value::Array(vec![Value::Str("k".to_string())]),
        )]);
        assert_eq!(v["headers"][0], "k");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["headers"][9], Value::Null);
    }

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            Vec::<String>::from_value(&vec!["a".to_string()].to_value()),
            Ok(vec!["a".to_string()])
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }
}
