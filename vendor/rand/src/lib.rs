//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this minimal implementation covering exactly the surface the
//! repository uses: [`RngCore`], the [`Rng`] extension trait with
//! `gen::<T>()`, [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`]. The generator is SplitMix64 feeding xoshiro256++ —
//! not the upstream ChaCha-based `StdRng`, but the workspace only relies
//! on determinism per seed, never on the exact stream.

/// Error type for fallible generator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    ///
    /// # Errors
    ///
    /// Never fails in this implementation.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types samplable uniformly from raw generator bits (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 bits of precision in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 bits of precision in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_floats_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
