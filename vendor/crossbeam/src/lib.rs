//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the workspace uses crossbeam
//! exclusively for scoped threads, which `std::thread::scope` (stable
//! since 1.63) covers. The wrapper keeps crossbeam's call shape:
//! `scope` returns a `Result` and the spawn closure receives a `&Scope`
//! argument.

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    use std::any::Any;

    /// A scope handle passed to spawn closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope (for
        /// nested spawns), mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// `std::thread::scope` instead of surfacing as `Err`; the `Result`
    /// exists for signature compatibility and is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
