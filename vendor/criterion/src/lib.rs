//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with criterion's call shape:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. No statistics engine — each benchmark is
//! timed over `sample_size` samples and the per-iteration mean / min are
//! printed. Enough to compare hot paths relative to each other and to
//! record trajectories in JSON sidecar files.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// How batched inputs are sized (API compatibility; sizing is ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Benchmark id.
    pub name: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample's seconds per iteration.
    pub min_s: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Benchmark driver (stand-in for criterion's).
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
    results: Vec<Sampled>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_time: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.target_time,
            samples: self.sample_size,
            mean_s: 0.0,
            min_s: 0.0,
            iters_per_sample: 0,
        };
        f(&mut b);
        let r = Sampled {
            name: name.to_string(),
            mean_s: b.mean_s,
            min_s: b.min_s,
            iters_per_sample: b.iters_per_sample,
        };
        println!(
            "bench {:<44} mean {:>12}  min {:>12}",
            r.name,
            fmt_time(r.mean_s),
            fmt_time(r.min_s)
        );
        self.results.push(r);
        self
    }

    /// Results collected so far (used by JSON emitters).
    #[must_use]
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }

    /// Criterion calls this at the end of `criterion_main!`; a no-op here.
    pub fn final_summary(&mut self) {}
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Per-benchmark timing helper handed to the closure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    mean_s: f64,
    min_s: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` over repeated iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit one sample's time slice.
        let slice = self.budget.as_secs_f64() / self.samples as f64;
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((slice / once).clamp(1.0, 1e7)) as u64;

        let mut total = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t.elapsed().as_secs_f64() / iters as f64;
            total += per_iter;
            min = min.min(per_iter);
        }
        self.mean_s = total / self.samples as f64;
        self.min_s = min;
        self.iters_per_sample = iters;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        let mut timed_samples = 0u32;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed().as_secs_f64();
            total += dt;
            min = min.min(dt);
            timed_samples += 1;
        }
        self.mean_s = total / f64::from(timed_samples.max(1));
        self.min_s = min;
        self.iters_per_sample = 1;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_s > 0.0);
        assert!(c.results()[0].min_s <= c.results()[0].mean_s);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(20));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        });
        assert!(c.results()[0].mean_s > 0.0);
    }
}
