//! Offline stand-in for `serde_json`.
//!
//! Emits and parses JSON against the value-tree `serde` stand-in. Covers
//! what the workspace calls: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`Value`] with indexing / comparison.

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors serde_json.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats recognizably floating-point.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad codepoint".to_string()))?,
                            );
                        }
                        _ => return Err(Error("unknown escape".to_string())),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad float {text}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error(format!("bad int {text}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("bad int {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text = r#"{"headers": ["k"], "rows": [["v"]], "n": 3, "x": -1.5}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["headers"][0], "k");
        assert_eq!(v["rows"][0][0], "v");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["x"].as_f64(), Some(-1.5));
        let emitted = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&emitted).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\té".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }
}
