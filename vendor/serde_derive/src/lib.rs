//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` — those aren't available
//! offline) for the type shapes this workspace serializes: structs with
//! named fields, tuple structs, and enums whose variants are all unit.
//! Generated impls target the simplified value-tree `serde` stand-in
//! (`Serialize::to_value` / `Deserialize::from_value`).
//!
//! The only field attribute honored is `#[serde(default)]`: a missing
//! key deserializes to `Default::default()` instead of erroring, which
//! is what lets new fields (request tenants, decision trace ids) read
//! old JSON fixtures.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its name and whether `#[serde(default)]` was set.
struct Field {
    name: String,
    default: bool,
}

/// The shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Named(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum whose variants are all unit.
    UnitEnum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `Serialize` (value-tree model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_serialize(&p).parse().expect("generated code parses"),
        Err(e) => error(&e),
    }
}

/// Derives `Deserialize` (value-tree model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_deserialize(&p).parse().expect("generated code parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("parses")
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility ahead of the struct/enum keyword.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    // Generic types are out of scope for this stand-in.
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type {name}"));
    }
    let body = iter.next();
    match (kind.as_str(), body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Parsed {
                name,
                shape: Shape::Named(named_fields(g.stream())?),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Parsed {
                name,
                shape: Shape::Tuple(tuple_arity(g.stream())),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Parsed {
                name,
                shape: Shape::UnitEnum(unit_variants(g.stream())?),
            })
        }
        (k, b) => Err(format!("unsupported shape: {k} with body {b:?}")),
    }
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(default)`.
fn is_serde_default(g: &proc_macro::Group) -> bool {
    let mut toks = g.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" && inner.delimiter() == Delimiter::Parenthesis =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Field names (with `#[serde(default)]` flags) of a named-field
/// struct body.
fn named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility, noting
        // `#[serde(default)]` when it appears.
        let mut default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        default |= is_serde_default(&g);
                    }
                }
                Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':', got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut in_field = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    arity += 1;
                    in_field = true;
                }
            }
        }
    }
    arity
}

/// Variant names of an all-unit enum body.
fn unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip variant attributes (e.g. #[default]).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(TokenTree::Group(_)) => {
                return Err("enum variants with payloads are unsupported".to_string())
            }
            other => return Err(format!("expected ',', got {other:?}")),
        }
    }
    Ok(variants)
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        // Newtype structs serialize transparently, like real serde.
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (f, default) = (&f.name, f.default);
                    if default {
                        format!(
                            "{f}: match obj.iter().find(|(k, _)| k == {f:?}) {{\
                                 Some((_, v)) => ::serde::Deserialize::from_value(v)?,\
                                 None => ::core::default::Default::default(),\
                             }}"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 obj.iter().find(|(k, _)| k == {f:?}).map(|(_, v)| v)\
                                     .ok_or_else(|| ::serde::DeError::new(\
                                         concat!(\"missing field \", {f:?})))?)?"
                        )
                    }
                })
                .collect();
            format!(
                "let obj = v.as_object()\
                     .ok_or_else(|| ::serde::DeError::new(\"expected object\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                             .ok_or_else(|| ::serde::DeError::new(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array()\
                     .ok_or_else(|| ::serde::DeError::new(\"expected array\"))?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|var| format!("{var:?} => Ok({name}::{var})"))
                .collect();
            format!(
                "let s = v.as_str()\
                     .ok_or_else(|| ::serde::DeError::new(\"expected variant string\"))?;\n\
                 match s {{ {}, other => Err(::serde::DeError::new(\
                     format!(\"unknown variant {{other}}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
