//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no poisoning in the API; a poisoned std mutex panics here,
//! matching parking_lot's behavior of not propagating poison state).

/// A mutual-exclusion lock with parking_lot's `lock() -> Guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned by a panicking holder.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex not poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned by a panicking holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex not poisoned")
    }

    /// Mutable access without locking (exclusive borrow).
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned by a panicking holder.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex not poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
