//! Determinism check: two fresh parallel batch-16 runs must produce
//! byte-identical token streams.
//!
//! The worker pool splits GEMM and attention work by output region with
//! every element's accumulation chain unchanged, so thread count (and
//! scheduling noise between runs) must never show up in the output. This
//! example runs the same 16-request workload twice — fresh model, fresh
//! KV pool, fresh pool threads each time — asserts the streams are
//! identical in-process, and writes the serialized stream to a file
//! (argv[1], default `tokens.bin`) so CI can `cmp` two separate process
//! invocations byte for byte.
//!
//! Thread count comes from `TINYLLM_THREADS` when set (CI oversubscribes
//! it past the physical core count), otherwise 4 so the pool actually
//! dispatches even on small hosts.

use tinyllm::{ComputeConfig, ContinuousBatcher, GenRequest, Model, TinyConfig};

const BATCH: usize = 16;
const PROMPT_LEN: usize = 32;
const MAX_NEW: usize = 48;

/// One full batch-16 generation on a fresh model + scheduler; returns
/// the per-request token streams in request-id order.
fn run_once(threads: usize) -> Vec<Vec<u32>> {
    let model = Model::random_with(
        &TinyConfig::small(),
        5,
        ComputeConfig {
            threads,
            ..ComputeConfig::default()
        },
    );
    let mut batcher = ContinuousBatcher::new(model, 8192);
    for i in 0..BATCH {
        batcher.submit(GenRequest {
            id: i as u64,
            prompt: (0..PROMPT_LEN)
                .map(|p| ((i * 17 + p * 5) % 512) as u32)
                .collect(),
            max_new: MAX_NEW,
        });
    }
    let mut finished = batcher.run_to_completion();
    finished.sort_by_key(|f| f.id);
    finished.into_iter().map(|f| f.tokens).collect()
}

/// Flattens the streams into a stable byte layout for cross-process
/// comparison: for each request, `id`-ordered, a little-endian u32 token
/// list (lengths are fixed by `MAX_NEW`, so no framing is needed).
fn serialize(streams: &[Vec<u32>]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(streams.len() * MAX_NEW * 4);
    for s in streams {
        for &t in s {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
    }
    bytes
}

fn main() {
    let threads = std::env::var("TINYLLM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let first = run_once(threads);
    let second = run_once(threads);
    assert_eq!(
        first, second,
        "parallel decode is non-deterministic at {threads} threads"
    );
    assert_eq!(first.len(), BATCH);
    assert!(first.iter().all(|s| s.len() == MAX_NEW));

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tokens.bin".into());
    std::fs::write(&path, serialize(&first)).expect("write token stream");
    println!(
        "ok: {} requests x {} tokens byte-identical across two {}-thread runs -> {}",
        BATCH, MAX_NEW, threads, path
    );
}
