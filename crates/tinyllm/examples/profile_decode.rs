//! Rough decode-time breakdown used during perf work (not a test).
use std::time::Instant;
use tinyllm::{BatchRow, ContinuousBatcher, GenRequest, Model, Scratch, Shard, TinyConfig};

fn main() {
    let cfg = TinyConfig::small();
    let model = Model::random(&cfg, 5);
    let shard = Shard::full(&cfg);
    let ctx = 64;
    let mut kv = model.make_kv(8192, 16);
    let mut scratch = Scratch::new();
    let mut rows = Vec::new();
    for s in 0..16u64 {
        kv.register(s);
        let r: Vec<BatchRow> = (0..ctx)
            .map(|p| BatchRow {
                seq: s,
                pos: p,
                token: ((s as usize * 17 + p * 5) % 512) as u32,
            })
            .collect();
        model.forward_batch(&r, &mut kv, &mut scratch);
        rows.push(BatchRow {
            seq: s,
            pos: ctx,
            token: 7,
        });
    }
    let m = rows.len();

    model.embed_rows(&rows, &mut scratch);
    model.ln1_batch(0, m, &mut scratch);
    let reps = 300;
    let t = Instant::now();
    for _ in 0..reps {
        model.attn_batch(0, &rows, &mut kv, shard, &mut scratch);
    }
    println!(
        "attn_batch:  {:.2} us/tok/layer",
        t.elapsed().as_secs_f64() / (reps * m) as f64 * 1e6
    );
    let t = Instant::now();
    for _ in 0..reps {
        model.ffn_batch(0, m, shard, &mut scratch);
    }
    println!(
        "ffn_batch:   {:.2} us/tok/layer",
        t.elapsed().as_secs_f64() / (reps * m) as f64 * 1e6
    );
    let t = Instant::now();
    for _ in 0..reps {
        model.logits_batch(&(0..16).collect::<Vec<_>>(), &mut scratch);
    }
    println!(
        "logits:      {:.2} us/tok",
        t.elapsed().as_secs_f64() / (reps * m) as f64 * 1e6
    );

    let t = Instant::now();
    for _ in 0..reps {
        model.forward_batch(&rows, &mut kv, &mut scratch);
    }
    println!(
        "forward_batch: {:.2} us/tok (4 layers)",
        t.elapsed().as_secs_f64() / (reps * m) as f64 * 1e6
    );

    // Whole scheduler steps at the same shape (prompt 32 + 64 decodes).
    let mut b = ContinuousBatcher::new(model.clone(), 8192);
    for i in 0..16usize {
        b.submit(GenRequest {
            id: i as u64,
            prompt: (0..32).map(|p| ((i * 17 + p * 5) % 512) as u32).collect(),
            max_new: 66,
        });
    }
    b.step();
    let t = Instant::now();
    for _ in 0..64 {
        b.step();
    }
    println!(
        "sched step:  {:.2} us/tok (avg ctx ~64)",
        t.elapsed().as_secs_f64() / (64 * 16) as f64 * 1e6
    );
}
