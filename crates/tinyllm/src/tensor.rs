//! Dense linear algebra for the inference engine.
//!
//! Two tiers live here. [`Matrix`] is the readable reference
//! implementation that the property tests compare against. [`PackedMatrix`]
//! is the performance tier: weights copied once into a k-major (input-dim
//! contiguous) layout, multiplied by register-tiled kernels ([`MR`] rows
//! × [`NR`] outputs of accumulators held across the k-loop) that write
//! into caller-owned scratch — no per-call allocation, no data-dependent
//! branches in the inner loops. tinyllm owns a real performance budget
//! (the bench crate records its trajectory in `BENCH_tinyllm.json`); the
//! simulation crates model timing, this crate has to earn it.
//!
//! Every packed kernel accumulates each output element over `k` in
//! ascending order with a single accumulator — the same association the
//! reference `Matrix::matmul` uses — so the fast path is bit-compatible
//! with the reference path, not merely close. That invariant is also why
//! the worker pool (`pool.rs`) can split the N dimension across threads
//! freely: each output element's multiply-add chain never depends on
//! which column strip it lands in, so threaded output is bit-identical
//! to single-threaded, not merely close.
//!
//! [`QuantMatrix`] is the int8 tier: per-output-channel symmetric
//! quantization done once at pack time, dequantized in-register inside
//! the same 4×16 microkernel. See its docs for the error bound.

use std::sync::Arc;

/// A row-major matrix (reference tier).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major elements, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Immutable row view.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other`, where `other` is `(self.cols × n)`. Reference
    /// implementation: allocating, unblocked.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = other.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × other[:, col_lo..col_hi]` — a column-sliced product, used
    /// by tensor-parallel shards (reference tier).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or an invalid column range.
    #[must_use]
    pub fn matmul_cols(&self, other: &Matrix, col_lo: usize, col_hi: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        assert!(col_lo <= col_hi && col_hi <= other.cols, "column range");
        let n = col_hi - col_lo;
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.row(k)[col_lo..col_hi];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }
}

/// Activation rows per register tile. Each weight row loaded from cache
/// is reused across `MR` output rows — reuse the `m = 1` token-at-a-time
/// path can never have.
/// Four rows × two SIMD vectors of accumulators (8) plus a weight
/// segment (2) and a broadcast lane leaves slack in a 16-register SIMD
/// file; six rows (14+ live vectors) measurably spills.
pub(crate) const MR: usize = 4;

/// Output columns per register tile: two SIMD vectors' worth of
/// accumulators per activation row. The `MR × NR` accumulator block stays
/// in registers for the whole k-loop; the activation rows (≤ a few KB)
/// stay in L1 while the packed weights stream through once.
pub(crate) const NR: usize = 16;

/// A weight matrix packed for the fast path: an owned, contiguous,
/// k-major copy (`k` = input dimension indexes rows, outputs are
/// contiguous within each row). Packing happens once at model build;
/// every forward pass then runs unit-stride inner loops.
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    /// Input dimension (rows of the logical weight).
    pub k: usize,
    /// Output dimension (columns of the logical weight).
    pub n: usize,
    /// `k × n` row-major: `data[kk * n + j]` = weight from input `kk` to
    /// output `j`. Behind an [`Arc`] so the worker pool can hand each
    /// long-lived thread a `'static` handle to the weights without
    /// copying them and without `unsafe` (the workspace denies it).
    data: Arc<Vec<f32>>,
}

impl PackedMatrix {
    /// Packs a `(k × n)` weight already stored input-major.
    #[must_use]
    pub fn pack(w: &Matrix) -> Self {
        PackedMatrix {
            k: w.rows,
            n: w.cols,
            data: Arc::new(w.data.clone()),
        }
    }

    /// Packs the *transpose* of a `(n × k)` matrix, producing the same
    /// k-major layout. Used for tied-embedding logits: the `(vocab ×
    /// hidden)` embedding becomes a `(hidden × vocab)` projection.
    #[must_use]
    pub fn pack_transposed(w: &Matrix) -> Self {
        let (k, n) = (w.cols, w.rows);
        let mut data = vec![0.0; k * n];
        for j in 0..n {
            let src = w.row(j);
            for (kk, &v) in src.iter().enumerate() {
                data[kk * n + j] = v;
            }
        }
        PackedMatrix {
            k,
            n,
            data: Arc::new(data),
        }
    }

    /// `out = a × W` for `a` a dense `(m × k)` activation block, written
    /// into caller-owned scratch (every element overwritten). Register
    /// tiled: [`MR`]`×`[`NR`] accumulator blocks, branch-free unit-stride
    /// inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k` or `out.len() != m * n`.
    pub fn matmul_into(&self, a: &[f32], m: usize, out: &mut [f32]) {
        self.matmul_cols_into(a, m, 0, self.n, out);
    }

    /// `out = a × W[:, col_lo..col_hi]` — the column-sliced product a
    /// tensor-parallel shard computes (its heads' Q/K/V slice, its FFN
    /// columns), without materializing the full-width result.
    ///
    /// # Panics
    ///
    /// Panics on a bad column range or mismatched buffer lengths.
    pub fn matmul_cols_into(
        &self,
        a: &[f32],
        m: usize,
        col_lo: usize,
        col_hi: usize,
        out: &mut [f32],
    ) {
        assert!(col_lo <= col_hi && col_hi <= self.n, "column range");
        let width = col_hi - col_lo;
        assert_eq!(a.len(), m * self.k, "activation shape");
        assert_eq!(out.len(), m * width, "output shape");
        self.gemm_strip(a, m, self.k, 0, col_lo, width, width, out);
    }

    /// `out = a × W[row_lo..row_hi, :]` — the row-sliced product that
    /// lets a shard feed its partial activations (e.g. its FFN columns,
    /// its heads' attention output) straight into the down/output
    /// projection. Replaces the old zero-pad-to-full-width trick: `a`
    /// holds only the `row_hi - row_lo` live inputs per row.
    ///
    /// # Panics
    ///
    /// Panics on a bad row range or mismatched buffer lengths.
    pub fn matmul_rows_into(
        &self,
        a: &[f32],
        m: usize,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f32],
    ) {
        assert!(row_lo <= row_hi && row_hi <= self.k, "row range");
        let depth = row_hi - row_lo;
        assert_eq!(a.len(), m * depth, "activation shape");
        assert_eq!(out.len(), m * self.n, "output shape");
        self.gemm_strip(a, m, depth, row_lo, 0, self.n, self.n, out);
    }

    /// Shared register-tiled kernel behind the public entry points and
    /// the worker pool:
    /// `out[m × stride] = a[m × depth] × W[k_off.., col_lo..col_lo+width]`,
    /// where each output row starts at a multiple of `stride ≥ width`.
    /// With `stride == width` this is a dense write; the pool uses
    /// `stride` to let each worker compute its column strip into its own
    /// narrow buffer while the main thread writes its strip straight into
    /// the full-width destination. Every output element is overwritten
    /// (no pre-zeroing needed). The argument list mirrors the GEMM
    /// operands (block offsets and shapes); a parameter struct would just
    /// rename them.
    // Deliberately unprofiled: every caller is already inside a named
    // scope (`qkv_gemm`/`out_proj_gemm`/`ffn`/`logits` serially,
    // `pool_gemm_job` on pool workers), and a scope here would double the
    // bracket count on the hottest path in the engine — see the < 3%
    // overhead budget in `distserve_prof`'s module docs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_strip(
        &self,
        a: &[f32],
        m: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        stride: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < m {
            // Monomorphize the row-block height so the accumulator block
            // is a fixed-size array the compiler keeps in registers.
            match m - i {
                1 => self.tile_rows::<1>(a, i, depth, k_off, col_lo, width, stride, out),
                2 => self.tile_rows::<2>(a, i, depth, k_off, col_lo, width, stride, out),
                3 => self.tile_rows::<3>(a, i, depth, k_off, col_lo, width, stride, out),
                4 => self.tile_rows::<4>(a, i, depth, k_off, col_lo, width, stride, out),
                5 => self.tile_rows::<5>(a, i, depth, k_off, col_lo, width, stride, out),
                _ => self.tile_rows::<MR>(a, i, depth, k_off, col_lo, width, stride, out),
            }
            i += (m - i).min(MR);
        }
    }

    /// One `MB`-row band of the output. Each `MB × NR` accumulator tile
    /// lives in registers across the whole k-loop; each packed weight row
    /// segment is loaded once and reused by all `MB` activation rows.
    /// Every output accumulates over `k` ascending with a single
    /// accumulator — bit-identical to the reference matmul, and
    /// independent of the `(col_lo, width)` strip an element lands in.
    // `kk` deliberately indexes both the activation rows and the packed
    // weight base address; an iterator over one of them would hide the
    // shared induction variable the vectorizer keys on.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn tile_rows<const MB: usize>(
        &self,
        a: &[f32],
        i: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        stride: usize,
        out: &mut [f32],
    ) {
        let a_rows: [&[f32]; MB] = core::array::from_fn(|r| &a[(i + r) * depth..][..depth]);
        let mut j = 0;
        while j + NR <= width {
            let mut acc = [[0.0f32; NR]; MB];
            for kk in 0..depth {
                let base = (k_off + kk) * self.n + col_lo + j;
                let w: &[f32; NR] = self.data[base..base + NR]
                    .try_into()
                    .expect("NR-wide weight segment");
                for r in 0..MB {
                    let av = a_rows[r][kk];
                    for (l, acc_l) in acc[r].iter_mut().enumerate() {
                        *acc_l += av * w[l];
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out[(i + r) * stride + j..][..NR].copy_from_slice(acc_row);
            }
            j += NR;
        }
        // Remainder columns, one scalar accumulator per output.
        while j < width {
            for (r, a_row) in a_rows.iter().enumerate() {
                let mut acc = 0.0f32;
                for (kk, &av) in a_row.iter().enumerate() {
                    acc += av * self.data[(k_off + kk) * self.n + col_lo + j];
                }
                out[(i + r) * stride + j] = acc;
            }
            j += 1;
        }
    }
}

/// A weight matrix quantized to int8 with one scale per *output channel*
/// (column): `s_j = max_k |w[k][j]| / 127`, `q[k][j] =
/// round(w[k][j] / s_j)` clamped to `[-127, 127]`. The GEMM microkernel
/// accumulates `Σ_k a[k] · f32(q[k][j])` in f32 and multiplies by `s_j`
/// once at the end — dequantization happens in-register, never as a
/// materialized f32 copy of the weights.
///
/// # Error bound
///
/// Rounding puts each reconstructed weight within half a step of the
/// original: `|w[k][j] − s_j·q[k][j]| ≤ s_j / 2`. An output column
/// therefore satisfies
///
/// ```text
/// |y_int8[j] − y_f32[j]| ≤ (s_j / 2) · ‖a‖₁ + ε_acc
///                        = (max_k |w[k][j]| / 254) · ‖a‖₁ + ε_acc
/// ```
///
/// where `‖a‖₁` is the L1 norm of the activation row and `ε_acc` covers
/// f32 accumulation reassociation (a few ULPs of the running sum; the
/// tests budget 1/64 of the rounding term for it). The proptest
/// `int8_error_within_documented_bound` pins exactly this bound.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    /// Input dimension (rows of the logical weight).
    pub k: usize,
    /// Output dimension (columns of the logical weight).
    pub n: usize,
    /// `k × n` row-major int8 codes, same layout as [`PackedMatrix`].
    data: Arc<Vec<i8>>,
    /// Per-output-channel scales, `n` long.
    scales: Arc<Vec<f32>>,
}

impl QuantMatrix {
    /// Quantizes a `(k × n)` weight stored input-major. Deterministic:
    /// `round` half-away-from-zero, scales derived only from the column
    /// maxima.
    #[must_use]
    pub fn quantize(w: &Matrix) -> Self {
        let (k, n) = (w.rows, w.cols);
        let mut scales = vec![0.0f32; n];
        for row in w.data.chunks_exact(n) {
            for (s, &v) in scales.iter_mut().zip(row) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scales {
            *s /= 127.0;
        }
        let mut data = vec![0i8; k * n];
        for (qrow, row) in data.chunks_exact_mut(n).zip(w.data.chunks_exact(n)) {
            for ((q, &v), &s) in qrow.iter_mut().zip(row).zip(&scales) {
                if s > 0.0 {
                    *q = (v / s).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        QuantMatrix {
            k,
            n,
            data: Arc::new(data),
            scales: Arc::new(scales),
        }
    }

    /// The scale of output channel `j`.
    #[must_use]
    pub fn scale(&self, j: usize) -> f32 {
        self.scales[j]
    }

    /// Reconstructs the dequantized weights (`s_j · q[k][j]`) — test and
    /// inspection helper, never on the hot path.
    #[must_use]
    pub fn dequantized(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.n);
        for (row, qrow) in m
            .data
            .chunks_exact_mut(self.n)
            .zip(self.data.chunks_exact(self.n))
        {
            for ((v, &q), &s) in row.iter_mut().zip(qrow).zip(self.scales.iter()) {
                *v = s * f32::from(q);
            }
        }
        m
    }

    /// Dense product into caller scratch, mirroring
    /// [`PackedMatrix::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k` or `out.len() != m * n`.
    pub fn matmul_into(&self, a: &[f32], m: usize, out: &mut [f32]) {
        assert_eq!(a.len(), m * self.k, "activation shape");
        assert_eq!(out.len(), m * self.n, "output shape");
        self.gemm_strip(a, m, self.k, 0, 0, self.n, self.n, out);
    }

    /// Strip kernel with the same contract as
    /// [`PackedMatrix::gemm_strip`], accumulating over int8 codes and
    /// applying the per-channel scale once per output element.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_strip(
        &self,
        a: &[f32],
        m: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        stride: usize,
        out: &mut [f32],
    ) {
        let _prof = distserve_prof::scope("gemm_int8");
        let mut i = 0;
        while i < m {
            match m - i {
                1 => self.tile_rows_q::<1>(a, i, depth, k_off, col_lo, width, stride, out),
                2 => self.tile_rows_q::<2>(a, i, depth, k_off, col_lo, width, stride, out),
                3 => self.tile_rows_q::<3>(a, i, depth, k_off, col_lo, width, stride, out),
                4 => self.tile_rows_q::<4>(a, i, depth, k_off, col_lo, width, stride, out),
                5 => self.tile_rows_q::<5>(a, i, depth, k_off, col_lo, width, stride, out),
                _ => self.tile_rows_q::<MR>(a, i, depth, k_off, col_lo, width, stride, out),
            }
            i += (m - i).min(MR);
        }
    }

    /// Int8 twin of `PackedMatrix::tile_rows`: identical tiling, identical
    /// accumulation order (so the threaded int8 path is bit-identical to
    /// the serial int8 path); the only difference is the in-register
    /// `i8 → f32` widening per weight load and the final scale multiply.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn tile_rows_q<const MB: usize>(
        &self,
        a: &[f32],
        i: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        stride: usize,
        out: &mut [f32],
    ) {
        let a_rows: [&[f32]; MB] = core::array::from_fn(|r| &a[(i + r) * depth..][..depth]);
        let mut j = 0;
        while j + NR <= width {
            let mut acc = [[0.0f32; NR]; MB];
            for kk in 0..depth {
                let base = (k_off + kk) * self.n + col_lo + j;
                let q: &[i8; NR] = self.data[base..base + NR]
                    .try_into()
                    .expect("NR-wide weight segment");
                for r in 0..MB {
                    let av = a_rows[r][kk];
                    for (l, acc_l) in acc[r].iter_mut().enumerate() {
                        *acc_l += av * f32::from(q[l]);
                    }
                }
            }
            let scales: &[f32; NR] = self.scales[col_lo + j..col_lo + j + NR]
                .try_into()
                .expect("NR-wide scale segment");
            for r in 0..MB {
                let dst = &mut out[(i + r) * stride + j..][..NR];
                for (l, d) in dst.iter_mut().enumerate() {
                    *d = acc[r][l] * scales[l];
                }
            }
            j += NR;
        }
        while j < width {
            let s = self.scales[col_lo + j];
            for (r, a_row) in a_rows.iter().enumerate() {
                let mut acc = 0.0f32;
                for (kk, &av) in a_row.iter().enumerate() {
                    acc += av * f32::from(self.data[(k_off + kk) * self.n + col_lo + j]);
                }
                out[(i + r) * stride + j] = acc * s;
            }
            j += 1;
        }
    }
}

/// A GEMM operand the engine can dispatch without caring which precision
/// tier backs it: both variants share the strip-kernel contract, so the
/// worker pool schedules them identically.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// Full-precision packed weights (the default, bit-exact tier).
    F32(PackedMatrix),
    /// Int8 per-channel quantized weights (bounded-error tier).
    Int8(QuantMatrix),
}

impl Kernel {
    /// Input dimension.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            Kernel::F32(p) => p.k,
            Kernel::Int8(q) => q.k,
        }
    }

    /// Output dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Kernel::F32(p) => p.n,
            Kernel::Int8(q) => q.n,
        }
    }

    /// Strip kernel dispatch (see [`PackedMatrix::gemm_strip`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_strip(
        &self,
        a: &[f32],
        m: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        stride: usize,
        out: &mut [f32],
    ) {
        match self {
            Kernel::F32(p) => p.gemm_strip(a, m, depth, k_off, col_lo, width, stride, out),
            Kernel::Int8(q) => q.gemm_strip(a, m, depth, k_off, col_lo, width, stride, out),
        }
    }
}

/// Adds `bias` to every row of `m` in place.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols, "bias length");
    for r in 0..m.rows {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// ReLU in place (OPT's FFN activation).
pub fn relu(m: &mut Matrix) {
    relu_slice(&mut m.data);
}

/// ReLU in place over a raw slice (fast path).
pub fn relu_slice(xs: &mut [f32]) {
    for v in xs {
        *v = v.max(0.0);
    }
}

/// LayerNorm over the last dimension with learned scale and shift
/// (reference tier: allocating).
///
/// # Panics
///
/// Panics if `scale` or `shift` length differs from `m.cols`.
#[must_use]
pub fn layer_norm(m: &Matrix, scale: &[f32], shift: &[f32]) -> Matrix {
    let mut out = Matrix::zeros(m.rows, m.cols);
    layer_norm_into(&m.data, m.rows, scale, shift, &mut out.data);
    out
}

/// LayerNorm of an `(m × cols)` activation block into caller scratch.
/// Both tiers flow through this one implementation (the reference tier
/// via [`layer_norm`]), so batched and token-at-a-time outputs stay
/// bit-identical to each other by construction.
///
/// # Panics
///
/// Panics if buffer lengths disagree with `m * scale.len()`.
pub fn layer_norm_into(x: &[f32], m: usize, scale: &[f32], shift: &[f32], out: &mut [f32]) {
    let cols = scale.len();
    assert_eq!(shift.len(), cols, "shift length");
    assert_eq!(x.len(), m * cols, "input shape");
    assert_eq!(out.len(), m * cols, "output shape");
    for r in 0..m {
        let row = &x[r * cols..(r + 1) * cols];
        let mean = sum_lanes(row, |v| v) / cols as f32;
        let var = sum_lanes(row, |v| (v - mean) * (v - mean)) / cols as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        let out_row = &mut out[r * cols..(r + 1) * cols];
        for c in 0..cols {
            out_row[c] = (row[c] - mean) * inv * scale[c] + shift[c];
        }
    }
}

/// Deterministic vectorizable reduction: `f` maps each element, and the
/// mapped values accumulate into 8 independent lanes (element `i` into
/// lane `i % 8`), which fold left-to-right at the end, followed by the
/// tail. The fixed lane split keeps results identical across call sites
/// and runs while the strictly serial left-fold cannot vectorize.
fn sum_lanes(xs: &[f32], f: impl Fn(f32) -> f32) -> f32 {
    let mut lanes = [0.0f32; 8];
    let n = xs.len() / 8 * 8;
    for chunk in xs[..n].chunks_exact(8) {
        for (l, &v) in lanes.iter_mut().zip(chunk) {
            *l += f(v);
        }
    }
    let mut total = 0.0;
    for &l in &lanes {
        total += l;
    }
    for &v in &xs[n..] {
        total += f(v);
    }
    total
}

/// Fast `e^x` for softmax inputs (`x ≤ 0` after the max shift): splits
/// `2^(x·log2 e)` into integer and fractional powers, evaluates the
/// fractional part with a degree-6 polynomial, and assembles the integer
/// part through the IEEE-754 exponent field. Relative error ≈ 2e-6 —
/// invisible after normalization — and branch-free, so the softmax loop
/// auto-vectorizes where `f32::exp` forces a scalar libm call per score.
/// Both compute tiers share this function, keeping them bit-identical.
#[inline]
pub(crate) fn exp_fast(x: f32) -> f32 {
    // Clamp keeps the exponent assembly in range; e^(z·ln2) for z below
    // -126 is zero at f32 precision anyway.
    let z = (x * std::f32::consts::LOG2_E).max(-126.0);
    let zf = z.floor();
    let f = z - zf;
    // 2^f on [0, 1): Taylor coefficients of e^(f·ln2) through degree 6,
    // i.e. ln2^i / i! — the leading one is exactly LN_2.
    let p = 1.0
        + f * (std::f32::consts::LN_2
            + f * (0.240_226_5
                + f * (0.055_504_11
                    + f * (0.009_618_13 + f * (0.001_333_36 + f * 0.000_154_035)))));
    let scale = f32::from_bits(((zf as i32 + 127) as u32) << 23);
    scale * p
}

/// Numerically stable softmax in place over a slice.
pub fn softmax(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // Exponentiate in a pure map loop (no serial reduction mixed in, so
    // the whole `exp_fast` body vectorizes), then sum the stored values
    // in the same element order the fused loop would have used.
    for v in xs.iter_mut() {
        *v = exp_fast(*v - max);
    }
    let mut sum = 0.0;
    for &v in xs.iter() {
        sum += v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Column-wise softmax over a row-major `(rows × cols)` matrix: each
/// *column* is one distribution. Every pass (max, exponentiate, sum,
/// normalize) sweeps rows in ascending order and vectorizes across the
/// `cols` independent columns, so per column the operations and their
/// order are exactly those of [`softmax`] on that column's values —
/// bit-identical results, without the serial per-distribution reduction
/// that keeps the flat version scalar. `tmp` is caller scratch (resized
/// to `2 * cols`).
///
/// The batched attention path stores scores position-major
/// (`scores[pos * heads + head]`) and softmaxes all of a row's heads in
/// one call.
pub fn softmax_cols(xs: &mut [f32], rows: usize, cols: usize, tmp: &mut Vec<f32>) {
    debug_assert_eq!(xs.len(), rows * cols);
    if rows == 0 || cols == 0 {
        return;
    }
    // Common head counts take the const-width kernel: the running
    // max/sum vectors live in registers instead of round-tripping
    // through memory every row, and each row is one straight-line
    // vector operation. Identical operations in identical order.
    match cols {
        2 => return softmax_cols_w::<2>(xs),
        4 => return softmax_cols_w::<4>(xs),
        8 => return softmax_cols_w::<8>(xs),
        16 => return softmax_cols_w::<16>(xs),
        _ => {}
    }
    tmp.resize(2 * cols, 0.0);
    let (maxs, sums) = tmp.split_at_mut(cols);
    maxs.fill(f32::NEG_INFINITY);
    for r in 0..rows {
        for (mx, &v) in maxs.iter_mut().zip(&xs[r * cols..(r + 1) * cols]) {
            *mx = mx.max(v);
        }
    }
    // Exp and sum fuse into one sweep: every op is column-width-wide
    // (nothing serial within a row), and each column still accumulates
    // its exp values in row-ascending order — same sums, one fewer
    // pass over the score block.
    sums.fill(0.0);
    for r in 0..rows {
        let row = &mut xs[r * cols..(r + 1) * cols];
        for ((v, &mx), sm) in row.iter_mut().zip(&*maxs).zip(sums.iter_mut()) {
            *v = exp_fast(*v - mx);
            *sm += *v;
        }
    }
    for r in 0..rows {
        for (v, &sm) in xs[r * cols..(r + 1) * cols].iter_mut().zip(&*sums) {
            *v /= sm;
        }
    }
}

/// [`softmax_cols`] monomorphized for a const column count.
fn softmax_cols_w<const W: usize>(xs: &mut [f32]) {
    let mut maxs = [f32::NEG_INFINITY; W];
    for chunk in xs.chunks_exact(W) {
        for (mx, &v) in maxs.iter_mut().zip(chunk) {
            *mx = mx.max(v);
        }
    }
    let mut sums = [0.0f32; W];
    for chunk in xs.chunks_exact_mut(W) {
        for ((v, &mx), sm) in chunk.iter_mut().zip(&maxs).zip(sums.iter_mut()) {
            *v = exp_fast(*v - mx);
            *sm += *v;
        }
    }
    for chunk in xs.chunks_exact_mut(W) {
        for (v, &sm) in chunk.iter_mut().zip(&sums) {
            *v /= sm;
        }
    }
}

/// Index of the maximum element (greedy sampling), ties to the lowest
/// index for determinism.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_cols_equals_slice_of_full() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        let full = a.matmul(&b);
        let part = a.matmul_cols(&b, 1, 3);
        for r in 0..2 {
            assert_eq!(&full.row(r)[1..3], part.row(r));
        }
    }

    fn test_weight(k: usize, n: usize) -> Matrix {
        Matrix::from_vec(
            k,
            n,
            (0..k * n)
                .map(|i| ((i * 37 + 11) % 97) as f32 * 0.03 - 1.4)
                .collect(),
        )
    }

    fn test_act(m: usize, k: usize) -> Matrix {
        Matrix::from_vec(
            m,
            k,
            (0..m * k)
                .map(|i| ((i * 53 + 5) % 89) as f32 * 0.021 - 0.9)
                .collect(),
        )
    }

    #[test]
    fn packed_matmul_bit_matches_reference() {
        // The fast kernel must reproduce the reference matmul exactly —
        // same multiply-add order per output element.
        for (m, k, n) in [(1, 8, 5), (3, 32, 96), (16, 64, 192), (7, 100, 513)] {
            let a = test_act(m, k);
            let b = test_weight(k, n);
            let reference = a.matmul(&b);
            let packed = PackedMatrix::pack(&b);
            let mut out = vec![0.0; m * n];
            packed.matmul_into(&a.data, m, &mut out);
            assert_eq!(out, reference.data, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn packed_matmul_overwrites_dirty_scratch() {
        let a = test_act(2, 16);
        let b = test_weight(16, 24);
        let packed = PackedMatrix::pack(&b);
        let mut clean = vec![0.0; 2 * 24];
        packed.matmul_into(&a.data, 2, &mut clean);
        let mut dirty = vec![123.0; 2 * 24];
        packed.matmul_into(&a.data, 2, &mut dirty);
        assert_eq!(clean, dirty);
    }

    #[test]
    fn packed_cols_matches_reference_slice() {
        let a = test_act(4, 48);
        let b = test_weight(48, 120);
        let full = a.matmul(&b);
        let packed = PackedMatrix::pack(&b);
        let (lo, hi) = (30, 90);
        let mut out = vec![0.0; 4 * (hi - lo)];
        packed.matmul_cols_into(&a.data, 4, lo, hi, &mut out);
        for r in 0..4 {
            assert_eq!(
                &full.row(r)[lo..hi],
                &out[r * (hi - lo)..(r + 1) * (hi - lo)]
            );
        }
    }

    #[test]
    fn packed_rows_matches_zero_padded_reference() {
        // matmul_rows_into(a_slice) must equal the old trick of zero
        // padding the activation to full depth and multiplying the whole
        // weight.
        let (m, depth, full_k, n) = (3, 20, 64, 40);
        let (lo, hi) = (16, 36);
        assert_eq!(hi - lo, depth);
        let a = test_act(m, depth);
        let b = test_weight(full_k, n);
        let mut padded = Matrix::zeros(m, full_k);
        for r in 0..m {
            padded.row_mut(r)[lo..hi].copy_from_slice(a.row(r));
        }
        let reference = padded.matmul(&b);
        let packed = PackedMatrix::pack(&b);
        let mut out = vec![0.0; m * n];
        packed.matmul_rows_into(&a.data, m, lo, hi, &mut out);
        assert_eq!(out, reference.data);
    }

    #[test]
    fn pack_transposed_flips_layout() {
        let w = test_weight(6, 10); // (n=6 rows × k=10 cols) source.
        let packed = PackedMatrix::pack_transposed(&w);
        assert_eq!(packed.k, 10);
        assert_eq!(packed.n, 6);
        // Multiplying a basis vector extracts one source row.
        let mut e = vec![0.0; 10];
        e[3] = 1.0;
        let mut out = vec![0.0; 6];
        packed.matmul_into(&e, 1, &mut out);
        let expect: Vec<f32> = (0..6).map(|j| w.row(j)[3]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn bias_and_relu() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        add_bias(&mut m, &[0.5, 0.5, 0.5]);
        relu(&mut m);
        assert_eq!(m.data, vec![0.0, 1.0, 2.5]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let out = layer_norm(&m, &[1.0; 4], &[0.0; 4]);
        let mean: f32 = out.data.iter().sum::<f32>() / 4.0;
        let var: f32 = out.data.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_into_matches_reference_batch() {
        let m = test_act(5, 12);
        let scale: Vec<f32> = (0..12).map(|i| 1.0 + i as f32 * 0.01).collect();
        let shift: Vec<f32> = (0..12).map(|i| i as f32 * 0.005 - 0.02).collect();
        let reference = layer_norm(&m, &scale, &shift);
        let mut out = vec![7.0; 5 * 12];
        layer_norm_into(&m.data, 5, &scale, &shift, &mut out);
        assert_eq!(out, reference.data);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 3.0, 2.0];
        softmax(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[1] > xs[2] && xs[2] > xs[0]);
        // Stability with large magnitudes.
        let mut big = vec![1000.0, 1001.0];
        softmax(&mut big);
        assert!(big.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fast_exp_tracks_libm_exp() {
        // Softmax inputs after the max shift: (-inf, 0]. The approximation
        // must stay within ~1e-5 relative everywhere the result matters.
        for i in 0..2000 {
            let x = -(i as f32) * 0.01; // 0 down to -20
            let got = exp_fast(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= want * 2e-5 + 1e-12,
                "exp({x}): got {got}, want {want}"
            );
        }
        assert_eq!(exp_fast(0.0), 1.0);
        // Clamped underflow floors at 2^-126 — vanishing after the
        // softmax normalization divide.
        assert!(exp_fast(-1000.0) <= f32::MIN_POSITIVE);
    }

    #[test]
    fn softmax_close_to_libm_softmax() {
        let xs: Vec<f32> = (0..64)
            .map(|i| ((i * 29 + 3) % 23) as f32 * 0.37 - 4.0)
            .collect();
        let mut fast = xs.clone();
        softmax(&mut fast);
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exact: Vec<f32> = xs.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exact.iter().sum();
        for (f, e) in fast.iter().zip(&exact) {
            assert!((f - e / sum).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_cols_bit_matches_per_column_softmax() {
        // The transposed form must be *bit*-identical to running the flat
        // softmax on each column — the batched attention path relies on
        // it to stay exactly equal to the reference path.
        // Width 8 exercises the const-width kernel, 5 the generic one.
        for cols in [8usize, 5] {
            let rows = 13;
            let mut m: Vec<f32> = (0..rows * cols)
                .map(|i| ((i * 37 + 11) % 41) as f32 * 0.23 - 4.5)
                .collect();
            let mut cols_ref = vec![0.0f32; rows * cols];
            for c in 0..cols {
                let mut col: Vec<f32> = (0..rows).map(|r| m[r * cols + c]).collect();
                softmax(&mut col);
                for (r, v) in col.into_iter().enumerate() {
                    cols_ref[r * cols + c] = v;
                }
            }
            let mut tmp = Vec::new();
            softmax_cols(&mut m, rows, cols, &mut tmp);
            assert_eq!(m, cols_ref, "cols {cols}");
        }
    }

    #[test]
    fn gemm_strip_stride_matches_dense() {
        // Writing a column strip into a wider destination (the worker-
        // pool main-lane path) must produce the same bits as the dense
        // product restricted to that strip.
        let (m, k, n) = (5, 40, 48);
        let a = test_act(m, k);
        let b = test_weight(k, n);
        let packed = PackedMatrix::pack(&b);
        let mut dense = vec![0.0; m * n];
        packed.matmul_into(&a.data, m, &mut dense);
        let (lo, width) = (16, 24);
        let mut strided = vec![99.0f32; m * n];
        packed.gemm_strip(&a.data, m, k, 0, lo, width, n, &mut strided);
        for r in 0..m {
            // The strip lands at the *start* of each stride-wide row.
            assert_eq!(
                &dense[r * n + lo..r * n + lo + width],
                &strided[r * n..r * n + width]
            );
            // Everything past the strip is untouched.
            assert!(strided[r * n + width..(r + 1) * n]
                .iter()
                .all(|&v| v == 99.0));
        }
    }

    #[test]
    fn int8_quantization_roundtrip_bound() {
        // Every reconstructed weight sits within half a quantization step
        // of the original.
        let w = test_weight(24, 33);
        let q = QuantMatrix::quantize(&w);
        let deq = q.dequantized();
        for j in 0..w.cols {
            let s = q.scale(j);
            for kk in 0..w.rows {
                let err = (w.row(kk)[j] - deq.row(kk)[j]).abs();
                assert!(
                    err <= s * 0.5 + 1e-7,
                    "col {j} row {kk}: err {err} > s/2 {s}"
                );
            }
        }
    }

    #[test]
    fn int8_matmul_within_documented_bound() {
        let (m, k, n) = (4, 64, 50);
        let a = test_act(m, k);
        let w = test_weight(k, n);
        let q = QuantMatrix::quantize(&w);
        let reference = a.matmul(&w);
        let mut out = vec![0.0; m * n];
        q.matmul_into(&a.data, m, &mut out);
        for r in 0..m {
            let a1: f32 = a.row(r).iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let bound = q.scale(j) * 0.5 * a1 * (1.0 + 1.0 / 64.0) + 1e-6;
                let err = (out[r * n + j] - reference.row(r)[j]).abs();
                assert!(err <= bound, "row {r} col {j}: err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn int8_matches_dequantized_reference_exactly_in_association() {
        // The int8 kernel computes (Σ a·q)·s; the dequantized reference
        // computes Σ a·(s·q). Not bit-equal in general, but close — and
        // the int8 kernel must be deterministic across strip splits.
        let (m, k, n) = (3, 32, 40);
        let a = test_act(m, k);
        let w = test_weight(k, n);
        let q = QuantMatrix::quantize(&w);
        let mut dense = vec![0.0; m * n];
        q.matmul_into(&a.data, m, &mut dense);
        // Split at an arbitrary non-tile-aligned column: strips must
        // reproduce the dense bits exactly.
        let split = 21;
        let mut strips = vec![0.0f32; m * n];
        q.gemm_strip(&a.data, m, k, 0, 0, split, n, &mut strips);
        q.gemm_strip(&a.data, m, k, 0, split, n - split, n, &mut strips[split..]);
        assert_eq!(dense, strips);
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
