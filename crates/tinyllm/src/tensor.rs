//! Minimal dense linear algebra for the inference engine.
//!
//! Everything here is plain `f32` row-major matrices — no SIMD intrinsics,
//! no unsafe. The goal is correctness and readability; the simulation
//! crates own performance questions.

/// A row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major elements, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Immutable row view.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other`, where `other` is `(self.cols × n)`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × other[:, col_lo..col_hi]` — a column-sliced product, used
    /// by tensor-parallel shards.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or an invalid column range.
    #[must_use]
    pub fn matmul_cols(&self, other: &Matrix, col_lo: usize, col_hi: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        assert!(col_lo <= col_hi && col_hi <= other.cols, "column range");
        let n = col_hi - col_lo;
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.row(k)[col_lo..col_hi];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }
}

/// Adds `bias` to every row of `m` in place.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols, "bias length");
    for r in 0..m.rows {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// ReLU in place (OPT's FFN activation).
pub fn relu(m: &mut Matrix) {
    for v in &mut m.data {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// LayerNorm over the last dimension with learned scale and shift.
///
/// # Panics
///
/// Panics if `scale` or `shift` length differs from `m.cols`.
pub fn layer_norm(m: &Matrix, scale: &[f32], shift: &[f32]) -> Matrix {
    assert_eq!(scale.len(), m.cols);
    assert_eq!(shift.len(), m.cols);
    let mut out = Matrix::zeros(m.rows, m.cols);
    for r in 0..m.rows {
        let row = m.row(r);
        let mean = row.iter().sum::<f32>() / m.cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.cols as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        let out_row = out.row_mut(r);
        for c in 0..m.cols {
            out_row[c] = (row[c] - mean) * inv * scale[c] + shift[c];
        }
    }
    out
}

/// Numerically stable softmax in place over a slice.
pub fn softmax(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Index of the maximum element (greedy sampling), ties to the lowest
/// index for determinism.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_cols_equals_slice_of_full() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        let full = a.matmul(&b);
        let part = a.matmul_cols(&b, 1, 3);
        for r in 0..2 {
            assert_eq!(&full.row(r)[1..3], part.row(r));
        }
    }

    #[test]
    fn bias_and_relu() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        add_bias(&mut m, &[0.5, 0.5, 0.5]);
        relu(&mut m);
        assert_eq!(m.data, vec![0.0, 1.0, 2.5]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let out = layer_norm(&m, &[1.0; 4], &[0.0; 4]);
        let mean: f32 = out.data.iter().sum::<f32>() / 4.0;
        let var: f32 = out.data.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 3.0, 2.0];
        softmax(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[1] > xs[2] && xs[2] > xs[0]);
        // Stability with large magnitudes.
        let mut big = vec![1000.0, 1001.0];
        softmax(&mut big);
        assert!(big.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
