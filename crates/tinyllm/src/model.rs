//! Model configuration and deterministic random weights.

use rand::Rng;
use rand::SeedableRng;

use crate::tensor::Matrix;

/// Numeric precision of the packed weight kernels.
///
/// `F32` is the default, bit-exact tier: batched outputs equal the
/// token-at-a-time reference exactly. `Int8` quantizes the four big
/// projection weights per output channel at pack time
/// ([`crate::tensor::QuantMatrix`]) and dequantizes in-register inside
/// the GEMM microkernel; embeddings, LayerNorms, and the tied-embedding
/// logits projection stay f32. Int8 outputs carry the documented
/// per-channel error bound relative to the f32 reference — bounded, not
/// bit-exact — but remain fully deterministic (threaded output is
/// bit-identical to serial at either precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision packed weights (bit-exact vs. the reference tier).
    #[default]
    F32,
    /// Int8 per-output-channel weights (bounded error vs. f32).
    Int8,
}

/// How a model executes: weight precision plus worker-pool width.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComputeConfig {
    /// Weight precision for the packed GEMM kernels.
    pub precision: Precision,
    /// Worker-pool lanes (threads, including the caller's). `0` means
    /// auto: `TINYLLM_THREADS` if set and positive, else the machine's
    /// available parallelism.
    pub threads: usize,
}

impl ComputeConfig {
    /// Resolves `threads == 0` to the environment's answer.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(v) = std::env::var("TINYLLM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Shape of a tinyllm transformer (OPT-style decoder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TinyConfig {
    /// Transformer layers.
    pub layers: usize,
    /// Hidden size (must divide evenly by `heads`).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate size.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (learned positions).
    pub max_seq: usize,
}

impl TinyConfig {
    /// A test-sized model: 2 layers, 32 hidden, 4 heads.
    #[must_use]
    pub fn tiny() -> Self {
        TinyConfig {
            layers: 2,
            hidden: 32,
            heads: 4,
            ffn: 128,
            vocab: 128,
            max_seq: 256,
        }
    }

    /// A small-but-nontrivial model for examples and profiling.
    #[must_use]
    pub fn small() -> Self {
        TinyConfig {
            layers: 4,
            hidden: 64,
            heads: 8,
            ffn: 256,
            vocab: 512,
            max_seq: 512,
        }
    }

    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "hidden % heads != 0");
        self.hidden / self.heads
    }

    /// Approximate parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let h = self.hidden;
        let per_layer = 4 * h * h + 2 * h * self.ffn + 4 * h + self.ffn + h;
        self.layers * per_layer + self.vocab * h + self.max_seq * h
    }
}

/// Weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Fused QKV projection, `(hidden × 3·hidden)`.
    pub wqkv: Matrix,
    /// Attention output projection, `(hidden × hidden)`.
    pub wo: Matrix,
    /// FFN up projection, `(hidden × ffn)`.
    pub w1: Matrix,
    /// FFN down projection, `(ffn × hidden)`.
    pub w2: Matrix,
    /// Pre-attention LayerNorm scale.
    pub ln1_scale: Vec<f32>,
    /// Pre-attention LayerNorm shift.
    pub ln1_shift: Vec<f32>,
    /// Pre-FFN LayerNorm scale.
    pub ln2_scale: Vec<f32>,
    /// Pre-FFN LayerNorm shift.
    pub ln2_shift: Vec<f32>,
}

/// Full model weights.
#[derive(Debug, Clone)]
pub struct Weights {
    /// Token embeddings, `(vocab × hidden)`.
    pub embed: Matrix,
    /// Learned position embeddings, `(max_seq × hidden)`.
    pub pos: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final LayerNorm scale.
    pub lnf_scale: Vec<f32>,
    /// Final LayerNorm shift.
    pub lnf_shift: Vec<f32>,
}

impl Weights {
    /// Deterministic pseudo-random weights, scaled like standard
    /// transformer initialization (`±0.02 / sqrt(fan_in)`-ish) so
    /// activations stay well-conditioned.
    #[must_use]
    pub fn random(cfg: &TinyConfig, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut mat = |rows: usize, cols: usize, scale: f32| -> Matrix {
            let data = (0..rows * cols)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect();
            Matrix::from_vec(rows, cols, data)
        };
        let h = cfg.hidden;
        let att_scale = 0.5 / (h as f32).sqrt();
        let ffn_scale = 0.5 / (cfg.ffn as f32).sqrt();
        let layers = (0..cfg.layers)
            .map(|_| LayerWeights {
                wqkv: mat(h, 3 * h, att_scale),
                wo: mat(h, h, att_scale),
                w1: mat(h, cfg.ffn, att_scale),
                w2: mat(cfg.ffn, h, ffn_scale),
                ln1_scale: vec![1.0; h],
                ln1_shift: vec![0.0; h],
                ln2_scale: vec![1.0; h],
                ln2_shift: vec![0.0; h],
            })
            .collect();
        Weights {
            embed: mat(cfg.vocab, h, 0.1),
            pos: mat(cfg.max_seq, h, 0.05),
            layers,
            lnf_scale: vec![1.0; h],
            lnf_shift: vec![0.0; h],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dim_checks() {
        assert_eq!(TinyConfig::tiny().head_dim(), 8);
        assert_eq!(TinyConfig::small().head_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "hidden % heads")]
    fn bad_head_split_panics() {
        let cfg = TinyConfig {
            heads: 5,
            ..TinyConfig::tiny()
        };
        let _ = cfg.head_dim();
    }

    #[test]
    fn weights_deterministic_by_seed() {
        let cfg = TinyConfig::tiny();
        let a = Weights::random(&cfg, 7);
        let b = Weights::random(&cfg, 7);
        let c = Weights::random(&cfg, 8);
        assert_eq!(a.embed.data, b.embed.data);
        assert_ne!(a.embed.data, c.embed.data);
    }

    #[test]
    fn weight_shapes() {
        let cfg = TinyConfig::tiny();
        let w = Weights::random(&cfg, 1);
        assert_eq!(w.layers.len(), cfg.layers);
        assert_eq!(w.layers[0].wqkv.cols, 3 * cfg.hidden);
        assert_eq!(w.layers[0].w1.cols, cfg.ffn);
        assert_eq!(w.layers[0].w2.rows, cfg.ffn);
        assert_eq!(w.embed.rows, cfg.vocab);
        assert_eq!(w.pos.rows, cfg.max_seq);
    }

    #[test]
    fn param_count_sane() {
        let cfg = TinyConfig::tiny();
        // 2 layers × (4·32² + 2·32·128 + small) + embeddings.
        let p = cfg.param_count();
        assert!(p > 30_000 && p < 80_000, "params {p}");
    }
}
