//! Token sampling strategies.
//!
//! The paper's frontend "supports OpenAI API compatible interface where
//! clients can specify the sampling parameters like maximum output length
//! and temperature" (§5). This module provides the sampling half:
//! deterministic greedy decoding and seeded temperature / top-k sampling
//! over real logits.

use crate::tensor::{argmax, softmax};

/// A sampling strategy for picking the next token from logits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Always the highest-logit token (deterministic).
    Greedy,
    /// Softmax sampling at `temperature` over the `k` highest logits,
    /// driven by a per-request seeded generator.
    TopK {
        /// Number of candidates kept.
        k: usize,
        /// Softmax temperature (>0; lower is sharper).
        temperature: f32,
    },
}

/// Deterministic per-request sampler state.
#[derive(Debug, Clone)]
pub struct Sampler {
    strategy: Sampling,
    state: u64,
}

impl Sampler {
    /// Creates a sampler; `seed` only matters for stochastic strategies.
    ///
    /// # Panics
    ///
    /// Panics if a `TopK` strategy has `k == 0` or a non-positive
    /// temperature.
    #[must_use]
    pub fn new(strategy: Sampling, seed: u64) -> Self {
        if let Sampling::TopK { k, temperature } = strategy {
            assert!(k > 0, "top-k needs k >= 1");
            assert!(temperature > 0.0, "temperature must be positive");
        }
        Sampler {
            strategy,
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// SplitMix64 step for the sampler's private stream.
    fn next_uniform(&mut self) -> f32 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Picks the next token id from `logits`.
    pub fn sample(&mut self, logits: &[f32]) -> u32 {
        match self.strategy {
            Sampling::Greedy => argmax(logits) as u32,
            Sampling::TopK { k, temperature } => {
                // Collect the k best (index, logit) pairs.
                let mut indexed: Vec<(usize, f32)> = logits.iter().copied().enumerate().collect();
                indexed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                indexed.truncate(k.min(indexed.len()));
                let mut probs: Vec<f32> = indexed.iter().map(|(_, l)| l / temperature).collect();
                softmax(&mut probs);
                let u = self.next_uniform();
                let mut acc = 0.0;
                for ((idx, _), p) in indexed.iter().zip(&probs) {
                    acc += p;
                    if u < acc {
                        return *idx as u32;
                    }
                }
                indexed.last().expect("k >= 1").0 as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.1, 2.0, -1.0, 1.9, 0.0]
    }

    #[test]
    fn greedy_picks_max() {
        let mut s = Sampler::new(Sampling::Greedy, 0);
        assert_eq!(s.sample(&logits()), 1);
    }

    #[test]
    fn top1_equals_greedy() {
        let mut s = Sampler::new(
            Sampling::TopK {
                k: 1,
                temperature: 1.0,
            },
            7,
        );
        for _ in 0..20 {
            assert_eq!(s.sample(&logits()), 1);
        }
    }

    #[test]
    fn topk_only_emits_top_candidates() {
        let mut s = Sampler::new(
            Sampling::TopK {
                k: 2,
                temperature: 1.0,
            },
            3,
        );
        for _ in 0..200 {
            let t = s.sample(&logits());
            assert!(t == 1 || t == 3, "sampled {t} outside top-2");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let draw = |seed| {
            let mut s = Sampler::new(
                Sampling::TopK {
                    k: 3,
                    temperature: 0.8,
                },
                seed,
            );
            (0..32).map(|_| s.sample(&logits())).collect::<Vec<_>>()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    fn low_temperature_sharpens() {
        // At very low temperature, top-k behaves like greedy.
        let mut s = Sampler::new(
            Sampling::TopK {
                k: 5,
                temperature: 0.01,
            },
            5,
        );
        for _ in 0..50 {
            assert_eq!(s.sample(&logits()), 1);
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = Sampler::new(
            Sampling::TopK {
                k: 0,
                temperature: 1.0,
            },
            0,
        );
    }
}
