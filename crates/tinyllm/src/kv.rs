//! A real paged KV cache (the PagedAttention memory layout).
//!
//! Key/value vectors live in fixed-size *blocks* of `block_size` token
//! positions; each sequence owns a *block table* mapping its logical
//! positions to physical blocks. Allocation takes blocks from a free
//! list; freeing a sequence returns them. This is the same structure
//! `distserve-engine`'s block manager accounts for — here it holds actual
//! floats that the attention kernel reads back.

use std::collections::HashMap;

/// A sequence identifier.
pub type SeqId = u64;

/// Errors from the paged cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagedKvError {
    /// The free list is empty.
    OutOfBlocks,
    /// The sequence is unknown.
    UnknownSeq(SeqId),
    /// Position written out of order (must append densely).
    NonContiguousWrite {
        /// Sequence being written.
        seq: SeqId,
        /// Expected next position.
        expected: usize,
        /// Position given.
        got: usize,
    },
}

impl std::fmt::Display for PagedKvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagedKvError::OutOfBlocks => write!(f, "KV pool exhausted"),
            PagedKvError::UnknownSeq(s) => write!(f, "unknown sequence {s}"),
            PagedKvError::NonContiguousWrite { seq, expected, got } => {
                write!(f, "seq {seq}: expected append at {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for PagedKvError {}

/// Paged K/V storage for one model.
///
/// Physical layout: `blocks[block][layer][slot][2][hidden]` flattened —
/// each block holds `block_size` consecutive token positions for *all*
/// layers (keys then values per slot).
#[derive(Debug, Clone)]
pub struct PagedKv {
    layers: usize,
    hidden: usize,
    block_size: usize,
    storage: Vec<f32>,
    free: Vec<usize>,
    tables: HashMap<SeqId, Table>,
}

#[derive(Debug, Clone)]
struct Table {
    blocks: Vec<usize>,
    len: usize,
}

impl PagedKv {
    /// Creates a pool of `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(layers: usize, hidden: usize, block_size: usize, num_blocks: usize) -> Self {
        assert!(layers > 0 && hidden > 0 && block_size > 0 && num_blocks > 0);
        let block_floats = layers * block_size * 2 * hidden;
        PagedKv {
            layers,
            hidden,
            block_size,
            storage: vec![0.0; block_floats * num_blocks],
            free: (0..num_blocks).rev().collect(),
            tables: HashMap::new(),
        }
    }

    /// Registers a new sequence with an empty block table.
    pub fn register(&mut self, seq: SeqId) {
        self.tables.entry(seq).or_insert(Table {
            blocks: Vec::new(),
            len: 0,
        });
    }

    /// Number of tokens stored for `seq` (0 if unknown).
    #[must_use]
    pub fn seq_len(&self, seq: SeqId) -> usize {
        self.tables.get(&seq).map_or(0, |t| t.len)
    }

    /// Free blocks remaining.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Total blocks in the pool.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.storage.len() / (self.layers * self.block_size * 2 * self.hidden)
    }

    /// Appends the K and V vectors of one token position for one layer.
    /// Layers must be written for the same position before advancing
    /// (position advances when layer 0 is written).
    ///
    /// # Errors
    ///
    /// [`PagedKvError`] on unknown sequences, pool exhaustion, or
    /// out-of-order writes.
    pub fn append(
        &mut self,
        seq: SeqId,
        layer: usize,
        pos: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), PagedKvError> {
        debug_assert_eq!(k.len(), self.hidden);
        debug_assert_eq!(v.len(), self.hidden);
        debug_assert!(layer < self.layers);
        let block_size = self.block_size;
        let table = self
            .tables
            .get_mut(&seq)
            .ok_or(PagedKvError::UnknownSeq(seq))?;
        // Layer 0 drives the logical length; other layers fill the same
        // position.
        if layer == 0 {
            if pos != table.len {
                return Err(PagedKvError::NonContiguousWrite {
                    seq,
                    expected: table.len,
                    got: pos,
                });
            }
            if pos == table.blocks.len() * block_size {
                let block = self.free.pop().ok_or(PagedKvError::OutOfBlocks)?;
                let table = self.tables.get_mut(&seq).expect("just present");
                table.blocks.push(block);
                table.len += 1;
            } else {
                table.len += 1;
            }
        } else if pos >= table.len {
            return Err(PagedKvError::NonContiguousWrite {
                seq,
                expected: table.len.saturating_sub(1),
                got: pos,
            });
        }
        let table = self.tables.get(&seq).expect("present");
        let block = table.blocks[pos / block_size];
        let slot = pos % block_size;
        let base = self.slot_base(block, layer, slot);
        let h = self.hidden;
        self.storage[base..base + h].copy_from_slice(k);
        self.storage[base + h..base + 2 * h].copy_from_slice(v);
        Ok(())
    }

    /// Reads the K vector at `(seq, layer, pos)`.
    ///
    /// # Panics
    ///
    /// Panics on unknown sequence or out-of-range position — attention
    /// must never read unwritten cache.
    #[must_use]
    pub fn key(&self, seq: SeqId, layer: usize, pos: usize) -> &[f32] {
        let (base, h) = self.read_base(seq, layer, pos);
        &self.storage[base..base + h]
    }

    /// Reads the V vector at `(seq, layer, pos)`.
    ///
    /// # Panics
    ///
    /// Panics on unknown sequence or out-of-range position.
    #[must_use]
    pub fn value(&self, seq: SeqId, layer: usize, pos: usize) -> &[f32] {
        let (base, h) = self.read_base(seq, layer, pos);
        &self.storage[base + h..base + 2 * h]
    }

    fn read_base(&self, seq: SeqId, layer: usize, pos: usize) -> (usize, usize) {
        let table = self.tables.get(&seq).expect("sequence registered");
        assert!(pos < table.len, "read past KV length {} at {pos}", table.len);
        let block = table.blocks[pos / self.block_size];
        (self.slot_base(block, layer, pos % self.block_size), self.hidden)
    }

    fn slot_base(&self, block: usize, layer: usize, slot: usize) -> usize {
        let block_floats = self.layers * self.block_size * 2 * self.hidden;
        block * block_floats + (layer * self.block_size + slot) * 2 * self.hidden
    }

    /// Frees a sequence's blocks.
    ///
    /// # Errors
    ///
    /// [`PagedKvError::UnknownSeq`] when the sequence is not registered.
    pub fn release(&mut self, seq: SeqId) -> Result<(), PagedKvError> {
        let table = self
            .tables
            .remove(&seq)
            .ok_or(PagedKvError::UnknownSeq(seq))?;
        self.free.extend(table.blocks);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv() -> PagedKv {
        PagedKv::new(2, 4, 4, 8)
    }

    #[test]
    fn roundtrip_single_token() {
        let mut kv = kv();
        kv.register(1);
        let k = [1.0, 2.0, 3.0, 4.0];
        let v = [5.0, 6.0, 7.0, 8.0];
        kv.append(1, 0, 0, &k, &v).unwrap();
        kv.append(1, 1, 0, &[9.0; 4], &[10.0; 4]).unwrap();
        assert_eq!(kv.key(1, 0, 0), &k);
        assert_eq!(kv.value(1, 0, 0), &v);
        assert_eq!(kv.key(1, 1, 0), &[9.0; 4]);
        assert_eq!(kv.seq_len(1), 1);
    }

    #[test]
    fn blocks_allocated_on_boundaries() {
        let mut kv = kv(); // Block size 4, 8 blocks.
        kv.register(1);
        for pos in 0..4 {
            kv.append(1, 0, pos, &[pos as f32; 4], &[0.0; 4]).unwrap();
        }
        assert_eq!(kv.free_blocks(), 7);
        kv.append(1, 0, 4, &[4.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(kv.free_blocks(), 6);
        // Values readable across the block boundary.
        assert_eq!(kv.key(1, 0, 3), &[3.0; 4]);
        assert_eq!(kv.key(1, 0, 4), &[4.0; 4]);
    }

    #[test]
    fn release_returns_blocks() {
        let mut kv = kv();
        kv.register(1);
        for pos in 0..8 {
            kv.append(1, 0, pos, &[0.0; 4], &[0.0; 4]).unwrap();
        }
        assert_eq!(kv.free_blocks(), 6);
        kv.release(1).unwrap();
        assert_eq!(kv.free_blocks(), 8);
        assert_eq!(kv.release(1), Err(PagedKvError::UnknownSeq(1)));
    }

    #[test]
    fn exhaustion_reported() {
        let mut kv = PagedKv::new(1, 4, 2, 1);
        kv.register(1);
        kv.append(1, 0, 0, &[0.0; 4], &[0.0; 4]).unwrap();
        kv.append(1, 0, 1, &[0.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(
            kv.append(1, 0, 2, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::OutOfBlocks)
        );
    }

    #[test]
    fn out_of_order_write_rejected() {
        let mut kv = kv();
        kv.register(1);
        assert!(matches!(
            kv.append(1, 0, 3, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::NonContiguousWrite { .. })
        ));
    }

    #[test]
    fn interleaved_sequences_stay_separate() {
        let mut kv = kv();
        kv.register(1);
        kv.register(2);
        kv.append(1, 0, 0, &[1.0; 4], &[1.5; 4]).unwrap();
        kv.append(2, 0, 0, &[2.0; 4], &[2.5; 4]).unwrap();
        kv.append(1, 0, 1, &[3.0; 4], &[3.5; 4]).unwrap();
        assert_eq!(kv.key(1, 0, 0), &[1.0; 4]);
        assert_eq!(kv.key(2, 0, 0), &[2.0; 4]);
        assert_eq!(kv.value(1, 0, 1), &[3.5; 4]);
    }

    #[test]
    fn unknown_sequence_append_fails() {
        let mut kv = kv();
        assert_eq!(
            kv.append(9, 0, 0, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::UnknownSeq(9))
        );
    }
}
