//! A real paged KV cache (the PagedAttention memory layout).
//!
//! Key/value vectors live in fixed-size *blocks* of `block_size` token
//! positions; each sequence owns a *block table* mapping its logical
//! positions to physical blocks. Allocation takes blocks from a free
//! list; freeing a sequence returns them. This is the same structure
//! `distserve-engine`'s block manager accounts for — here it holds actual
//! floats that the attention kernel reads back.

use std::collections::HashMap;
use std::sync::Arc;

/// A sequence identifier.
pub type SeqId = u64;

/// Errors from the paged cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagedKvError {
    /// The free list is empty.
    OutOfBlocks,
    /// The sequence is unknown.
    UnknownSeq(SeqId),
    /// Position written out of order (must append densely).
    NonContiguousWrite {
        /// Sequence being written.
        seq: SeqId,
        /// Expected next position.
        expected: usize,
        /// Position given.
        got: usize,
    },
}

impl std::fmt::Display for PagedKvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagedKvError::OutOfBlocks => write!(f, "KV pool exhausted"),
            PagedKvError::UnknownSeq(s) => write!(f, "unknown sequence {s}"),
            PagedKvError::NonContiguousWrite { seq, expected, got } => {
                write!(f, "seq {seq}: expected append at {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for PagedKvError {}

/// Paged K/V storage for one model.
///
/// Physical layout per `(block, layer)`: `block_size` slots of
/// `[key hidden | value hidden]`, followed by a *transposed key panel* —
/// the same keys stored dim-major (`kt[dim][slot]`, `hidden × block_size`
/// floats). Each block holds `block_size` consecutive token positions
/// for *all* layers. The panel is written on append alongside the
/// position-major copy; batched attention's score pass reads it so the
/// per-head dot products vectorize across a whole block of positions
/// (contiguous in the position index) instead of striding row to row.
#[derive(Debug)]
pub struct PagedKv {
    layers: usize,
    hidden: usize,
    block_size: usize,
    /// Behind an [`Arc`] so the worker pool can hand attention workers a
    /// `'static` read handle without copying the pool or using `unsafe`.
    /// Writers reclaim exclusive access via [`Self::storage_mut`] once
    /// all workers have dropped their clones (they do so before
    /// signaling completion).
    storage: Arc<Vec<f32>>,
    free: Vec<usize>,
    tables: HashMap<SeqId, Table>,
    /// Per-block reference counts. A freshly allocated block has count 1
    /// (its owning sequence); [`Self::fork_prefix`] and
    /// [`Self::retain_block`] bump counts for shared prefix blocks, and a
    /// block only returns to the free list when its count reaches zero.
    ref_counts: Vec<u32>,
}

impl Clone for PagedKv {
    /// Deep copy: the clone gets its own storage allocation, never a
    /// shared handle — two caches must not see each other's writes, and
    /// a shared handle would also pin [`Self::storage_mut`]'s
    /// exclusivity check.
    fn clone(&self) -> Self {
        PagedKv {
            layers: self.layers,
            hidden: self.hidden,
            block_size: self.block_size,
            storage: Arc::new(self.storage.as_ref().clone()),
            free: self.free.clone(),
            tables: self.tables.clone(),
            ref_counts: self.ref_counts.clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct Table {
    blocks: Vec<usize>,
    len: usize,
}

impl PagedKv {
    /// Creates a pool of `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(layers: usize, hidden: usize, block_size: usize, num_blocks: usize) -> Self {
        assert!(layers > 0 && hidden > 0 && block_size > 0 && num_blocks > 0);
        let block_floats = layers * block_size * 3 * hidden;
        PagedKv {
            layers,
            hidden,
            block_size,
            storage: Arc::new(vec![0.0; block_floats * num_blocks]),
            free: (0..num_blocks).rev().collect(),
            tables: HashMap::new(),
            ref_counts: vec![0; num_blocks],
        }
    }

    /// Positions per block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// A cheap `'static` read handle to the backing floats, for farming
    /// attention rows out to pool workers. Callers must drop the handle
    /// before the next append (workers drop theirs before signaling
    /// completion).
    pub(crate) fn storage_arc(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.storage)
    }

    /// The block table and stored length of `seq`, for staging worker
    /// attention jobs.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is not registered.
    pub(crate) fn table_parts(&self, seq: SeqId) -> (&[usize], usize) {
        let table = self.tables.get(&seq).expect("sequence registered");
        (&table.blocks, table.len)
    }

    /// `(hidden, block_size, block_floats, layer_base)` for `layer` —
    /// everything [`KvLayerView::from_parts`] needs besides the table.
    pub(crate) fn geometry(&self, layer: usize) -> (usize, usize, usize, usize) {
        (
            self.hidden,
            self.block_size,
            self.layers * self.layer_stride(),
            layer * self.layer_stride(),
        )
    }

    /// Exclusive access to the backing floats. Normally the handle count
    /// is already 1 (workers drop their clones before completion is
    /// observed); if a stale handle somehow survives, the storage is
    /// copied out from under it rather than blocking — readers of the
    /// old allocation see a consistent snapshot.
    fn storage_mut(&mut self) -> &mut Vec<f32> {
        if Arc::get_mut(&mut self.storage).is_none() {
            self.storage = Arc::new(self.storage.as_ref().clone());
        }
        Arc::get_mut(&mut self.storage).expect("freshly copied storage is unshared")
    }

    /// Registers a new sequence with an empty block table.
    pub fn register(&mut self, seq: SeqId) {
        self.tables.entry(seq).or_insert(Table {
            blocks: Vec::new(),
            len: 0,
        });
    }

    /// Number of tokens stored for `seq` (0 if unknown).
    #[must_use]
    pub fn seq_len(&self, seq: SeqId) -> usize {
        self.tables.get(&seq).map_or(0, |t| t.len)
    }

    /// Free blocks remaining.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Total blocks in the pool.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.storage.len() / (self.layers * self.layer_stride())
    }

    /// Floats per `(block, layer)` region: the position-major slots plus
    /// the transposed key panel.
    fn layer_stride(&self) -> usize {
        self.block_size * 3 * self.hidden
    }

    /// Appends the K and V vectors of one token position for one layer.
    /// Layers must be written for the same position before advancing
    /// (position advances when layer 0 is written).
    ///
    /// # Errors
    ///
    /// [`PagedKvError`] on unknown sequences, pool exhaustion, or
    /// out-of-order writes.
    pub fn append(
        &mut self,
        seq: SeqId,
        layer: usize,
        pos: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), PagedKvError> {
        debug_assert_eq!(k.len(), self.hidden);
        debug_assert_eq!(v.len(), self.hidden);
        self.append_range(seq, layer, pos, 0, k, v)
    }

    /// Appends only dims `[dim_lo, dim_lo + k.len())` of one position's K
    /// and V for one layer — the write a tensor-parallel shard makes for
    /// its own head slice, replacing the old full-hidden masked write.
    /// Dims outside the range are left untouched; a shard only ever reads
    /// the dims it owns. Position accounting is identical to [`append`].
    ///
    /// # Errors
    ///
    /// [`PagedKvError`] on unknown sequences, pool exhaustion, or
    /// out-of-order writes.
    ///
    /// [`append`]: PagedKv::append
    pub fn append_range(
        &mut self,
        seq: SeqId,
        layer: usize,
        pos: usize,
        dim_lo: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), PagedKvError> {
        debug_assert_eq!(k.len(), v.len());
        debug_assert!(dim_lo + k.len() <= self.hidden);
        debug_assert!(layer < self.layers);
        let block_size = self.block_size;
        let table = self
            .tables
            .get_mut(&seq)
            .ok_or(PagedKvError::UnknownSeq(seq))?;
        // Layer 0 drives the logical length; other layers fill the same
        // position. A repeated layer-0 write to the newest position is a
        // refill (another shard's dim range), not an advance.
        if layer == 0 {
            if pos == table.len {
                if pos == table.blocks.len() * block_size {
                    let block = self.free.pop().ok_or(PagedKvError::OutOfBlocks)?;
                    self.ref_counts[block] = 1;
                    let table = self.tables.get_mut(&seq).expect("just present");
                    table.blocks.push(block);
                    table.len += 1;
                } else {
                    table.len += 1;
                }
            } else if pos + 1 != table.len {
                return Err(PagedKvError::NonContiguousWrite {
                    seq,
                    expected: table.len,
                    got: pos,
                });
            }
        } else if pos >= table.len {
            return Err(PagedKvError::NonContiguousWrite {
                seq,
                expected: table.len.saturating_sub(1),
                got: pos,
            });
        }
        let table = self.tables.get(&seq).expect("present");
        let block = table.blocks[pos / block_size];
        // Copy-on-write invariant: writes land only in exclusively owned
        // blocks. Forks are block-aligned, so a forked sequence's appends
        // always start a fresh block and never mutate shared prefix data.
        debug_assert_eq!(
            self.ref_counts[block], 1,
            "write to shared block {block} (seq {seq} pos {pos})"
        );
        let slot = pos % block_size;
        let base = self.slot_base(block, layer, slot);
        let h = self.hidden;
        let w = k.len();
        // Mirror the key into the block's dim-major transposed panel
        // (this position's column of each written dim's row).
        let kt = block * self.layers * self.layer_stride()
            + layer * self.layer_stride()
            + 2 * h * block_size;
        let storage = self.storage_mut();
        storage[base + dim_lo..base + dim_lo + w].copy_from_slice(k);
        storage[base + h + dim_lo..base + h + dim_lo + w].copy_from_slice(v);
        for (j, &kval) in k.iter().enumerate() {
            storage[kt + (dim_lo + j) * block_size + slot] = kval;
        }
        Ok(())
    }

    /// Reads the K vector at `(seq, layer, pos)`.
    ///
    /// # Panics
    ///
    /// Panics on unknown sequence or out-of-range position — attention
    /// must never read unwritten cache.
    #[must_use]
    pub fn key(&self, seq: SeqId, layer: usize, pos: usize) -> &[f32] {
        let (base, h) = self.read_base(seq, layer, pos);
        &self.storage[base..base + h]
    }

    /// Reads the V vector at `(seq, layer, pos)`.
    ///
    /// # Panics
    ///
    /// Panics on unknown sequence or out-of-range position.
    #[must_use]
    pub fn value(&self, seq: SeqId, layer: usize, pos: usize) -> &[f32] {
        let (base, h) = self.read_base(seq, layer, pos);
        &self.storage[base + h..base + 2 * h]
    }

    /// A read view of one `(seq, layer)` pair that resolves the block
    /// table once; the attention inner loop then indexes positions with
    /// plain arithmetic instead of a hash lookup per position.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is not registered.
    #[must_use]
    pub fn layer_view(&self, seq: SeqId, layer: usize) -> KvLayerView<'_> {
        debug_assert!(layer < self.layers);
        let table = self.tables.get(&seq).expect("sequence registered");
        KvLayerView {
            storage: &self.storage[..],
            blocks: &table.blocks,
            len: table.len,
            block_size: self.block_size,
            hidden: self.hidden,
            block_floats: self.layers * self.layer_stride(),
            layer_base: layer * self.layer_stride(),
        }
    }

    fn read_base(&self, seq: SeqId, layer: usize, pos: usize) -> (usize, usize) {
        let table = self.tables.get(&seq).expect("sequence registered");
        assert!(
            pos < table.len,
            "read past KV length {} at {pos}",
            table.len
        );
        let block = table.blocks[pos / self.block_size];
        (
            self.slot_base(block, layer, pos % self.block_size),
            self.hidden,
        )
    }

    fn slot_base(&self, block: usize, layer: usize, slot: usize) -> usize {
        block * self.layers * self.layer_stride()
            + layer * self.layer_stride()
            + slot * 2 * self.hidden
    }

    /// Drops one reference from each of a sequence's blocks and removes
    /// the sequence; blocks whose count reaches zero return to the free
    /// list. Blocks still pinned by a prefix cache or another forked
    /// sequence stay allocated.
    ///
    /// # Errors
    ///
    /// [`PagedKvError::UnknownSeq`] when the sequence is not registered.
    pub fn release(&mut self, seq: SeqId) -> Result<(), PagedKvError> {
        let table = self
            .tables
            .remove(&seq)
            .ok_or(PagedKvError::UnknownSeq(seq))?;
        for block in table.blocks {
            self.release_block(block);
        }
        Ok(())
    }

    /// Registers `seq` whose first `shared.len() * block_size` positions
    /// are the already-filled blocks `shared`, bumping each block's
    /// reference count. The forked sequence reads the shared prefix
    /// through its block table exactly as if it had prefilled it; its own
    /// appends start at the first position past the shared blocks, in
    /// fresh blocks (the fork is block-aligned by construction, which is
    /// what keeps shared blocks copy-on-write without any copying).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is already registered or a shared block is free.
    pub fn fork_prefix(&mut self, seq: SeqId, shared: &[usize]) {
        assert!(
            !self.tables.contains_key(&seq),
            "fork_prefix: seq {seq} already registered"
        );
        for &block in shared {
            assert!(
                self.ref_counts[block] > 0,
                "fork_prefix: block {block} is not live"
            );
            self.ref_counts[block] += 1;
        }
        self.tables.insert(
            seq,
            Table {
                blocks: shared.to_vec(),
                len: shared.len() * self.block_size,
            },
        );
    }

    /// Adds one reference to `block`, pinning it against release. Used by
    /// the prefix cache to take ownership of blocks it indexes.
    ///
    /// # Panics
    ///
    /// Panics if the block is on the free list (count zero).
    pub fn retain_block(&mut self, block: usize) {
        assert!(
            self.ref_counts[block] > 0,
            "retain_block: block {block} is not live"
        );
        self.ref_counts[block] += 1;
    }

    /// Drops one reference from `block`; at zero the block returns to the
    /// free list.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero.
    pub fn release_block(&mut self, block: usize) {
        let rc = &mut self.ref_counts[block];
        assert!(*rc > 0, "release_block: block {block} already free");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(block);
        }
    }

    /// The current reference count of `block` (0 = free).
    #[must_use]
    pub fn block_ref_count(&self, block: usize) -> u32 {
        self.ref_counts[block]
    }

    /// The physical block ids backing `seq`, in position order (`None`
    /// if the sequence is unknown). The prefix cache reads this after
    /// prefill to index the prompt's full blocks.
    #[must_use]
    pub fn block_table(&self, seq: SeqId) -> Option<&[usize]> {
        self.tables.get(&seq).map(|t| t.blocks.as_slice())
    }
}

/// Borrowed read access to one sequence's K/V at one layer (see
/// [`PagedKv::layer_view`]).
#[derive(Debug, Clone, Copy)]
pub struct KvLayerView<'a> {
    storage: &'a [f32],
    blocks: &'a [usize],
    len: usize,
    block_size: usize,
    hidden: usize,
    block_floats: usize,
    layer_base: usize,
}

impl<'a> KvLayerView<'a> {
    /// Reassembles a view from staged parts on a pool worker thread —
    /// the same fields [`PagedKv::layer_view`] resolves, but with the
    /// storage borrowed from an `Arc` handle and the block table from a
    /// staged copy.
    pub(crate) fn from_parts(
        storage: &'a [f32],
        blocks: &'a [usize],
        len: usize,
        block_size: usize,
        hidden: usize,
        block_floats: usize,
        layer_base: usize,
    ) -> Self {
        KvLayerView {
            storage,
            blocks,
            len,
            block_size,
            hidden,
            block_floats,
            layer_base,
        }
    }
}

impl KvLayerView<'_> {
    /// Tokens stored for the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence has no tokens yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_base(&self, pos: usize) -> usize {
        debug_assert!(pos < self.len, "read past KV length {} at {pos}", self.len);
        let block = self.blocks[pos / self.block_size];
        block * self.block_floats + self.layer_base + (pos % self.block_size) * 2 * self.hidden
    }

    /// The K vector at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the stored length.
    #[inline]
    #[must_use]
    pub fn key(&self, pos: usize) -> &[f32] {
        let base = self.slot_base(pos);
        &self.storage[base..base + self.hidden]
    }

    /// The V vector at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the stored length.
    #[inline]
    #[must_use]
    pub fn value(&self, pos: usize) -> &[f32] {
        let base = self.slot_base(pos) + self.hidden;
        &self.storage[base..base + self.hidden]
    }

    /// Walks the block table once, yielding K or V rows for positions
    /// `0..ctx` in order — no per-position divide like [`Self::key`].
    fn rows(&self, ctx: usize, kv_off: usize) -> impl Iterator<Item = &'_ [f32]> {
        debug_assert!(ctx <= self.len, "read past KV length {} at {ctx}", self.len);
        let storage = self.storage;
        let h = self.hidden;
        let (bs, bf, lb) = (self.block_size, self.block_floats, self.layer_base);
        self.blocks
            .iter()
            .flat_map(move |&b| {
                let base = b * bf + lb + kv_off;
                (0..bs).map(move |s| &storage[base + s * 2 * h..base + s * 2 * h + h])
            })
            .take(ctx)
    }

    /// The K vectors at positions `0..ctx`, in order (attention's
    /// score pass).
    pub fn keys(&self, ctx: usize) -> impl Iterator<Item = &'_ [f32]> {
        self.rows(ctx, 0)
    }

    /// The V vectors at positions `0..ctx`, in order (attention's
    /// weighted-sum pass).
    pub fn values(&self, ctx: usize) -> impl Iterator<Item = &'_ [f32]> {
        self.rows(ctx, self.hidden)
    }

    /// Positions per block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The position-major slot regions covering positions `0..ctx`, one
    /// per block in order, each paired with its count of valid slots.
    /// A region is the block's `block_size × [key hidden | value hidden]`
    /// floats; slot `s`'s V vector starts at `s * 2 * hidden + hidden`.
    /// Hot loops index slots with plain arithmetic on the region instead
    /// of driving a per-position iterator.
    pub fn slot_regions(&self, ctx: usize) -> impl Iterator<Item = (&'_ [f32], usize)> {
        debug_assert!(ctx <= self.len, "read past KV length {} at {ctx}", self.len);
        let storage = self.storage;
        let region = 2 * self.hidden * self.block_size;
        let (bs, bf, lb) = (self.block_size, self.block_floats, self.layer_base);
        self.blocks
            .iter()
            .take(ctx.div_ceil(bs))
            .enumerate()
            .map(move |(bi, &b)| {
                let base = b * bf + lb;
                (&storage[base..base + region], (ctx - bi * bs).min(bs))
            })
    }

    /// The dim-major transposed key panels covering positions `0..ctx`,
    /// one per block in order: dim `l`'s row spans the panel's
    /// `[l * block_size, (l + 1) * block_size)` — that dim's key value at
    /// each of the block's positions, contiguous in the position index
    /// (attention's score pass vectorizes over it). The last panel may
    /// extend past `ctx`; its trailing columns are unwritten garbage the
    /// caller must ignore.
    pub fn key_panels(&self, ctx: usize) -> impl Iterator<Item = &'_ [f32]> {
        debug_assert!(ctx <= self.len, "read past KV length {} at {ctx}", self.len);
        let storage = self.storage;
        let panel = self.hidden * self.block_size;
        let (bf, lb) = (self.block_floats, self.layer_base);
        let kt_off = 2 * self.hidden * self.block_size;
        self.blocks
            .iter()
            .take(ctx.div_ceil(self.block_size))
            .map(move |&b| {
                let base = b * bf + lb + kt_off;
                &storage[base..base + panel]
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv() -> PagedKv {
        PagedKv::new(2, 4, 4, 8)
    }

    #[test]
    fn roundtrip_single_token() {
        let mut kv = kv();
        kv.register(1);
        let k = [1.0, 2.0, 3.0, 4.0];
        let v = [5.0, 6.0, 7.0, 8.0];
        kv.append(1, 0, 0, &k, &v).unwrap();
        kv.append(1, 1, 0, &[9.0; 4], &[10.0; 4]).unwrap();
        assert_eq!(kv.key(1, 0, 0), &k);
        assert_eq!(kv.value(1, 0, 0), &v);
        assert_eq!(kv.key(1, 1, 0), &[9.0; 4]);
        assert_eq!(kv.seq_len(1), 1);
    }

    #[test]
    fn blocks_allocated_on_boundaries() {
        let mut kv = kv(); // Block size 4, 8 blocks.
        kv.register(1);
        for pos in 0..4 {
            kv.append(1, 0, pos, &[pos as f32; 4], &[0.0; 4]).unwrap();
        }
        assert_eq!(kv.free_blocks(), 7);
        kv.append(1, 0, 4, &[4.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(kv.free_blocks(), 6);
        // Values readable across the block boundary.
        assert_eq!(kv.key(1, 0, 3), &[3.0; 4]);
        assert_eq!(kv.key(1, 0, 4), &[4.0; 4]);
    }

    #[test]
    fn release_returns_blocks() {
        let mut kv = kv();
        kv.register(1);
        for pos in 0..8 {
            kv.append(1, 0, pos, &[0.0; 4], &[0.0; 4]).unwrap();
        }
        assert_eq!(kv.free_blocks(), 6);
        kv.release(1).unwrap();
        assert_eq!(kv.free_blocks(), 8);
        assert_eq!(kv.release(1), Err(PagedKvError::UnknownSeq(1)));
    }

    #[test]
    fn exhaustion_reported() {
        let mut kv = PagedKv::new(1, 4, 2, 1);
        kv.register(1);
        kv.append(1, 0, 0, &[0.0; 4], &[0.0; 4]).unwrap();
        kv.append(1, 0, 1, &[0.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(
            kv.append(1, 0, 2, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::OutOfBlocks)
        );
    }

    #[test]
    fn out_of_order_write_rejected() {
        let mut kv = kv();
        kv.register(1);
        assert!(matches!(
            kv.append(1, 0, 3, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::NonContiguousWrite { .. })
        ));
    }

    #[test]
    fn interleaved_sequences_stay_separate() {
        let mut kv = kv();
        kv.register(1);
        kv.register(2);
        kv.append(1, 0, 0, &[1.0; 4], &[1.5; 4]).unwrap();
        kv.append(2, 0, 0, &[2.0; 4], &[2.5; 4]).unwrap();
        kv.append(1, 0, 1, &[3.0; 4], &[3.5; 4]).unwrap();
        assert_eq!(kv.key(1, 0, 0), &[1.0; 4]);
        assert_eq!(kv.key(2, 0, 0), &[2.0; 4]);
        assert_eq!(kv.value(1, 0, 1), &[3.5; 4]);
    }

    #[test]
    fn append_range_writes_only_its_slice() {
        let mut kv = kv();
        kv.register(1);
        // Two "shards" write disjoint halves of the same position.
        kv.append_range(1, 0, 0, 0, &[1.0, 2.0], &[5.0, 6.0])
            .unwrap();
        kv.append_range(1, 0, 0, 2, &[3.0, 4.0], &[7.0, 8.0])
            .unwrap();
        assert_eq!(kv.key(1, 0, 0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(kv.value(1, 0, 0), &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(kv.seq_len(1), 1);
    }

    #[test]
    fn append_range_keeps_position_accounting() {
        let mut kv = kv();
        kv.register(1);
        kv.append_range(1, 0, 0, 1, &[9.0], &[9.5]).unwrap();
        // Layer 0 advanced the length even for a partial-width write.
        assert!(matches!(
            kv.append_range(1, 0, 2, 1, &[0.0], &[0.0]),
            Err(PagedKvError::NonContiguousWrite { .. })
        ));
        kv.append_range(1, 1, 0, 1, &[8.0], &[8.5]).unwrap();
        assert_eq!(kv.key(1, 1, 0)[1], 8.0);
    }

    #[test]
    fn layer_view_matches_point_reads() {
        let mut kv = kv();
        kv.register(3);
        for pos in 0..6 {
            let k = [pos as f32; 4];
            let v = [pos as f32 + 0.5; 4];
            kv.append(3, 0, pos, &k, &v).unwrap();
            kv.append(3, 1, pos, &v, &k).unwrap();
        }
        for layer in 0..2 {
            let view = kv.layer_view(3, layer);
            assert_eq!(view.len(), 6);
            assert!(!view.is_empty());
            for pos in 0..6 {
                assert_eq!(view.key(pos), kv.key(3, layer, pos));
                assert_eq!(view.value(pos), kv.value(3, layer, pos));
            }
            // The block-walking iterators agree with point reads at
            // every prefix length (block_size is 4, so ctx 5..6 spans
            // a block boundary).
            for ctx in 0..=6 {
                let keys: Vec<&[f32]> = view.keys(ctx).collect();
                let values: Vec<&[f32]> = view.values(ctx).collect();
                assert_eq!(keys.len(), ctx);
                for pos in 0..ctx {
                    assert_eq!(keys[pos], view.key(pos));
                    assert_eq!(values[pos], view.value(pos));
                }
            }
        }
    }

    #[test]
    fn key_panels_transpose_point_reads() {
        let mut kv = kv(); // 2 layers, hidden 4, block size 4.
        kv.register(3);
        for pos in 0..6 {
            let k: Vec<f32> = (0..4).map(|d| (pos * 10 + d) as f32).collect();
            kv.append(3, 0, pos, &k, &[0.0; 4]).unwrap();
            kv.append(3, 1, pos, &k, &[1.0; 4]).unwrap();
        }
        for layer in 0..2 {
            let view = kv.layer_view(3, layer);
            for ctx in 1..=6 {
                let panels: Vec<&[f32]> = view.key_panels(ctx).collect();
                assert_eq!(panels.len(), ctx.div_ceil(4));
                for pos in 0..ctx {
                    let (pan, slot) = (panels[pos / 4], pos % 4);
                    for d in 0..4 {
                        assert_eq!(pan[d * 4 + slot], view.key(pos)[d], "pos {pos} dim {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn fork_prefix_shares_blocks_and_reads_back() {
        let mut kv = kv(); // 2 layers, hidden 4, block size 4, 8 blocks.
        kv.register(1);
        for pos in 0..8 {
            for layer in 0..2 {
                kv.append(1, layer, pos, &[pos as f32; 4], &[layer as f32; 4])
                    .unwrap();
            }
        }
        let shared: Vec<usize> = kv.block_table(1).unwrap().to_vec();
        assert_eq!(shared.len(), 2);
        kv.fork_prefix(2, &shared);
        assert_eq!(kv.seq_len(2), 8);
        assert_eq!(kv.free_blocks(), 6); // No new blocks consumed.
        for pos in 0..8 {
            assert_eq!(kv.key(2, 0, pos), kv.key(1, 0, pos));
            assert_eq!(kv.value(2, 1, pos), kv.value(1, 1, pos));
        }
        // The fork appends into a fresh block, not the shared ones.
        kv.append(2, 0, 8, &[99.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(kv.free_blocks(), 5);
        assert_eq!(kv.key(2, 0, 8), &[99.0; 4]);
        assert_eq!(kv.key(1, 0, 7), &[7.0; 4]); // Parent untouched.
    }

    #[test]
    fn release_respects_shared_refcounts() {
        let mut kv = kv();
        kv.register(1);
        for pos in 0..4 {
            kv.append(1, 0, pos, &[1.0; 4], &[1.0; 4]).unwrap();
        }
        let shared: Vec<usize> = kv.block_table(1).unwrap().to_vec();
        kv.fork_prefix(2, &shared);
        kv.release(1).unwrap();
        // Block still held by seq 2.
        assert_eq!(kv.free_blocks(), 7);
        assert_eq!(kv.key(2, 0, 3), &[1.0; 4]);
        kv.release(2).unwrap();
        assert_eq!(kv.free_blocks(), 8);
    }

    #[test]
    fn retain_block_pins_against_release() {
        let mut kv = kv();
        kv.register(1);
        for pos in 0..4 {
            kv.append(1, 0, pos, &[2.0; 4], &[2.0; 4]).unwrap();
        }
        let block = kv.block_table(1).unwrap()[0];
        kv.retain_block(block);
        assert_eq!(kv.block_ref_count(block), 2);
        kv.release(1).unwrap();
        assert_eq!(kv.free_blocks(), 7); // Pinned by the extra reference.
        kv.release_block(block);
        assert_eq!(kv.free_blocks(), 8);
        assert_eq!(kv.block_ref_count(block), 0);
    }

    #[test]
    fn unknown_sequence_append_fails() {
        let mut kv = kv();
        assert_eq!(
            kv.append(9, 0, 0, &[0.0; 4], &[0.0; 4]),
            Err(PagedKvError::UnknownSeq(9))
        );
    }
}
