//! tinyllm — a real (CPU, f32) transformer inference engine.
//!
//! The DistServe paper's execution engine is 8.1K lines of C++/CUDA; the
//! simulation crates model its *timing*. This crate rebuilds its *logic*
//! for real: an OPT-style decoder-only transformer (pre-LayerNorm, learned
//! positions, ReLU FFN) that actually multiplies matrices, with
//!
//! * a **paged KV cache** ([`kv::PagedKv`]) — fixed-size token blocks, a
//!   free list, and per-sequence block tables, exactly the PagedAttention
//!   memory layout;
//! * **continuous batching** ([`scheduler::ContinuousBatcher`]) — the
//!   iteration-level colocated policy (prefill prioritized, decode
//!   otherwise) running against real forward passes;
//! * **tensor parallelism** ([`parallel`]) — head/FFN-column sharded
//!   execution across OS threads with an explicit all-reduce, verified
//!   numerically equal to single-threaded execution;
//! * a **batched compute tier** ([`engine::Model::forward_batch`]) —
//!   prompts and fused decode batches as single GEMMs over pre-packed
//!   weights ([`tensor::PackedMatrix`]) with a reusable [`engine::Scratch`]
//!   arena, bit-identical to the token-at-a-time reference path;
//! * a **persistent worker pool** ([`pool::WorkerPool`]) — spawned once
//!   per model, splitting GEMM column strips and fused-attention rows
//!   across cores with bit-identical results at any thread count
//!   (configured via [`model::ComputeConfig`]);
//! * **int8 weight quantization** ([`model::Precision::Int8`]) —
//!   per-output-channel scales applied in-register inside the GEMM
//!   microkernel, with a documented error bound vs. f32;
//! * **flash-style fused attention** — one pass over the KV blocks with
//!   an online softmax (running max + normalizer), never materializing
//!   the `context × heads` score matrix.
//!
//! Weights are deterministic pseudo-random: serving behavior (the subject
//! of the paper) depends on architecture shape, not weight values.
//!
//! # Examples
//!
//! ```
//! use tinyllm::{Model, TinyConfig};
//!
//! let config = TinyConfig::tiny();
//! let model = Model::random(&config, 42);
//! let prompt = vec![1, 5, 9];
//! let out = model.generate(&prompt, 4);
//! assert_eq!(out.len(), 4);
//! ```

pub mod engine;
pub mod kv;
pub mod model;
pub mod parallel;
pub mod pool;
pub mod sampling;
pub mod scheduler;
pub mod tensor;

pub use engine::{BatchRow, Model, Scratch, Shard};
pub use kv::PagedKv;
pub use model::{ComputeConfig, Precision, TinyConfig};
pub use pool::{PoolUtilization, WorkerPool, WorkerUtil};
pub use sampling::{Sampler, Sampling};
pub use scheduler::{ContinuousBatcher, GenRequest, PrefixReuse};
