//! The persistent worker pool behind the parallel compute path.
//!
//! One pool is spawned per [`crate::engine::Model`] (not per call) and
//! shared by clones of that model. It serves three job kinds:
//!
//! - **GEMM strips** — the N dimension of a packed GEMM is split into
//!   [`NR`]-aligned column strips, one per lane. Workers compute their
//!   strips into recycled per-worker buffers; the calling thread computes
//!   strip 0 directly into the destination (using the stride-aware
//!   kernel) and then gathers the worker strips. Because every output
//!   element's multiply-add chain is independent of the strip split
//!   (`tensor.rs` invariant), threaded output is bit-identical to serial.
//! - **Attention rows** — batched fused attention farms contiguous row
//!   ranges to workers. Inputs are staged into an [`AttnStage`] (query
//!   slices, per-row block tables, cache geometry) plus an `Arc` read
//!   handle on the KV storage, so jobs are `'static` without `unsafe`
//!   (the workspace denies it).
//! - **Tasks** — arbitrary `FnOnce` jobs, used by `tinyllm::parallel` to
//!   run tensor-parallel ranks on persistent workers instead of
//!   spawning threads per call. Completion is tracked by a latch;
//!   panics inside a task are caught on the worker and re-raised on the
//!   caller.
//!
//! Workers never nest: a thread-local flag marks pool threads, and any
//! GEMM or attention dispatch issued from inside a worker (e.g. by a
//! tensor-parallel rank task) runs inline and serial. That keeps the
//! design deadlock-free with a single queue per worker.
//!
//! The hot path stays zero-alloc at steady state: staged activation and
//! attention buffers live in `Arc`s that are exclusively reclaimed
//! between dispatches (workers drop their handles before signaling
//! completion), and each worker's output strip buffer is recycled
//! through the channel round-trip.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use distserve_prof as prof;

use crate::engine::{attn_rows_strip, AttnScratch, AttnStage};
use crate::tensor::{Kernel, NR};

thread_local! {
    /// Set for the lifetime of a pool worker thread. Dispatch helpers
    /// consult it to run nested parallel work inline instead of queueing
    /// it back onto the pool (which could deadlock a single queue).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Minimum multiply-adds per GEMM before a parallel dispatch pays for
/// its staging copy and wakeup latency; below it the call runs serial.
const GEMM_PAR_MIN: usize = 32 * 1024;

/// Minimum score+value multiply-adds before attention rows are farmed
/// out.
const ATTN_PAR_MIN: usize = 16 * 1024;

/// One unit of work sent to a worker.
enum Job {
    /// Compute `strip = act × kern[k_off.., cols col_lo..col_lo+width]`.
    Gemm {
        kern: Kernel,
        act: Arc<Vec<f32>>,
        m: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        strip: Vec<f32>,
    },
    /// Run fused attention for staged rows `row_lo..row_hi`.
    Attn {
        stage: Arc<AttnStage>,
        storage: Arc<Vec<f32>>,
        row_lo: usize,
        row_hi: usize,
        strip: Vec<f32>,
    },
    /// Run an arbitrary closure (tensor-parallel rank bodies).
    Task {
        f: Box<dyn FnOnce() + Send + 'static>,
        latch: Arc<Latch>,
    },
}

/// Counts outstanding tasks and records whether any panicked.
pub(crate) struct Latch {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new((count, false)),
            cv: Condvar::new(),
        }
    }

    fn done(&self, panicked: bool) {
        let mut s = self.state.lock().expect("latch lock");
        s.0 -= 1;
        s.1 |= panicked;
        if s.0 == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until every task finished; returns whether any panicked.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().expect("latch lock");
        while s.0 > 0 {
            s = self.cv.wait(s).expect("latch wait");
        }
        s.1
    }
}

/// Cumulative per-worker time accounting, written by the worker thread
/// with relaxed stores and read by [`WorkerPool::utilization`]. Busy is
/// time executing a job; idle is time blocked on the queue.
#[derive(Debug, Default)]
struct WorkerStats {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    jobs: AtomicU64,
}

/// One worker's utilization snapshot (see [`PoolUtilization`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerUtil {
    /// Seconds spent executing jobs since the worker spawned.
    pub busy_s: f64,
    /// Seconds spent blocked waiting for work.
    pub idle_s: f64,
    /// Jobs completed.
    pub jobs: u64,
}

impl WorkerUtil {
    /// Busy share of the worker's observed lifetime (0 before any job).
    #[must_use]
    pub fn busy_frac(&self) -> f64 {
        let span = self.busy_s + self.idle_s;
        if span <= 0.0 {
            0.0
        } else {
            self.busy_s / span
        }
    }
}

/// Point-in-time pool accounting: per-worker busy/idle plus the
/// dispatcher-side time spent blocked gathering worker strips.
#[derive(Debug, Clone, Default)]
pub struct PoolUtilization {
    /// Compute lanes the pool was built with (callers + workers).
    pub lanes: usize,
    /// One entry per spawned worker, in lane order.
    pub workers: Vec<WorkerUtil>,
    /// Seconds dispatching threads spent blocked in strip gathers.
    pub dispatch_wait_s: f64,
    /// Parallel dispatches issued (GEMM + attention).
    pub dispatches: u64,
}

/// Main-thread handle to one worker.
struct Worker {
    tx: Sender<Job>,
    rx: Receiver<Vec<f32>>,
    /// Recycled strip buffer from the worker's last reply.
    spare: Option<Vec<f32>>,
    stats: Arc<WorkerStats>,
    handle: Option<JoinHandle<()>>,
}

/// State behind the pool's mutex: the workers plus the staged-input
/// buffers reused across dispatches.
struct PoolInner {
    workers: Vec<Worker>,
    act: Arc<Vec<f32>>,
    stage: Arc<AttnStage>,
    main_attn: AttnScratch,
}

impl PoolInner {
    /// Grows the worker vec to at least `n` live workers.
    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
            let (out_tx, out_rx) = std::sync::mpsc::channel::<Vec<f32>>();
            let stats = Arc::new(WorkerStats::default());
            let worker_stats = Arc::clone(&stats);
            let handle = std::thread::Builder::new()
                .name(format!("tinyllm-pool-{}", self.workers.len()))
                .spawn(move || worker_loop(&job_rx, &out_tx, &worker_stats))
                .expect("spawn pool worker");
            self.workers.push(Worker {
                tx: job_tx,
                rx: out_rx,
                spare: None,
                stats,
                handle: Some(handle),
            });
        }
    }

    /// Exclusive access to a staged `Arc` buffer. Workers drop their
    /// handles before signaling completion, so the count is normally 1;
    /// a surviving stale handle just costs a fresh allocation.
    fn exclusive_act(&mut self) -> &mut Vec<f32> {
        if Arc::get_mut(&mut self.act).is_none() {
            self.act = Arc::new(Vec::new());
        }
        Arc::get_mut(&mut self.act).expect("fresh arc is unshared")
    }

    /// Exclusive access to the staged attention inputs (same contract as
    /// [`Self::exclusive_act`]).
    fn exclusive_stage(&mut self) -> &mut AttnStage {
        if Arc::get_mut(&mut self.stage).is_none() {
            self.stage = Arc::new(AttnStage::default());
        }
        Arc::get_mut(&mut self.stage).expect("fresh arc is unshared")
    }
}

fn worker_loop(jobs: &Receiver<Job>, out: &Sender<Vec<f32>>, stats: &WorkerStats) {
    IN_WORKER.with(|w| w.set(true));
    let mut attn_scr = AttnScratch::default();
    loop {
        let waited = Instant::now();
        let Ok(job) = jobs.recv() else { break };
        stats
            .idle_ns
            .fetch_add(elapsed_ns(waited), Ordering::Relaxed);
        let working = Instant::now();
        let delivered = match job {
            Job::Gemm {
                kern,
                act,
                m,
                depth,
                k_off,
                col_lo,
                width,
                mut strip,
            } => {
                let _prof = prof::scope("pool_gemm_job");
                strip.resize(m * width, 0.0);
                kern.gemm_strip(
                    &act[..m * depth],
                    m,
                    depth,
                    k_off,
                    col_lo,
                    width,
                    width,
                    &mut strip,
                );
                // Release the staged-input handles *before* replying so
                // the dispatcher can reclaim the buffers exclusively on
                // its next call.
                drop(act);
                drop(kern);
                out.send(strip).is_ok()
            }
            Job::Attn {
                stage,
                storage,
                row_lo,
                row_hi,
                mut strip,
            } => {
                let _prof = prof::scope("pool_attn_job");
                let width = stage.heads * stage.d;
                strip.resize((row_hi - row_lo) * width, 0.0);
                attn_rows_strip(&stage, &storage, row_lo, row_hi, &mut attn_scr, &mut strip);
                drop(stage);
                drop(storage);
                out.send(strip).is_ok()
            }
            Job::Task { f, latch } => {
                let _prof = prof::scope("pool_task");
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err();
                latch.done(panicked);
                true
            }
        };
        stats
            .busy_ns
            .fetch_add(elapsed_ns(working), Ordering::Relaxed);
        stats.jobs.fetch_add(1, Ordering::Relaxed);
        if !delivered {
            break;
        }
    }
}

/// Elapsed nanoseconds since `t`, saturating.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A persistent thread pool owned by a model (see module docs).
#[derive(Debug)]
pub struct WorkerPool {
    /// Lanes used for data-parallel strip work, including the caller's
    /// thread: `lanes` of compute means `lanes - 1` workers.
    lanes: usize,
    /// Dispatcher time blocked gathering worker strips (all callers).
    dispatch_wait_ns: AtomicU64,
    /// Parallel dispatches issued.
    dispatches: AtomicU64,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for PoolInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolInner")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool that computes with `lanes` threads total (the
    /// caller's plus `lanes - 1` persistent workers, spawned lazily on
    /// first parallel dispatch).
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        WorkerPool {
            lanes: lanes.max(1),
            dispatch_wait_ns: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            inner: Mutex::new(PoolInner {
                workers: Vec::new(),
                act: Arc::new(Vec::new()),
                stage: Arc::new(AttnStage::default()),
                main_attn: AttnScratch::default(),
            }),
        }
    }

    /// Compute lanes (threads, including the caller's).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Snapshot of per-worker busy/idle time and dispatcher gather
    /// waits. Cheap enough to publish every scheduler step: a few
    /// relaxed atomic loads per worker under the pool lock.
    #[must_use]
    pub fn utilization(&self) -> PoolUtilization {
        let inner = self.inner.lock().expect("pool lock");
        PoolUtilization {
            lanes: self.lanes,
            workers: inner
                .workers
                .iter()
                .map(|w| WorkerUtil {
                    busy_s: w.stats.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                    idle_s: w.stats.idle_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                    jobs: w.stats.jobs.load(Ordering::Relaxed),
                })
                .collect(),
            dispatch_wait_s: self.dispatch_wait_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            dispatches: self.dispatches.load(Ordering::Relaxed),
        }
    }

    /// How many lanes a `(m × depth) × (depth × width)` GEMM should use.
    fn gemm_lanes(&self, m: usize, depth: usize, width: usize) -> usize {
        if self.lanes <= 1 || in_worker() {
            return 1;
        }
        let work = m * depth * width;
        self.lanes.min(width / NR).min(work / GEMM_PAR_MIN).max(1)
    }

    /// `out[m × width] = a[m × depth] × kern[k_off.., col_lo..+width]`,
    /// split across lanes when the work justifies it; serial (and
    /// bit-identical) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree with the shapes, or if a worker
    /// died mid-job.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        &self,
        kern: &Kernel,
        a: &[f32],
        m: usize,
        depth: usize,
        k_off: usize,
        col_lo: usize,
        width: usize,
        out: &mut [f32],
    ) {
        debug_assert_eq!(a.len(), m * depth, "activation shape");
        debug_assert_eq!(out.len(), m * width, "output shape");
        let lanes = self.gemm_lanes(m, depth, width);
        if lanes <= 1 {
            kern.gemm_strip(a, m, depth, k_off, col_lo, width, width, out);
            return;
        }
        let mut guard = self.inner.lock().expect("pool lock");
        let inner = &mut *guard;
        // NR-aligned strip boundaries; every strip is non-empty because
        // `lanes <= width / NR`.
        let bound = |i: usize| {
            if i == lanes {
                width
            } else {
                width * i / lanes / NR * NR
            }
        };
        {
            let _prof = prof::scope("pool_dispatch");
            inner.ensure_workers(lanes - 1);
            let staged = inner.exclusive_act();
            staged.clear();
            staged.extend_from_slice(a);
            for lane in 1..lanes {
                let (lo, hi) = (bound(lane), bound(lane + 1));
                let worker = &mut inner.workers[lane - 1];
                let strip = worker.spare.take().unwrap_or_default();
                worker
                    .tx
                    .send(Job::Gemm {
                        kern: kern.clone(),
                        act: Arc::clone(&inner.act),
                        m,
                        depth,
                        k_off,
                        col_lo: col_lo + lo,
                        width: hi - lo,
                        strip,
                    })
                    .expect("pool worker alive");
            }
        }
        // The calling thread is lane 0: strip 0 goes straight into `out`
        // via the stride-aware kernel while the workers run.
        kern.gemm_strip(a, m, depth, k_off, col_lo, bound(1), width, out);
        let _prof = prof::scope("pool_gather");
        let mut wait_ns = 0u64;
        for lane in 1..lanes {
            let (lo, hi) = (bound(lane), bound(lane + 1));
            let sw = hi - lo;
            let worker = &mut inner.workers[lane - 1];
            let waited = Instant::now();
            let strip = worker.rx.recv().expect("pool worker completed");
            wait_ns += elapsed_ns(waited);
            for r in 0..m {
                out[r * width + lo..r * width + hi].copy_from_slice(&strip[r * sw..(r + 1) * sw]);
            }
            worker.spare = Some(strip);
        }
        self.dispatch_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// How many lanes a batched attention pass of `m` rows and roughly
    /// `work` multiply-adds should use.
    pub(crate) fn attn_lanes(&self, m: usize, work: usize) -> usize {
        if self.lanes <= 1 || in_worker() {
            return 1;
        }
        self.lanes.min(m).min(work / ATTN_PAR_MIN).max(1)
    }

    /// Farms staged attention rows across `lanes` threads. `fill`
    /// populates the reused [`AttnStage`]; `out` is the dense
    /// `(m × width)` destination. Row ranges are contiguous, so worker
    /// strips gather with single copies. Bit-identical to the serial
    /// per-row loop: each row's computation is untouched by the split.
    ///
    /// # Panics
    ///
    /// Panics if a worker died mid-job.
    pub(crate) fn attn_rows(
        &self,
        lanes: usize,
        storage: &Arc<Vec<f32>>,
        fill: impl FnOnce(&mut AttnStage),
        m: usize,
        width: usize,
        out: &mut [f32],
    ) {
        debug_assert!(lanes >= 2);
        debug_assert_eq!(out.len(), m * width, "output shape");
        let mut guard = self.inner.lock().expect("pool lock");
        let inner = &mut *guard;
        let bound = |i: usize| m * i / lanes;
        {
            let _prof = prof::scope("pool_dispatch");
            inner.ensure_workers(lanes - 1);
            fill(inner.exclusive_stage());
            for lane in 1..lanes {
                let (lo, hi) = (bound(lane), bound(lane + 1));
                let worker = &mut inner.workers[lane - 1];
                let strip = worker.spare.take().unwrap_or_default();
                worker
                    .tx
                    .send(Job::Attn {
                        stage: Arc::clone(&inner.stage),
                        storage: Arc::clone(storage),
                        row_lo: lo,
                        row_hi: hi,
                        strip,
                    })
                    .expect("pool worker alive");
            }
        }
        attn_rows_strip(
            &inner.stage,
            storage,
            0,
            bound(1),
            &mut inner.main_attn,
            &mut out[..bound(1) * width],
        );
        let _prof = prof::scope("pool_gather");
        let mut wait_ns = 0u64;
        for lane in 1..lanes {
            let (lo, hi) = (bound(lane), bound(lane + 1));
            let worker = &mut inner.workers[lane - 1];
            let waited = Instant::now();
            let strip = worker.rx.recv().expect("pool worker completed");
            wait_ns += elapsed_ns(waited);
            out[lo * width..hi * width].copy_from_slice(&strip);
            worker.spare = Some(strip);
        }
        self.dispatch_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs every closure on its own persistent worker (growing the pool
    /// past `lanes` if needed — task concurrency is bounded by the
    /// caller, not the lane count) and blocks until all complete.
    ///
    /// Must not be called from inside a pool worker: tasks that
    /// rendezvous with each other (tensor-parallel barriers) would
    /// deadlock if serialized.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked, after all tasks finished.
    pub(crate) fn run_tasks(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
        assert!(
            !in_worker(),
            "run_tasks must not be nested inside a pool worker"
        );
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut guard = self.inner.lock().expect("pool lock");
            let inner = &mut *guard;
            inner.ensure_workers(tasks.len());
            for (i, f) in tasks.into_iter().enumerate() {
                inner.workers[i]
                    .tx
                    .send(Job::Task {
                        f,
                        latch: Arc::clone(&latch),
                    })
                    .expect("pool worker alive");
            }
        }
        // Wait outside the lock so long-running tasks don't block
        // concurrent GEMM dispatch from other model clones.
        let panicked = latch.wait();
        assert!(!panicked, "pool task panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().expect("pool lock");
        for w in &mut inner.workers {
            // Dropping the sender closes the worker's queue; it exits
            // after draining.
            let (closed_tx, _) = std::sync::mpsc::channel();
            w.tx = closed_tx;
            drop(std::mem::replace(&mut w.rx, std::sync::mpsc::channel().1));
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{Matrix, PackedMatrix};

    fn test_weight(k: usize, n: usize) -> Matrix {
        Matrix::from_vec(
            k,
            n,
            (0..k * n)
                .map(|i| ((i * 37 + 11) % 97) as f32 * 0.03 - 1.4)
                .collect(),
        )
    }

    fn test_act(m: usize, k: usize) -> Vec<f32> {
        (0..m * k)
            .map(|i| ((i * 53 + 5) % 89) as f32 * 0.021 - 0.9)
            .collect()
    }

    #[test]
    fn threaded_gemm_bit_matches_serial() {
        // Big enough to clear the parallel threshold with several lanes.
        let (m, k, n) = (16, 96, 512);
        let a = test_act(m, k);
        let w = Kernel::F32(PackedMatrix::pack(&test_weight(k, n)));
        let mut serial = vec![0.0; m * n];
        WorkerPool::new(1).gemm(&w, &a, m, k, 0, 0, n, &mut serial);
        for lanes in [2, 3, 5, 8] {
            let pool = WorkerPool::new(lanes);
            let mut out = vec![7.0f32; m * n];
            pool.gemm(&w, &a, m, k, 0, 0, n, &mut out);
            assert_eq!(out, serial, "lanes {lanes}");
        }
    }

    #[test]
    fn small_gemm_stays_serial_and_correct() {
        let (m, k, n) = (2, 8, 24);
        let a = test_act(m, k);
        let mat = test_weight(k, n);
        let w = Kernel::F32(PackedMatrix::pack(&mat));
        let pool = WorkerPool::new(8);
        assert_eq!(pool.gemm_lanes(m, k, n), 1);
        let mut out = vec![0.0; m * n];
        pool.gemm(&w, &a, m, k, 0, 0, n, &mut out);
        let reference = Matrix::from_vec(m, k, a).matmul(&mat);
        assert_eq!(out, reference.data);
    }

    #[test]
    fn tasks_run_concurrently_and_rendezvous() {
        // Tasks must run on distinct threads: a barrier across them can
        // only clear if all are live at once.
        let pool = WorkerPool::new(1); // Task lanes grow past `lanes`.
        let barrier = Arc::new(std::sync::Barrier::new(3));
        let hits = Arc::new(Mutex::new(0usize));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..3)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let h = Arc::clone(&hits);
                Box::new(move || {
                    b.wait();
                    *h.lock().expect("hits") += 1;
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.run_tasks(tasks);
        assert_eq!(*hits.lock().expect("hits"), 3);
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn task_panic_propagates() {
        let pool = WorkerPool::new(1);
        pool.run_tasks(vec![Box::new(|| panic!("boom"))]);
    }

    #[test]
    fn utilization_accounts_busy_idle_and_dispatch_wait() {
        let (m, k, n) = (16, 96, 512);
        let a = test_act(m, k);
        let w = Kernel::F32(PackedMatrix::pack(&test_weight(k, n)));
        let pool = WorkerPool::new(4);
        let empty = pool.utilization();
        assert_eq!(empty.lanes, 4);
        assert!(empty.workers.is_empty(), "workers spawn lazily");
        let mut out = vec![0.0; m * n];
        for _ in 0..8 {
            pool.gemm(&w, &a, m, k, 0, 0, n, &mut out);
        }
        // Let workers settle back into their recv so idle registers.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let u = pool.utilization();
        assert_eq!(u.workers.len(), 3, "lanes - 1 workers spawned");
        assert_eq!(u.dispatches, 8);
        for (i, wk) in u.workers.iter().enumerate() {
            assert_eq!(wk.jobs, 8, "worker {i} ran every dispatch");
            assert!(wk.busy_s > 0.0, "worker {i} accumulated busy time");
            assert!(wk.idle_s > 0.0, "worker {i} accumulated idle time");
            assert!((0.0..=1.0).contains(&wk.busy_frac()));
        }
        assert!(u.dispatch_wait_s >= 0.0);
    }
}
