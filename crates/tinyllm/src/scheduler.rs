//! Continuous batching over real inference.
//!
//! [`ContinuousBatcher`] is the colocated (vLLM-style) iteration-level
//! scheduler running against actual forward passes: each step either
//! prefills waiting requests (prioritized, subject to KV-block admission)
//! or decodes one token for every running request. It is the executable
//! twin of `distserve-engine`'s colocated policy — same decisions, real
//! tensors — and what a DistServe prefill/decoding worker would run
//! internally per instance.
//!
//! Both step kinds run the batched engine tier: a prefill step stacks
//! every admitted prompt into one activation matrix (logits computed only
//! at each prompt's last position), and a decode step fuses all running
//! sequences into a single `(batch × hidden)` pass — one GEMM per
//! projection instead of one per request. Outputs are bit-identical to
//! the token-at-a-time reference path (asserted by the tests below).

use std::collections::VecDeque;
use std::sync::Arc;

use distserve_telemetry::{
    metrics, Event, LifecycleEvent, NoopSink, SpanGuard, TelemetrySink, TrackId, WallClock,
};

use crate::engine::{BatchRow, Model, Scratch};
use crate::kv::{PagedKv, SeqId};
use crate::tensor::argmax;

/// Hook for a shared-prompt KV reuse layer (`distserve-prefix`'s radix
/// cache implements this; `tinyllm` stays dependency-free).
///
/// The contract that keeps reuse bit-exact: [`match_blocks`] returns
/// *full* KV blocks whose contents are exactly the KV a cold prefill of
/// that token prefix would write (KV rows are a pure function of the
/// prefix tokens — each batched row computes independently from the
/// cache contents below its position). The batcher forks a sequence over
/// the matched blocks and prefills only the suffix.
///
/// [`match_blocks`]: PrefixReuse::match_blocks
/// [`offer`]: PrefixReuse::offer
pub trait PrefixReuse {
    /// The longest cached prefix of `tokens`, as whole-block physical
    /// block ids (block `i` covers positions `i*block_size ..
    /// (i+1)*block_size`). The blocks must stay live until the caller
    /// forks over them (callers fork before any other cache call).
    fn match_blocks(&mut self, tokens: &[u32]) -> Vec<usize>;

    /// Offers the full blocks backing a just-prefilled prompt to the
    /// cache. `tokens` is the whole-block prefix of the prompt and
    /// `blocks` its physical blocks (`tokens.len() == blocks.len() *
    /// block_size`). The cache takes its own references on any blocks it
    /// adopts (and may evict others).
    fn offer(&mut self, tokens: &[u32], blocks: &[usize], kv: &mut PagedKv);
}

/// A generation request.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Caller-chosen identifier (also the KV sequence id).
    pub id: SeqId,
    /// Prompt tokens.
    pub prompt: Vec<u32>,
    /// Tokens to generate.
    pub max_new: usize,
}

/// A finished generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedGen {
    /// Request identifier.
    pub id: SeqId,
    /// Generated tokens (`max_new` long).
    pub tokens: Vec<u32>,
    /// Scheduler step index at which the first token was emitted.
    pub first_token_step: u64,
    /// Scheduler step index at which the request completed.
    pub completion_step: u64,
}

#[derive(Debug)]
struct Running {
    id: SeqId,
    pos: usize,
    generated: Vec<u32>,
    max_new: usize,
    first_token_step: u64,
}

/// What one scheduler step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Prefilled waiting requests.
    Prefill {
        /// Requests prefetched into the running set.
        requests: usize,
        /// Prompt tokens processed.
        tokens: usize,
    },
    /// Decoded one token per running request.
    Decode {
        /// Running requests advanced.
        requests: usize,
    },
    /// Nothing to do.
    Idle,
}

/// Iteration-level scheduler with paged-KV admission control.
pub struct ContinuousBatcher {
    model: Model,
    kv: PagedKv,
    waiting: VecDeque<GenRequest>,
    running: Vec<Running>,
    finished: Vec<FinishedGen>,
    /// Maximum prompt tokens per prefill step.
    token_budget: usize,
    /// Maximum concurrent running requests.
    max_running: usize,
    /// Blocks promised to admitted-but-still-growing requests. Blocks are
    /// physically taken lazily as tokens append, so admission must count
    /// promises, not just the current free list.
    reserved_blocks: usize,
    steps: u64,
    /// Reusable activation buffers for the batched forward passes.
    scratch: Scratch,
    /// Telemetry destination (no-op unless [`Self::with_sink`] is used).
    sink: Arc<dyn TelemetrySink>,
    /// Wall-clock origin for telemetry timestamps: this engine runs real
    /// forward passes, so slices carry measured durations.
    clock: WallClock,
    /// Timeline track the batcher's slices and metrics are labelled with.
    track: TrackId,
}

impl ContinuousBatcher {
    /// Creates a batcher over `model` with a KV pool of `kv_tokens` total
    /// positions.
    #[must_use]
    pub fn new(model: Model, kv_tokens: usize) -> Self {
        let kv = model.make_kv(kv_tokens, 16);
        ContinuousBatcher {
            model,
            kv,
            waiting: VecDeque::new(),
            running: Vec::new(),
            finished: Vec::new(),
            token_budget: 512,
            max_running: 64,
            reserved_blocks: 0,
            steps: 0,
            scratch: Scratch::new(),
            sink: Arc::new(NoopSink),
            clock: WallClock::new(),
            track: 0,
        }
    }

    /// Sets the per-step prefill token budget.
    #[must_use]
    pub fn with_token_budget(mut self, budget: usize) -> Self {
        self.token_budget = budget.max(1);
        self
    }

    /// Routes telemetry into `sink`, labelling this batcher's slices and
    /// metrics with `track`. Timestamps are wall-clock seconds from the
    /// batcher's construction.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>, track: TrackId) -> Self {
        if sink.enabled() {
            sink.declare_track(track, &format!("tinyllm[{track}]"));
        }
        self.sink = sink;
        self.track = track;
        // The pool width is fixed at model construction; record it once
        // so dashboards can normalize throughput by compute lanes.
        self.sink.gauge_set(
            metrics::COMPUTE_THREADS,
            self.track,
            self.model.threads() as f64,
        );
        self
    }

    fn emit(&self, id: SeqId, t: f64, kind: LifecycleEvent) {
        self.sink.event(Event {
            request: id,
            tenant: 0,
            time_s: t,
            kind,
        });
    }

    fn emit_pool_gauges(&self) {
        let used = self.kv.total_blocks() - self.kv.free_blocks();
        self.sink.gauge_set(
            metrics::KV_UTILIZATION,
            self.track,
            used as f64 / self.kv.total_blocks().max(1) as f64,
        );
        self.sink
            .gauge_set(metrics::DECODE_LOAD, self.track, self.running.len() as f64);
        self.sink.gauge_set(
            metrics::PREFILL_QUEUE_DEPTH,
            self.track,
            self.waiting.len() as f64,
        );
        self.sink.gauge_set(
            metrics::PREFILL_QUEUE_TOKENS,
            self.track,
            self.waiting.iter().map(|r| r.prompt.len()).sum::<usize>() as f64,
        );
        // Worker-pool accounting, published next to `compute_threads`.
        // Guarded so the no-op sink never pays the pool-mutex snapshot.
        if self.sink.enabled() {
            let u = self.model.pool_utilization();
            let busy: f64 = u.workers.iter().map(|w| w.busy_s).sum();
            let idle: f64 = u.workers.iter().map(|w| w.idle_s).sum();
            self.sink.gauge_set(metrics::POOL_BUSY_S, self.track, busy);
            self.sink.gauge_set(metrics::POOL_IDLE_S, self.track, idle);
            self.sink
                .gauge_set(metrics::POOL_DISPATCH_WAIT_S, self.track, u.dispatch_wait_s);
        }
    }

    /// Submits a request.
    pub fn submit(&mut self, req: GenRequest) {
        let t = self.clock.now_s();
        self.emit(req.id, t, LifecycleEvent::Arrived);
        self.emit(req.id, t, LifecycleEvent::PrefillQueued);
        self.waiting.push_back(req);
        self.emit_pool_gauges();
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Requests currently decoding.
    #[must_use]
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Scheduler steps taken.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one scheduler iteration (prefill prioritized).
    pub fn step(&mut self) -> StepKind {
        self.step_with(None)
    }

    /// One scheduler iteration with an optional prefix cache: admitted
    /// prompts are matched against the cache, forked over shared blocks,
    /// and only the unmatched suffix is prefilled; full prompt blocks are
    /// offered back to the cache after the pass. The caller keeps
    /// ownership of the cache (and its hit statistics).
    pub fn step_with(&mut self, mut prefix: Option<&mut dyn PrefixReuse>) -> StepKind {
        let _prof = distserve_prof::scope("batcher_step");
        self.steps += 1;
        // Admission: the whole lifetime footprint must fit the pool, the
        // running set must have room, and the step's token budget must
        // not be exceeded.
        let mut admitted = Vec::new();
        let mut budget = self.token_budget;
        while let Some(head) = self.waiting.front() {
            let need_tokens = head.prompt.len() + head.max_new;
            let need_blocks = Self::lifetime_blocks(need_tokens);
            if self.running.len() + admitted.len() >= self.max_running
                || head.prompt.len() > budget
                || self.kv.total_blocks() < need_blocks + self.reserved_blocks
            {
                break;
            }
            self.reserved_blocks += need_blocks;
            budget -= head.prompt.len();
            admitted.push(self.waiting.pop_front().expect("peeked"));
            if budget == 0 {
                break;
            }
        }
        if !admitted.is_empty() {
            // Batched prefill: all admitted prompts stacked into one
            // activation matrix, logits only at each prompt's last row.
            // With a prefix cache attached, each prompt forks over its
            // matched whole blocks and stacks only suffix rows — capped
            // so the last prompt token is always computed (its logits
            // seed decoding).
            let bs = self.kv.block_size();
            let mut rows = Vec::new();
            let mut last_rows = Vec::with_capacity(admitted.len());
            let mut cached_tokens = 0usize;
            for req in &admitted {
                let matched = match prefix.as_deref_mut() {
                    Some(cache) => {
                        let _prof = distserve_prof::scope("prefix_match");
                        let blocks = cache.match_blocks(&req.prompt);
                        let usable = blocks.len().min((req.prompt.len() - 1) / bs);
                        if usable > 0 {
                            self.kv.fork_prefix(req.id, &blocks[..usable]);
                            usable * bs
                        } else {
                            self.kv.register(req.id);
                            0
                        }
                    }
                    None => {
                        self.kv.register(req.id);
                        0
                    }
                };
                cached_tokens += matched;
                for (pos, &token) in req.prompt.iter().enumerate().skip(matched) {
                    rows.push(BatchRow {
                        seq: req.id,
                        pos,
                        token,
                    });
                }
                last_rows.push(rows.len() - 1);
            }
            let tokens = rows.len();
            let n = admitted.len();
            let t_start = self.clock.now_s();
            for req in &admitted {
                self.emit(req.id, t_start, LifecycleEvent::PrefillStart);
            }
            {
                // Flamegraphs attribute cache savings: a step that skipped
                // any matched tokens prefills under `suffix_prefill`.
                let scope_name = if cached_tokens > 0 {
                    "suffix_prefill"
                } else {
                    "prefill"
                };
                let _prof = distserve_prof::scope(scope_name);
                let _span = SpanGuard::enter(
                    self.sink.as_ref(),
                    &self.clock,
                    self.track,
                    scope_name,
                    u32::try_from(n).unwrap_or(u32::MAX),
                    u32::try_from(tokens).unwrap_or(u32::MAX),
                );
                self.model
                    .forward_batch(&rows, &mut self.kv, &mut self.scratch);
                self.model.logits_batch(&last_rows, &mut self.scratch);
            }
            if let Some(cache) = prefix {
                // Offer each prompt's whole-block prefix back to the
                // cache; partially filled tail blocks stay private (the
                // sequence keeps appending into them during decode).
                for req in &admitted {
                    let full = req.prompt.len() / bs;
                    if full == 0 {
                        continue;
                    }
                    let blocks: Vec<usize> =
                        self.kv.block_table(req.id).expect("registered")[..full].to_vec();
                    cache.offer(&req.prompt[..full * bs], &blocks, &mut self.kv);
                }
            }
            let t_end = self.clock.now_s();
            self.sink
                .counter_add(metrics::PREFILL_BATCHES, self.track, 1);
            self.sink
                .counter_add(metrics::PREFILL_TOKENS, self.track, tokens as u64);
            self.sink.observe(metrics::BATCH_SIZE, self.track, n as f64);
            for (i, req) in admitted.into_iter().enumerate() {
                let first = argmax(self.scratch.logits_row(i)) as u32;
                self.emit(req.id, t_end, LifecycleEvent::PrefillEnd);
                let mut running = Running {
                    id: req.id,
                    pos: req.prompt.len(),
                    generated: vec![first],
                    max_new: req.max_new,
                    first_token_step: self.steps,
                };
                if running.generated.len() >= running.max_new {
                    self.retire(&mut running);
                } else {
                    self.emit(req.id, t_end, LifecycleEvent::DecodeQueued);
                    self.running.push(running);
                }
            }
            self.emit_pool_gauges();
            return StepKind::Prefill {
                requests: n,
                tokens,
            };
        }
        if self.running.is_empty() {
            return StepKind::Idle;
        }
        // Fused decode: one stacked forward for every running request —
        // per projection a single (batch × hidden) GEMM.
        let rows: Vec<BatchRow> = self
            .running
            .iter()
            .map(|r| BatchRow {
                seq: r.id,
                pos: r.pos,
                token: *r.generated.last().expect("has first token"),
            })
            .collect();
        {
            let _prof = distserve_prof::scope("decode");
            let _span = SpanGuard::enter(
                self.sink.as_ref(),
                &self.clock,
                self.track,
                "decode",
                u32::try_from(rows.len()).unwrap_or(u32::MAX),
                u32::try_from(rows.len()).unwrap_or(u32::MAX),
            );
            self.model
                .forward_batch(&rows, &mut self.kv, &mut self.scratch);
            let picks: Vec<usize> = (0..rows.len()).collect();
            self.model.logits_batch(&picks, &mut self.scratch);
        }
        let t_end = self.clock.now_s();
        let mut still_running = Vec::with_capacity(self.running.len());
        let mut advanced = 0;
        for (i, mut r) in std::mem::take(&mut self.running).into_iter().enumerate() {
            r.pos += 1;
            let next = argmax(self.scratch.logits_row(i)) as u32;
            r.generated.push(next);
            advanced += 1;
            self.emit(
                r.id,
                t_end,
                LifecycleEvent::DecodeStep {
                    generated: u32::try_from(r.generated.len()).unwrap_or(u32::MAX),
                },
            );
            if r.generated.len() >= r.max_new {
                self.retire(&mut r);
            } else {
                still_running.push(r);
            }
        }
        self.running = still_running;
        self.sink
            .counter_add(metrics::DECODE_BATCHES, self.track, 1);
        self.sink
            .counter_add(metrics::DECODE_TOKENS, self.track, advanced as u64);
        self.sink
            .observe(metrics::BATCH_SIZE, self.track, advanced as f64);
        self.emit_pool_gauges();
        StepKind::Decode { requests: advanced }
    }

    fn lifetime_blocks(tokens: usize) -> usize {
        tokens.div_ceil(16)
    }

    fn retire(&mut self, r: &mut Running) {
        // At retirement the lifetime footprint is `prompt + max_new`
        // tokens, which equals `pos + 1` (the final token was emitted but
        // never fed back).
        self.reserved_blocks -= Self::lifetime_blocks(r.pos + 1);
        self.kv.release(r.id).expect("running request has KV");
        self.emit(r.id, self.clock.now_s(), LifecycleEvent::Finished);
        self.sink
            .counter_add(metrics::REQUESTS_FINISHED, self.track, 1);
        self.finished.push(FinishedGen {
            id: r.id,
            tokens: std::mem::take(&mut r.generated),
            first_token_step: r.first_token_step,
            completion_step: self.steps,
        });
    }

    /// Runs until all submitted requests finish; returns them in
    /// completion order.
    pub fn run_to_completion(&mut self) -> Vec<FinishedGen> {
        let mut idle_streak = 0;
        while !self.waiting.is_empty() || !self.running.is_empty() {
            match self.step() {
                StepKind::Idle => {
                    idle_streak += 1;
                    assert!(
                        idle_streak < 3,
                        "scheduler idle with work outstanding: admission livelock"
                    );
                }
                _ => idle_streak = 0,
            }
        }
        std::mem::take(&mut self.finished)
    }

    /// [`run_to_completion`] with a prefix cache consulted on every
    /// prefill step.
    ///
    /// [`run_to_completion`]: ContinuousBatcher::run_to_completion
    pub fn run_to_completion_with(&mut self, cache: &mut dyn PrefixReuse) -> Vec<FinishedGen> {
        let mut idle_streak = 0;
        while !self.waiting.is_empty() || !self.running.is_empty() {
            match self.step_with(Some(cache)) {
                StepKind::Idle => {
                    idle_streak += 1;
                    assert!(
                        idle_streak < 3,
                        "scheduler idle with work outstanding: admission livelock"
                    );
                }
                _ => idle_streak = 0,
            }
        }
        std::mem::take(&mut self.finished)
    }

    /// Free blocks in the paged KV pool (cache-pinned blocks count as
    /// used).
    #[must_use]
    pub fn kv_free_blocks(&self) -> usize {
        self.kv.free_blocks()
    }

    /// Total blocks in the paged KV pool.
    #[must_use]
    pub fn kv_total_blocks(&self) -> usize {
        self.kv.total_blocks()
    }

    /// Mutable access to the KV pool, for prefix-cache maintenance that
    /// needs both the cache and the pool (e.g. releasing every cached
    /// block at shutdown to verify nothing leaks).
    pub fn kv_mut(&mut self) -> &mut PagedKv {
        &mut self.kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TinyConfig;

    fn model() -> Model {
        Model::random(&TinyConfig::tiny(), 42)
    }

    fn req(id: u64, prompt: Vec<u32>, max_new: usize) -> GenRequest {
        GenRequest {
            id,
            prompt,
            max_new,
        }
    }

    #[test]
    fn batched_equals_standalone() {
        // Continuous batching must not change any request's output
        // versus running it alone — scheduling is about *when*, not
        // *what*.
        let m = model();
        let solo_a = m.generate(&[1, 2, 3], 6);
        let solo_b = m.generate(&[9, 8], 5);
        let mut batcher = ContinuousBatcher::new(m, 4096);
        batcher.submit(req(0, vec![1, 2, 3], 6));
        batcher.submit(req(1, vec![9, 8], 5));
        let mut done = batcher.run_to_completion();
        done.sort_by_key(|f| f.id);
        assert_eq!(done[0].tokens, solo_a);
        assert_eq!(done[1].tokens, solo_b);
    }

    #[test]
    fn interleaving_decodes_share_steps() {
        let m = model();
        let mut batcher = ContinuousBatcher::new(m, 4096);
        for i in 0..4 {
            batcher.submit(req(i, vec![1 + i as u32, 2], 5));
        }
        let done = batcher.run_to_completion();
        assert_eq!(done.len(), 4);
        // All four decode together: completion steps must coincide.
        let steps: Vec<u64> = done.iter().map(|f| f.completion_step).collect();
        assert!(steps.windows(2).all(|w| w[0] == w[1]), "{steps:?}");
    }

    #[test]
    fn admission_respects_kv_capacity() {
        let m = model();
        // Pool of 64 tokens (4 blocks): one 48-token lifetime (3 blocks)
        // fits, two at once do not.
        let mut batcher = ContinuousBatcher::new(m, 64);
        batcher.submit(req(0, vec![1; 24], 24));
        batcher.submit(req(1, vec![2; 24], 24));
        let k1 = batcher.step();
        assert!(
            matches!(k1, StepKind::Prefill { requests: 1, .. }),
            "{k1:?}"
        );
        // Second stays waiting until the first finishes.
        assert_eq!(batcher.waiting_len(), 1);
        let done = batcher.run_to_completion();
        assert_eq!(done.len(), 2);
        // Serialized: distinct completion steps.
        assert_ne!(done[0].completion_step, done[1].completion_step);
    }

    #[test]
    fn token_budget_limits_prefill_batch() {
        let m = model();
        let mut batcher = ContinuousBatcher::new(m, 4096).with_token_budget(10);
        batcher.submit(req(0, vec![1; 6], 2));
        batcher.submit(req(1, vec![2; 6], 2));
        let k = batcher.step();
        // 6 + 6 > 10: only the first admits this step.
        assert!(matches!(k, StepKind::Prefill { requests: 1, .. }), "{k:?}");
        assert_eq!(batcher.running_len() + batcher.waiting_len(), 2);
    }

    #[test]
    fn prefill_prioritized_over_decode() {
        let m = model();
        let mut batcher = ContinuousBatcher::new(m, 4096);
        batcher.submit(req(0, vec![1, 2], 4));
        assert!(matches!(batcher.step(), StepKind::Prefill { .. }));
        batcher.submit(req(1, vec![3, 4], 4));
        // New arrival preempts the decode of request 0 at the next step.
        assert!(matches!(batcher.step(), StepKind::Prefill { .. }));
        assert!(matches!(batcher.step(), StepKind::Decode { requests: 2 }));
    }

    #[test]
    fn idle_when_empty() {
        let m = model();
        let mut batcher = ContinuousBatcher::new(m, 1024);
        assert_eq!(batcher.step(), StepKind::Idle);
    }

    #[test]
    fn telemetry_recorder_captures_real_engine_lifecycles() {
        use distserve_telemetry::Recorder;

        let m = model();
        let plain: Vec<Vec<u32>> = (0..3u64)
            .map(|i| m.generate(&[1 + i as u32, 2, 3], 4))
            .collect();
        let rec = Arc::new(Recorder::new());
        let sink: Arc<dyn TelemetrySink> = rec.clone();
        let mut batcher = ContinuousBatcher::new(m, 4096).with_sink(sink, 3);
        for i in 0..3u64 {
            batcher.submit(req(i, vec![1 + i as u32, 2, 3], 4));
        }
        batcher.submit(req(9, vec![5, 6], 1)); // Retires at prefill.
        let mut done = batcher.run_to_completion();
        done.sort_by_key(|f| f.id);
        // Instrumentation must not change what is generated.
        for i in 0..3usize {
            assert_eq!(done[i].tokens, plain[i]);
        }

        let snap = rec.snapshot();
        assert_eq!(
            snap.track_names().get(&3).map(String::as_str),
            Some("tinyllm[3]")
        );
        let lifecycles = snap.lifecycles();
        assert_eq!(lifecycles.len(), 4);
        for (id, lc) in &lifecycles {
            lc.validate()
                .unwrap_or_else(|e| panic!("request {id}: {e}"));
        }
        // The single-token request never decodes.
        assert!(lifecycles[&9]
            .events
            .iter()
            .all(|(_, k)| !matches!(k, LifecycleEvent::DecodeStep { .. })));
        // Slices: at least one prefill and one decode span, all on track 3
        // with real (non-negative) durations.
        assert!(snap.slices.iter().any(|s| s.name == "prefill"));
        assert!(snap.slices.iter().any(|s| s.name == "decode"));
        for s in &snap.slices {
            assert_eq!(s.track, 3);
            assert!(s.end_s >= s.start_s);
        }
        // Counters reconcile with the workload: 3 × 3 + 2 = 11 prompt
        // tokens, 4 requests finished, 3 × 3 = 9 decode advances.
        assert_eq!(snap.metrics.counter(metrics::PREFILL_TOKENS, 3), 11);
        assert_eq!(snap.metrics.counter(metrics::REQUESTS_FINISHED, 3), 4);
        assert_eq!(snap.metrics.counter(metrics::DECODE_TOKENS, 3), 9);
        // Terminal gauges: nothing queued, nothing running, pool drained.
        assert_eq!(snap.metrics.gauge(metrics::DECODE_LOAD, 3), Some(0.0));
        assert_eq!(snap.metrics.gauge(metrics::KV_UTILIZATION, 3), Some(0.0));
        // The engine's compute width is recorded once at sink attach.
        let threads = snap
            .metrics
            .gauge(metrics::COMPUTE_THREADS, 3)
            .expect("compute_threads gauge");
        assert!(threads >= 1.0);
    }

    #[test]
    fn single_token_request_retires_at_prefill() {
        let m = model();
        let solo = m.generate(&[4, 5, 6], 1);
        let mut batcher = ContinuousBatcher::new(m, 1024);
        batcher.submit(req(7, vec![4, 5, 6], 1));
        let done = batcher.run_to_completion();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tokens, solo);
        assert_eq!(done[0].first_token_step, done[0].completion_step);
    }
}
