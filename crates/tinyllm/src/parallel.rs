//! Tensor-parallel execution across OS threads.
//!
//! Each worker owns a [`Shard`] (heads + FFN columns) and its own paged
//! KV cache copy for its head slice; after every attention and FFN it
//! contributes its partial output to a shared accumulator and waits at a
//! barrier — a literal all-reduce. This is the execution structure the
//! cost model prices with `allreduce_time` (§2.2, §3.1), here validated
//! numerically: the tensor-parallel result equals single-threaded
//! execution to float tolerance.
//!
//! Workers run the batched engine tier: the whole prompt prefills as one
//! activation matrix (one all-reduce per projection per layer instead of
//! one per token), then decode proceeds a row at a time. The reduced
//! buffers are `(m × hidden)`, so the all-reduce is width-agnostic.
//!
//! Ranks execute on the model's persistent [`crate::pool::WorkerPool`]
//! (no thread spawn per call): each rank task moves a cheap [`Model`]
//! clone (shared `Arc` weights) onto a pool worker. Inside a worker the
//! engine's own data-parallel dispatch runs inline and serial, so ranks
//! never re-enter the pool and the single-queue design stays
//! deadlock-free.

use std::sync::{Arc, Barrier, Mutex};

use crate::engine::{BatchRow, Model, Scratch, Shard};
use crate::tensor::argmax;

/// Shared all-reduce state for one tensor-parallel group.
struct AllReduce {
    acc: Mutex<Vec<f32>>,
    barrier: Barrier,
}

impl AllReduce {
    fn new(world: usize) -> Self {
        AllReduce {
            acc: Mutex::new(Vec::new()),
            barrier: Barrier::new(world),
        }
    }

    /// Contributes `partial` and returns the summed buffer; rank 0 resets
    /// the accumulator for the next round. All ranks pass equal-length
    /// buffers in a given round; the width may change between rounds
    /// (prefill reduces `(m × hidden)`, decode `(1 × hidden)`).
    fn reduce(&self, rank: usize, partial: &[f32]) -> Vec<f32> {
        {
            let mut acc = self.acc.lock().expect("no poisoning");
            if acc.len() != partial.len() {
                // First contributor of a round with a new width; the
                // accumulator holds only zeros here.
                acc.clear();
                acc.resize(partial.len(), 0.0);
            }
            for (a, p) in acc.iter_mut().zip(partial) {
                *a += p;
            }
        }
        self.barrier.wait();
        let full = self.acc.lock().expect("no poisoning").clone();
        self.barrier.wait();
        if rank == 0 {
            let mut acc = self.acc.lock().expect("no poisoning");
            for a in acc.iter_mut() {
                *a = 0.0;
            }
        }
        self.barrier.wait();
        full
    }
}

/// Greedy generation with `world`-way tensor parallelism over threads.
///
/// Produces the same tokens as [`Model::generate`] up to floating-point
/// reassociation in the all-reduce.
///
/// # Panics
///
/// Panics if `world` does not divide the model's head count and FFN
/// width, or the sequence exceeds `max_seq`.
#[must_use]
pub fn generate_tp(model: &Model, prompt: &[u32], max_new: usize, world: usize) -> Vec<u32> {
    assert!(world >= 1, "world must be at least 1");
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let cfg = model.config().clone();
    assert!(
        prompt.len() + max_new <= cfg.max_seq,
        "sequence exceeds max_seq"
    );
    // Validate the split before spawning, so misuse fails on the caller's
    // thread with a clear message.
    assert_eq!(cfg.heads % world, 0, "heads % world != 0");
    assert_eq!(cfg.ffn % world, 0, "ffn % world != 0");
    if world == 1 {
        return model.generate(prompt, max_new);
    }
    if max_new == 0 {
        return Vec::new();
    }

    let reduce = Arc::new(AllReduce::new(world));
    // The emitted token of each step, written by rank 0.
    let emitted = Arc::new(Mutex::new(Vec::new()));

    let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..world)
        .map(|rank| {
            let model = model.clone();
            let reduce = Arc::clone(&reduce);
            let emitted = Arc::clone(&emitted);
            let cfg = cfg.clone();
            let prompt = prompt.to_vec();
            Box::new(move || {
                let shard = Shard::of(&cfg, rank, world);
                let mut kv = model.make_kv(prompt.len() + max_new, 16);
                kv.register(0);
                let mut scratch = Scratch::new();

                // One sharded layer sweep over `rows`, with an all-reduce
                // after every attention and FFN partial.
                let sweep =
                    |rows: &[BatchRow], kv: &mut crate::kv::PagedKv, scratch: &mut Scratch| {
                        let m = rows.len();
                        model.embed_rows(rows, scratch);
                        for layer in 0..cfg.layers {
                            model.ln1_batch(layer, m, scratch);
                            model.attn_batch(layer, rows, kv, shard, scratch);
                            let full = reduce.reduce(rank, &scratch.partial);
                            for (xi, a) in scratch.x.iter_mut().zip(&full) {
                                *xi += a;
                            }
                            model.ln2_batch(layer, m, scratch);
                            model.ffn_batch(layer, m, shard, scratch);
                            let full = reduce.reduce(rank, &scratch.partial);
                            for (xi, f) in scratch.x.iter_mut().zip(&full) {
                                *xi += f;
                            }
                        }
                    };

                // Batched prefill: the whole prompt as one activation
                // matrix — layers × 2 all-reduces total, not per token.
                let rows: Vec<BatchRow> = prompt
                    .iter()
                    .enumerate()
                    .map(|(pos, &token)| BatchRow { seq: 0, pos, token })
                    .collect();
                sweep(&rows, &mut kv, &mut scratch);
                // Every rank holds identical hidden states (the reduce
                // made them so); each computes logits locally and rank 0
                // publishes. Barriers inside `reduce` keep steps in
                // lockstep.
                model.logits_batch(&[prompt.len() - 1], &mut scratch);
                let mut last_token = argmax(scratch.logits_row(0)) as u32;
                if rank == 0 {
                    emitted.lock().expect("no poisoning").push(last_token);
                }

                // Decode one row at a time, feeding back the emitted
                // token (identical on all ranks).
                for step in 0..max_new - 1 {
                    let row = [BatchRow {
                        seq: 0,
                        pos: prompt.len() + step,
                        token: last_token,
                    }];
                    sweep(&row, &mut kv, &mut scratch);
                    model.logits_batch(&[0], &mut scratch);
                    last_token = argmax(scratch.logits_row(0)) as u32;
                    if rank == 0 {
                        emitted.lock().expect("no poisoning").push(last_token);
                    }
                }
            }) as Box<dyn FnOnce() + Send + 'static>
        })
        .collect();
    // Every rank runs on its own persistent pool worker; `run_tasks`
    // re-raises any rank panic after all ranks finish.
    model.pool().run_tasks(tasks);

    let tokens = emitted.lock().expect("no poisoning").clone();
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TinyConfig;

    #[test]
    fn tp2_matches_single_thread() {
        let model = Model::random(&TinyConfig::tiny(), 42);
        let prompt = vec![3, 1, 4, 1, 5];
        let reference = model.generate(&prompt, 10);
        let tp = generate_tp(&model, &prompt, 10, 2);
        assert_eq!(reference, tp);
    }

    #[test]
    fn tp4_matches_single_thread() {
        let model = Model::random(&TinyConfig::tiny(), 7);
        let prompt = vec![9, 9, 1];
        let reference = model.generate(&prompt, 8);
        let tp = generate_tp(&model, &prompt, 8, 4);
        assert_eq!(reference, tp);
    }

    #[test]
    fn world_one_is_passthrough() {
        let model = Model::random(&TinyConfig::tiny(), 11);
        let prompt = vec![2, 4];
        assert_eq!(
            generate_tp(&model, &prompt, 5, 1),
            model.generate(&prompt, 5)
        );
    }

    #[test]
    #[should_panic(expected = "heads % world")]
    fn indivisible_world_rejected() {
        let model = Model::random(&TinyConfig::tiny(), 1);
        let _ = generate_tp(&model, &[1], 2, 3); // 4 heads % 3 != 0.
    }
}
