//! Tensor-parallel execution across OS threads.
//!
//! Each worker owns a [`Shard`] (heads + FFN columns) and its own paged
//! KV cache copy for its head slice; after every attention and FFN it
//! contributes its partial output to a shared accumulator and waits at a
//! barrier — a literal all-reduce. This is the execution structure the
//! cost model prices with `allreduce_time` (§2.2, §3.1), here validated
//! numerically: the tensor-parallel result equals single-threaded
//! execution to float tolerance.

use std::sync::{Barrier, Mutex};

use crate::engine::{Model, Shard};
use crate::tensor::argmax;

/// Shared all-reduce state for one tensor-parallel group.
struct AllReduce {
    acc: Mutex<Vec<f32>>,
    barrier: Barrier,
    world: usize,
}

impl AllReduce {
    fn new(world: usize, width: usize) -> Self {
        AllReduce {
            acc: Mutex::new(vec![0.0; width]),
            barrier: Barrier::new(world),
            world,
        }
    }

    /// Contributes `partial` and returns the summed vector; rank 0 resets
    /// the accumulator for the next round.
    fn reduce(&self, rank: usize, partial: &[f32]) -> Vec<f32> {
        {
            let mut acc = self.acc.lock().expect("no poisoning");
            for (a, p) in acc.iter_mut().zip(partial) {
                *a += p;
            }
        }
        self.barrier.wait();
        let full = self.acc.lock().expect("no poisoning").clone();
        self.barrier.wait();
        if rank == 0 {
            let mut acc = self.acc.lock().expect("no poisoning");
            for a in acc.iter_mut() {
                *a = 0.0;
            }
        }
        self.barrier.wait();
        let _ = self.world;
        full
    }
}

/// Greedy generation with `world`-way tensor parallelism over threads.
///
/// Produces the same tokens as [`Model::generate`] up to floating-point
/// reassociation in the all-reduce.
///
/// # Panics
///
/// Panics if `world` does not divide the model's head count and FFN
/// width, or the sequence exceeds `max_seq`.
#[must_use]
pub fn generate_tp(model: &Model, prompt: &[u32], max_new: usize, world: usize) -> Vec<u32> {
    assert!(world >= 1, "world must be at least 1");
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let cfg = model.config().clone();
    assert!(
        prompt.len() + max_new <= cfg.max_seq,
        "sequence exceeds max_seq"
    );
    // Validate the split before spawning, so misuse fails on the caller's
    // thread with a clear message.
    assert_eq!(cfg.heads % world, 0, "heads % world != 0");
    assert_eq!(cfg.ffn % world, 0, "ffn % world != 0");
    if world == 1 {
        return model.generate(prompt, max_new);
    }

    let reduce = AllReduce::new(world, cfg.hidden);
    // The emitted token of each step, written by rank 0.
    let emitted: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let total_steps = prompt.len() + max_new - 1;

    crossbeam::thread::scope(|s| {
        for rank in 0..world {
            let reduce = &reduce;
            let emitted = &emitted;
            let cfg = cfg.clone();
            s.spawn(move |_| {
                let shard = Shard::of(&cfg, rank, world);
                let mut kv = model.make_kv(prompt.len() + max_new, 16);
                kv.register(0);
                let mut last_token = prompt[0];
                for pos in 0..total_steps {
                    // Pick this position's input token: prompt, or the
                    // previously emitted token (identical on all ranks).
                    let token = if pos < prompt.len() {
                        prompt[pos]
                    } else {
                        last_token
                    };
                    let mut x = model.embed_token(token, pos);
                    for layer in 0..cfg.layers {
                        let xa = model.ln1(layer, &x);
                        let part = model.attn_partial(layer, &xa, 0, pos, &mut kv, shard);
                        let attn = reduce.reduce(rank, &part);
                        for (xi, a) in x.iter_mut().zip(&attn) {
                            *xi += a;
                        }
                        let xf = model.ln2(layer, &x);
                        let part = model.ffn_partial(layer, &xf, shard);
                        let ffn = reduce.reduce(rank, &part);
                        for (xi, f) in x.iter_mut().zip(&ffn) {
                            *xi += f;
                        }
                    }
                    // Every rank holds the identical hidden state; rank 0
                    // publishes the sampled token, the barrier in the
                    // next reduce round keeps steps in lockstep. Emission
                    // starts at the last prompt position.
                    if pos + 1 >= prompt.len() {
                        let logits = model.logits(&x);
                        let next = argmax(&logits) as u32;
                        if rank == 0 {
                            emitted.lock().expect("no poisoning").push(next);
                        }
                        last_token = next;
                    }
                }
            });
        }
    })
    .expect("tensor-parallel workers do not panic");

    emitted.into_inner().expect("no poisoning")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TinyConfig;

    #[test]
    fn tp2_matches_single_thread() {
        let model = Model::random(&TinyConfig::tiny(), 42);
        let prompt = vec![3, 1, 4, 1, 5];
        let reference = model.generate(&prompt, 10);
        let tp = generate_tp(&model, &prompt, 10, 2);
        assert_eq!(reference, tp);
    }

    #[test]
    fn tp4_matches_single_thread() {
        let model = Model::random(&TinyConfig::tiny(), 7);
        let prompt = vec![9, 9, 1];
        let reference = model.generate(&prompt, 8);
        let tp = generate_tp(&model, &prompt, 8, 4);
        assert_eq!(reference, tp);
    }

    #[test]
    fn world_one_is_passthrough() {
        let model = Model::random(&TinyConfig::tiny(), 11);
        let prompt = vec![2, 4];
        assert_eq!(
            generate_tp(&model, &prompt, 5, 1),
            model.generate(&prompt, 5)
        );
    }

    #[test]
    #[should_panic(expected = "heads % world")]
    fn indivisible_world_rejected() {
        let model = Model::random(&TinyConfig::tiny(), 1);
        let _ = generate_tp(&model, &[1], 2, 3); // 4 heads % 3 != 0.
    }
}
