//! The forward pass: an OPT-style decoder reading a paged KV cache.
//!
//! The layer computation is factored into *partial* pieces parameterized
//! by a [`Shard`] (a head range plus an FFN column range) so the same
//! code runs single-threaded (the full shard) and tensor-parallel (each
//! worker a proper shard, summing partials — the all-reduce). This
//! mirrors Megatron-style intra-operator parallelism (§2.2).

use crate::kv::{PagedKv, SeqId};
use crate::model::{TinyConfig, Weights};
use crate::tensor::{add_bias, layer_norm, relu, softmax, Matrix};

/// A tensor-parallel shard: which heads and FFN columns this worker owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First owned attention head.
    pub head_lo: usize,
    /// One past the last owned head.
    pub head_hi: usize,
    /// First owned FFN column.
    pub ffn_lo: usize,
    /// One past the last owned FFN column.
    pub ffn_hi: usize,
}

impl Shard {
    /// The whole model (single-device execution).
    #[must_use]
    pub fn full(cfg: &TinyConfig) -> Self {
        Shard {
            head_lo: 0,
            head_hi: cfg.heads,
            ffn_lo: 0,
            ffn_hi: cfg.ffn,
        }
    }

    /// The `rank`-th of `world` equal shards.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides both the head count and FFN width
    /// and `rank < world`.
    #[must_use]
    pub fn of(cfg: &TinyConfig, rank: usize, world: usize) -> Self {
        assert!(rank < world, "rank {rank} out of {world}");
        assert_eq!(cfg.heads % world, 0, "heads % world != 0");
        assert_eq!(cfg.ffn % world, 0, "ffn % world != 0");
        let hpw = cfg.heads / world;
        let fpw = cfg.ffn / world;
        Shard {
            head_lo: rank * hpw,
            head_hi: (rank + 1) * hpw,
            ffn_lo: rank * fpw,
            ffn_hi: (rank + 1) * fpw,
        }
    }
}

/// A transformer model with weights, ready for inference.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: TinyConfig,
    weights: Weights,
}

impl Model {
    /// Builds a model with deterministic random weights.
    #[must_use]
    pub fn random(cfg: &TinyConfig, seed: u64) -> Self {
        Model {
            cfg: cfg.clone(),
            weights: Weights::random(cfg, seed),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TinyConfig {
        &self.cfg
    }

    /// Token plus learned position embedding.
    ///
    /// # Panics
    ///
    /// Panics if the token or position is out of range.
    #[must_use]
    pub fn embed_token(&self, token: u32, pos: usize) -> Vec<f32> {
        let t = token as usize;
        assert!(t < self.cfg.vocab, "token {t} out of vocab");
        assert!(pos < self.cfg.max_seq, "position {pos} past max_seq");
        self.weights
            .embed
            .row(t)
            .iter()
            .zip(self.weights.pos.row(pos))
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Pre-attention LayerNorm.
    #[must_use]
    pub fn ln1(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln1_scale,
            &lw.ln1_shift,
        )
        .data
    }

    /// Pre-FFN LayerNorm.
    #[must_use]
    pub fn ln2(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln2_scale,
            &lw.ln2_shift,
        )
        .data
    }

    /// Attention for the shard's heads at `(seq, pos)`: projects Q/K/V,
    /// appends this position's K/V (shard's head slice only) to the cache,
    /// attends causally over positions `0..=pos`, and applies the shard's
    /// slice of the output projection. Summing all shards' results gives
    /// the layer's attention output (the all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if the KV append fails (pool exhausted or sequence not
    /// registered) — the scheduler must admit within capacity.
    #[must_use]
    pub fn attn_partial(
        &self,
        layer: usize,
        x_norm: &[f32],
        seq: SeqId,
        pos: usize,
        kv: &mut PagedKv,
        shard: Shard,
    ) -> Vec<f32> {
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, h, x_norm.to_vec());
        let qkv = x.matmul(&lw.wqkv);
        let (q, rest) = qkv.data.split_at(h);
        let (k, v) = rest.split_at(h);

        // Write this position's K/V: only the shard's head slice is
        // meaningful in this worker's cache copy; other dims stay zero.
        let mut k_masked = vec![0.0; h];
        let mut v_masked = vec![0.0; h];
        let lo = shard.head_lo * d;
        let hi = shard.head_hi * d;
        k_masked[lo..hi].copy_from_slice(&k[lo..hi]);
        v_masked[lo..hi].copy_from_slice(&v[lo..hi]);
        kv.append(seq, layer, pos, &k_masked, &v_masked)
            .expect("KV append within capacity");

        // Per-head causal attention over the cache.
        let scale = 1.0 / (d as f32).sqrt();
        let mut attn_out = vec![0.0; h];
        for head in shard.head_lo..shard.head_hi {
            let hl = head * d;
            let q_h = &q[hl..hl + d];
            let mut scores = Vec::with_capacity(pos + 1);
            for p in 0..=pos {
                let k_p = &kv.key(seq, layer, p)[hl..hl + d];
                let dot: f32 = q_h.iter().zip(k_p).map(|(a, b)| a * b).sum();
                scores.push(dot * scale);
            }
            softmax(&mut scores);
            for (p, w) in scores.iter().enumerate() {
                let v_p = &kv.value(seq, layer, p)[hl..hl + d];
                for (o, &vv) in attn_out[hl..hl + d].iter_mut().zip(v_p) {
                    *o += w * vv;
                }
            }
        }

        // Output projection: rows outside the shard's dims are zero in
        // `attn_out`, and the matmul skips zero inputs, so this computes
        // exactly the shard's partial sum.
        Matrix::from_vec(1, h, attn_out).matmul(&lw.wo).data
    }

    /// FFN for the shard's columns: `relu(x·W1[:, lo..hi]) · W2[lo..hi, :]`.
    #[must_use]
    pub fn ffn_partial(&self, layer: usize, x_norm: &[f32], shard: Shard) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, x_norm.len(), x_norm.to_vec());
        let mut mid = x.matmul_cols(&lw.w1, shard.ffn_lo, shard.ffn_hi);
        relu(&mut mid);
        // Zero-pad to full FFN width; zero rows are skipped by matmul.
        let mut padded = vec![0.0; self.cfg.ffn];
        padded[shard.ffn_lo..shard.ffn_hi].copy_from_slice(&mid.data);
        Matrix::from_vec(1, self.cfg.ffn, padded).matmul(&lw.w2).data
    }

    /// Output logits from a final hidden state (tied embeddings).
    #[must_use]
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        let mut normed = layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &self.weights.lnf_scale,
            &self.weights.lnf_shift,
        );
        add_bias(&mut normed, &vec![0.0; x.len()]);
        let mut out = vec![0.0; self.cfg.vocab];
        for (t, o) in out.iter_mut().enumerate() {
            *o = normed
                .row(0)
                .iter()
                .zip(self.weights.embed.row(t))
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }

    /// Full (single-shard) forward pass of one token, returning logits.
    #[must_use]
    pub fn forward_token(
        &self,
        seq: SeqId,
        pos: usize,
        token: u32,
        kv: &mut PagedKv,
    ) -> Vec<f32> {
        let shard = Shard::full(&self.cfg);
        let mut x = self.embed_token(token, pos);
        for layer in 0..self.cfg.layers {
            let xa = self.ln1(layer, &x);
            let attn = self.attn_partial(layer, &xa, seq, pos, kv, shard);
            for (xi, a) in x.iter_mut().zip(&attn) {
                *xi += a;
            }
            let xf = self.ln2(layer, &x);
            let ffn = self.ffn_partial(layer, &xf, shard);
            for (xi, f) in x.iter_mut().zip(&ffn) {
                *xi += f;
            }
        }
        self.logits(&x)
    }

    /// Builds a KV pool sized for `max_tokens` total positions.
    #[must_use]
    pub fn make_kv(&self, max_tokens: usize, block_size: usize) -> PagedKv {
        let blocks = max_tokens.div_ceil(block_size).max(1);
        PagedKv::new(self.cfg.layers, self.cfg.hidden, block_size, blocks)
    }

    /// Greedy generation: prefills `prompt` and emits `max_new` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate(&self, prompt: &[u32], max_new: usize) -> Vec<u32> {
        self.generate_with(
            prompt,
            max_new,
            &mut crate::sampling::Sampler::new(crate::sampling::Sampling::Greedy, 0),
        )
    }

    /// Generation with an explicit sampling strategy (§5: the frontend
    /// exposes sampling parameters such as temperature).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate_with(
        &self,
        prompt: &[u32],
        max_new: usize,
        sampler: &mut crate::sampling::Sampler,
    ) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + max_new <= self.cfg.max_seq,
            "sequence exceeds max_seq"
        );
        let mut kv = self.make_kv(prompt.len() + max_new, 16);
        kv.register(0);
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            logits = self.forward_token(0, pos, tok, &mut kv);
        }
        let mut out = Vec::with_capacity(max_new);
        let mut pos = prompt.len();
        for _ in 0..max_new {
            let next = sampler.sample(&logits);
            out.push(next);
            if out.len() == max_new {
                break;
            }
            logits = self.forward_token(0, pos, next, &mut kv);
            pos += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::random(&TinyConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[1, 2, 3], 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&t| (t as usize) < m.config().vocab));
    }

    #[test]
    fn different_prompts_differ() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[4, 5, 6], 8);
        assert_ne!(a, b, "distinct prompts should diverge");
    }

    #[test]
    fn kv_reuse_equals_recompute() {
        // Incremental decoding with the cache must equal a from-scratch
        // forward over the whole prefix — the KV cache's core invariant.
        let m = model();
        let seq: Vec<u32> = vec![5, 9, 2, 7];

        // Incremental: feed tokens one at a time into one cache.
        let mut kv = m.make_kv(16, 4);
        kv.register(0);
        let mut logits_inc = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_inc = m.forward_token(0, pos, t, &mut kv);
        }

        // From scratch with a fresh cache (same computation order).
        let mut kv2 = m.make_kv(16, 16);
        kv2.register(0);
        let mut logits_fresh = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_fresh = m.forward_token(0, pos, t, &mut kv2);
        }
        for (a, b) in logits_inc.iter().zip(&logits_fresh) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sharded_sums_equal_full() {
        // The TP decomposition: attention and FFN partials summed over
        // shards must equal the full-shard result.
        let m = model();
        let cfg = m.config().clone();
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.1).sin()).collect();
        let xa = m.ln1(0, &x);

        // Full reference (its own cache).
        let mut kv_full = m.make_kv(8, 8);
        kv_full.register(0);
        let full = m.attn_partial(0, &xa, 0, 0, &mut kv_full, Shard::full(&cfg));

        // Two shards, each with its own cache copy.
        let mut sum = vec![0.0; cfg.hidden];
        for rank in 0..2 {
            let mut kv_s = m.make_kv(8, 8);
            kv_s.register(0);
            let part = m.attn_partial(0, &xa, 0, 0, &mut kv_s, Shard::of(&cfg, rank, 2));
            for (s, p) in sum.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full.iter().zip(&sum) {
            assert!((a - b).abs() < 1e-5, "attention: {a} vs {b}");
        }

        // FFN likewise.
        let xf = m.ln2(0, &x);
        let full_ffn = m.ffn_partial(0, &xf, Shard::full(&cfg));
        let mut sum_ffn = vec![0.0; cfg.hidden];
        for rank in 0..4 {
            let part = m.ffn_partial(0, &xf, Shard::of(&cfg, rank, 4));
            for (s, p) in sum_ffn.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            assert!((a - b).abs() < 1e-5, "ffn: {a} vs {b}");
        }
    }

    #[test]
    fn attention_attends_to_context() {
        // The logits at the last position must depend on earlier tokens,
        // not just the final one.
        let m = model();
        let a = m.generate(&[1, 2, 9], 1);
        let b = m.generate(&[7, 2, 9], 1);
        // Same final token, different context → (almost surely) different
        // continuation under random weights.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn overlong_generation_rejected() {
        let m = model();
        let prompt = vec![0u32; 200];
        let _ = m.generate(&prompt, 100); // 300 > max_seq 256.
    }

    #[test]
    fn shard_partition_covers_everything() {
        let cfg = TinyConfig::tiny();
        let s0 = Shard::of(&cfg, 0, 4);
        let s3 = Shard::of(&cfg, 3, 4);
        assert_eq!(s0.head_lo, 0);
        assert_eq!(s3.head_hi, cfg.heads);
        assert_eq!(s3.ffn_hi, cfg.ffn);
    }
}
