//! The forward pass: an OPT-style decoder reading a paged KV cache.
//!
//! The layer computation is factored into *partial* pieces parameterized
//! by a [`Shard`] (a head range plus an FFN column range) so the same
//! code runs single-threaded (the full shard) and tensor-parallel (each
//! worker a proper shard, summing partials — the all-reduce). This
//! mirrors Megatron-style intra-operator parallelism (§2.2).
//!
//! Two execution tiers share the weights. [`Model::forward_token`] is the
//! token-at-a-time *reference* path, written for readability. The *batch*
//! path ([`Model::forward_batch`] plus the `*_batch` layer pieces) stacks
//! many rows — a whole prompt in prefill, one row per active sequence in
//! fused decode — into single GEMMs over pre-packed weights
//! ([`PackedMatrix`]), reusing one [`Scratch`] arena across steps so the
//! hot loop never allocates. The batch kernels accumulate in the same
//! per-element order as the reference, so both tiers produce identical
//! tokens (the scheduler tests assert exact equality).

use crate::kv::{KvLayerView, PagedKv, SeqId};
use crate::model::{TinyConfig, Weights};
use crate::tensor::{
    layer_norm, layer_norm_into, relu, relu_slice, softmax, softmax_cols, Matrix, PackedMatrix,
};

/// A tensor-parallel shard: which heads and FFN columns this worker owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First owned attention head.
    pub head_lo: usize,
    /// One past the last owned head.
    pub head_hi: usize,
    /// First owned FFN column.
    pub ffn_lo: usize,
    /// One past the last owned FFN column.
    pub ffn_hi: usize,
}

impl Shard {
    /// The whole model (single-device execution).
    #[must_use]
    pub fn full(cfg: &TinyConfig) -> Self {
        Shard {
            head_lo: 0,
            head_hi: cfg.heads,
            ffn_lo: 0,
            ffn_hi: cfg.ffn,
        }
    }

    /// The `rank`-th of `world` equal shards.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides both the head count and FFN width
    /// and `rank < world`.
    #[must_use]
    pub fn of(cfg: &TinyConfig, rank: usize, world: usize) -> Self {
        assert!(rank < world, "rank {rank} out of {world}");
        assert_eq!(cfg.heads % world, 0, "heads % world != 0");
        assert_eq!(cfg.ffn % world, 0, "ffn % world != 0");
        let hpw = cfg.heads / world;
        let fpw = cfg.ffn / world;
        Shard {
            head_lo: rank * hpw,
            head_hi: (rank + 1) * hpw,
            ffn_lo: rank * fpw,
            ffn_hi: (rank + 1) * fpw,
        }
    }
}

/// One row of a batched forward pass: a token of some sequence at some
/// position. Prefill stacks a prompt's rows (same `seq`, ascending
/// `pos`); fused decode stacks one row per active sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRow {
    /// Sequence the row belongs to.
    pub seq: SeqId,
    /// Position within the sequence.
    pub pos: usize,
    /// Input token at that position.
    pub token: u32,
}

/// Per-layer weights re-packed for the blocked kernels (built once at
/// model construction).
#[derive(Debug, Clone)]
struct PackedLayer {
    wqkv: PackedMatrix,
    wo: PackedMatrix,
    w1: PackedMatrix,
    w2: PackedMatrix,
}

/// All packed weights: the per-layer projections plus the transposed
/// embedding (`hidden × vocab`) so tied-embedding logits are one GEMM.
#[derive(Debug, Clone)]
struct PackedWeights {
    layers: Vec<PackedLayer>,
    embed_t: PackedMatrix,
}

impl PackedWeights {
    fn build(w: &Weights) -> Self {
        PackedWeights {
            layers: w
                .layers
                .iter()
                .map(|lw| PackedLayer {
                    wqkv: PackedMatrix::pack(&lw.wqkv),
                    wo: PackedMatrix::pack(&lw.wo),
                    w1: PackedMatrix::pack(&lw.w1),
                    w2: PackedMatrix::pack(&lw.w2),
                })
                .collect(),
            embed_t: PackedMatrix::pack_transposed(&w.embed),
        }
    }
}

/// Reusable buffers for the batch path. One arena serves every step of a
/// scheduler or generation loop; buffers are resized (never reallocated
/// once at steady state) and fully overwritten by each kernel.
#[derive(Debug, Default)]
pub struct Scratch {
    /// `(m × hidden)` residual stream.
    pub(crate) x: Vec<f32>,
    /// `(m × hidden)` LayerNorm output.
    pub(crate) normed: Vec<f32>,
    /// `(m × 3·hidden)` fused Q/K/V projection.
    qkv: Vec<f32>,
    /// `(m × shard head dims)` attention context, shard slice only.
    attn: Vec<f32>,
    /// `(m × hidden)` projection partial (attention or FFN output).
    pub(crate) partial: Vec<f32>,
    /// `(m × shard FFN width)` FFN mid activation.
    mid: Vec<f32>,
    /// Attention scores of one row, position-major
    /// (`context × shard heads`).
    scores: Vec<f32>,
    /// Per-block accumulator of the attention score pass
    /// (`block_size` floats).
    acc: Vec<f32>,
    /// Column-softmax temporaries (`2 × shard heads`).
    sm_tmp: Vec<f32>,
    /// Selected rows gathered for the logits projection.
    sel: Vec<f32>,
    /// `(picks × vocab)` logits of the selected rows.
    logits: Vec<f32>,
    /// Row width of `logits` (the vocab size), set by `logits_batch`.
    logits_width: usize,
}

impl Scratch {
    /// An empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }

    /// The logits row for the `i`-th selected index of the last
    /// [`Model::logits_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for that call.
    #[must_use]
    pub fn logits_row(&self, i: usize) -> &[f32] {
        let w = self.logits_width;
        &self.logits[i * w..(i + 1) * w]
    }
}

/// Attention score pass monomorphized for panels of `BS` positions: for
/// each head, `BS` accumulators held in registers sweep the head's dims
/// in ascending order (the reference dot's order), each step one FMA
/// across the whole block. Scores land position-major
/// (`scores[p * heads + hd]`), scaled. Panel columns past `ctx` are
/// computed on garbage and discarded.
#[allow(clippy::too_many_arguments)]
fn score_panels<const BS: usize>(
    view: &KvLayerView<'_>,
    ctx: usize,
    q_s: &[f32],
    lo: usize,
    d: usize,
    heads: usize,
    scale: f32,
    scores: &mut [f32],
) {
    let mut base_p = 0;
    for panel in view.key_panels(ctx) {
        let take = (ctx - base_p).min(BS);
        for hd in 0..heads {
            let mut acc = [0.0f32; BS];
            for (l, &q) in q_s[hd * d..(hd + 1) * d].iter().enumerate() {
                let row: &[f32; BS] = panel[(lo + hd * d + l) * BS..][..BS]
                    .try_into()
                    .expect("BS-wide panel row");
                for (a, &kv) in acc.iter_mut().zip(row) {
                    *a += q * kv;
                }
            }
            for (s, &a) in acc[..take].iter().enumerate() {
                scores[(base_p + s) * heads + hd] = a * scale;
            }
        }
        base_p += take;
    }
}

/// Attention weighted-V pass monomorphized for a `W`-float shard width of
/// `D`-dim heads: the output row rides in registers across the whole
/// position loop, and positions are indexed with plain arithmetic inside
/// each block's contiguous slot region (no per-position iterator state).
/// The inner body is a straight line of `W` const-indexed FMAs. Positions
/// accumulate in ascending order, exactly the reference path's
/// association.
fn weighted_v<const W: usize, const D: usize>(
    view: &KvLayerView<'_>,
    ctx: usize,
    h: usize,
    lo: usize,
    scores: &[f32],
    out_row: &mut [f32],
) {
    let heads = W / D;
    let mut acc = [0.0f32; W];
    let mut base_p = 0;
    for (region, n) in view.slot_regions(ctx) {
        for s in 0..n {
            let v_s: &[f32; W] = region[s * 2 * h + h + lo..][..W]
                .try_into()
                .expect("W-wide V slice");
            let w_row = &scores[(base_p + s) * heads..][..heads];
            for hd in 0..heads {
                let w = w_row[hd];
                for l in 0..D {
                    acc[hd * D + l] += w * v_s[hd * D + l];
                }
            }
        }
        base_p += n;
    }
    out_row.copy_from_slice(&acc);
}

/// A transformer model with weights, ready for inference.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: TinyConfig,
    weights: Weights,
    packed: PackedWeights,
}

impl Model {
    /// Builds a model with deterministic random weights.
    #[must_use]
    pub fn random(cfg: &TinyConfig, seed: u64) -> Self {
        let weights = Weights::random(cfg, seed);
        let packed = PackedWeights::build(&weights);
        Model {
            cfg: cfg.clone(),
            weights,
            packed,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TinyConfig {
        &self.cfg
    }

    /// Token plus learned position embedding.
    ///
    /// # Panics
    ///
    /// Panics if the token or position is out of range.
    #[must_use]
    pub fn embed_token(&self, token: u32, pos: usize) -> Vec<f32> {
        let t = token as usize;
        assert!(t < self.cfg.vocab, "token {t} out of vocab");
        assert!(pos < self.cfg.max_seq, "position {pos} past max_seq");
        self.weights
            .embed
            .row(t)
            .iter()
            .zip(self.weights.pos.row(pos))
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Pre-attention LayerNorm.
    #[must_use]
    pub fn ln1(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln1_scale,
            &lw.ln1_shift,
        )
        .data
    }

    /// Pre-FFN LayerNorm.
    #[must_use]
    pub fn ln2(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln2_scale,
            &lw.ln2_shift,
        )
        .data
    }

    /// Attention for the shard's heads at `(seq, pos)`: projects Q/K/V,
    /// appends this position's K/V (shard's head slice only) to the cache,
    /// attends causally over positions `0..=pos`, and applies the shard's
    /// slice of the output projection. Summing all shards' results gives
    /// the layer's attention output (the all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if the KV append fails (pool exhausted or sequence not
    /// registered) — the scheduler must admit within capacity.
    #[must_use]
    pub fn attn_partial(
        &self,
        layer: usize,
        x_norm: &[f32],
        seq: SeqId,
        pos: usize,
        kv: &mut PagedKv,
        shard: Shard,
    ) -> Vec<f32> {
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, h, x_norm.to_vec());
        let qkv = x.matmul(&lw.wqkv);
        let (q, rest) = qkv.data.split_at(h);
        let (k, v) = rest.split_at(h);

        // Write this position's K/V: only the shard's head slice — the
        // dims this worker will read back. Other dims are other shards'
        // business (each worker owns a cache copy).
        let lo = shard.head_lo * d;
        let hi = shard.head_hi * d;
        kv.append_range(seq, layer, pos, lo, &k[lo..hi], &v[lo..hi])
            .expect("KV append within capacity");

        // Per-head causal attention over the cache.
        let scale = 1.0 / (d as f32).sqrt();
        let mut attn_out = vec![0.0; h];
        for head in shard.head_lo..shard.head_hi {
            let hl = head * d;
            let q_h = &q[hl..hl + d];
            let mut scores = Vec::with_capacity(pos + 1);
            for p in 0..=pos {
                let k_p = &kv.key(seq, layer, p)[hl..hl + d];
                let dot: f32 = q_h.iter().zip(k_p).map(|(a, b)| a * b).sum();
                scores.push(dot * scale);
            }
            softmax(&mut scores);
            for (p, w) in scores.iter().enumerate() {
                let v_p = &kv.value(seq, layer, p)[hl..hl + d];
                for (o, &vv) in attn_out[hl..hl + d].iter_mut().zip(v_p) {
                    *o += w * vv;
                }
            }
        }

        // Output projection: rows outside the shard's dims are zero in
        // `attn_out`, and the matmul skips zero inputs, so this computes
        // exactly the shard's partial sum.
        Matrix::from_vec(1, h, attn_out).matmul(&lw.wo).data
    }

    /// FFN for the shard's columns: `relu(x·W1[:, lo..hi]) · W2[lo..hi, :]`.
    #[must_use]
    pub fn ffn_partial(&self, layer: usize, x_norm: &[f32], shard: Shard) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, x_norm.len(), x_norm.to_vec());
        let mut mid = x.matmul_cols(&lw.w1, shard.ffn_lo, shard.ffn_hi);
        relu(&mut mid);
        // Zero-pad to full FFN width; zero rows are skipped by matmul.
        let mut padded = vec![0.0; self.cfg.ffn];
        padded[shard.ffn_lo..shard.ffn_hi].copy_from_slice(&mid.data);
        Matrix::from_vec(1, self.cfg.ffn, padded)
            .matmul(&lw.w2)
            .data
    }

    /// Output logits from a final hidden state (tied embeddings).
    #[must_use]
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        let normed = layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &self.weights.lnf_scale,
            &self.weights.lnf_shift,
        );
        let mut out = vec![0.0; self.cfg.vocab];
        for (t, o) in out.iter_mut().enumerate() {
            *o = normed
                .row(0)
                .iter()
                .zip(self.weights.embed.row(t))
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }

    /// Embeds every batch row (token + learned position) into
    /// `scratch.x`, the `(m × hidden)` residual stream.
    ///
    /// # Panics
    ///
    /// Panics if any token or position is out of range.
    pub fn embed_rows(&self, rows: &[BatchRow], scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        scratch.x.resize(rows.len() * h, 0.0);
        for (i, row) in rows.iter().enumerate() {
            let t = row.token as usize;
            assert!(t < self.cfg.vocab, "token {t} out of vocab");
            assert!(
                row.pos < self.cfg.max_seq,
                "position {} past max_seq",
                row.pos
            );
            let out = &mut scratch.x[i * h..(i + 1) * h];
            for ((o, e), p) in out
                .iter_mut()
                .zip(self.weights.embed.row(t))
                .zip(self.weights.pos.row(row.pos))
            {
                *o = e + p;
            }
        }
    }

    /// Pre-attention LayerNorm of the whole batch: `scratch.x` →
    /// `scratch.normed`.
    pub fn ln1_batch(&self, layer: usize, m: usize, scratch: &mut Scratch) {
        let lw = &self.weights.layers[layer];
        let h = self.cfg.hidden;
        scratch.normed.resize(m * h, 0.0);
        layer_norm_into(
            &scratch.x[..m * h],
            m,
            &lw.ln1_scale,
            &lw.ln1_shift,
            &mut scratch.normed[..m * h],
        );
    }

    /// Pre-FFN LayerNorm of the whole batch: `scratch.x` →
    /// `scratch.normed`.
    pub fn ln2_batch(&self, layer: usize, m: usize, scratch: &mut Scratch) {
        let lw = &self.weights.layers[layer];
        let h = self.cfg.hidden;
        scratch.normed.resize(m * h, 0.0);
        layer_norm_into(
            &scratch.x[..m * h],
            m,
            &lw.ln2_scale,
            &lw.ln2_shift,
            &mut scratch.normed[..m * h],
        );
    }

    /// Batched attention for the shard's heads: one fused Q/K/V GEMM over
    /// all rows, shard-sliced KV appends, per-row causal attention read
    /// through a [`crate::kv::KvLayerView`], and the shard's slice of the
    /// output projection as one row-sliced GEMM. Reads `scratch.normed`,
    /// leaves the partial in `scratch.partial`.
    ///
    /// # Panics
    ///
    /// Panics if a KV append fails — the scheduler must admit within
    /// capacity.
    pub fn attn_batch(
        &self,
        layer: usize,
        rows: &[BatchRow],
        kv: &mut PagedKv,
        shard: Shard,
        scratch: &mut Scratch,
    ) {
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let m = rows.len();
        let pw = &self.packed.layers[layer];
        let lo = shard.head_lo * d;
        let hi = shard.head_hi * d;
        let width = hi - lo;

        // One GEMM for every row's Q, K and V.
        scratch.qkv.resize(m * 3 * h, 0.0);
        pw.wqkv
            .matmul_into(&scratch.normed[..m * h], m, &mut scratch.qkv[..m * 3 * h]);

        // Append each row's K/V (shard dims only) before any row attends:
        // within one batch a prefill row must see its predecessors' keys.
        for (i, row) in rows.iter().enumerate() {
            let qkv_row = &scratch.qkv[i * 3 * h..(i + 1) * 3 * h];
            let k = &qkv_row[h..2 * h];
            let v = &qkv_row[2 * h..3 * h];
            kv.append_range(row.seq, layer, row.pos, lo, &k[lo..hi], &v[lo..hi])
                .expect("KV append within capacity");
        }

        // Causal attention per row, reading the cache through a
        // per-sequence layer view (block table resolved once per row).
        // Scores are stored position-major (`scores[p * heads + hd]`) so
        // softmax and the weighted-V pass vectorize across the
        // independent heads; the score pass reads the cache's dim-major
        // transposed key panels and vectorizes across a block of
        // positions at a time. Per head every reduction still runs in
        // the reference path's order (dims ascending for each dot,
        // positions ascending for softmax sums and V accumulation), so
        // outputs stay bit-identical.
        let scale = 1.0 / (d as f32).sqrt();
        let heads = shard.head_hi - shard.head_lo;
        scratch.attn.resize(m * width, 0.0);
        scratch.attn.fill(0.0);
        for (i, row) in rows.iter().enumerate() {
            let view = kv.layer_view(row.seq, layer);
            let ctx = row.pos + 1;
            let bs = view.block_size();
            let q_s = &scratch.qkv[i * 3 * h + lo..i * 3 * h + hi];
            scratch.scores.resize(ctx * heads, 0.0);
            // Score pass: per head, dims accumulate in ascending order
            // (the reference dot's order) while each FMA spans the
            // block's whole position range. The standard block size gets
            // the monomorphized kernel whose accumulators stay in
            // registers across the dim loop.
            if bs == 16 {
                score_panels::<16>(&view, ctx, q_s, lo, d, heads, scale, &mut scratch.scores);
            } else {
                scratch.acc.resize(bs, 0.0);
                let mut base_p = 0;
                for panel in view.key_panels(ctx) {
                    let take = (ctx - base_p).min(bs);
                    for hd in 0..heads {
                        let acc = &mut scratch.acc[..bs];
                        acc.fill(0.0);
                        for (l, &q) in q_s[hd * d..(hd + 1) * d].iter().enumerate() {
                            let dim_row = &panel[(lo + hd * d + l) * bs..][..bs];
                            for (a, &kv) in acc.iter_mut().zip(dim_row) {
                                *a += q * kv;
                            }
                        }
                        for (s, &a) in acc[..take].iter().enumerate() {
                            scratch.scores[(base_p + s) * heads + hd] = a * scale;
                        }
                    }
                    base_p += take;
                }
            }
            softmax_cols(
                &mut scratch.scores[..ctx * heads],
                ctx,
                heads,
                &mut scratch.sm_tmp,
            );
            // Weighted-V pass: per position, each head's broadcast weight
            // times its `d`-float V chunk, weights read contiguously from
            // the position-major scores. Each output element accumulates
            // over positions in ascending order. Common shard shapes get
            // the monomorphized kernel that carries the whole output row
            // in registers across the position loop.
            let out_row = &mut scratch.attn[i * width..(i + 1) * width];
            let scores = &scratch.scores;
            match (d, width) {
                (8, 64) => weighted_v::<64, 8>(&view, ctx, h, lo, scores, out_row),
                (8, 32) => weighted_v::<32, 8>(&view, ctx, h, lo, scores, out_row),
                (8, 16) => weighted_v::<16, 8>(&view, ctx, h, lo, scores, out_row),
                (8, 8) => weighted_v::<8, 8>(&view, ctx, h, lo, scores, out_row),
                _ => {
                    for (p, v_p) in view.values(ctx).enumerate() {
                        let w_row = &scores[p * heads..(p + 1) * heads];
                        let v_s = &v_p[lo..hi];
                        for ((out_c, v_c), &w) in out_row
                            .chunks_exact_mut(d)
                            .zip(v_s.chunks_exact(d))
                            .zip(w_row)
                        {
                            for (o, &vv) in out_c.iter_mut().zip(v_c) {
                                *o += w * vv;
                            }
                        }
                    }
                }
            }
        }

        // Output projection: only the shard's rows of W_O, fed by the
        // tight shard-width context (no zero padding).
        scratch.partial.resize(m * h, 0.0);
        pw.wo.matmul_rows_into(
            &scratch.attn[..m * width],
            m,
            lo,
            hi,
            &mut scratch.partial[..m * h],
        );
    }

    /// Batched FFN for the shard's columns:
    /// `relu(normed · W1[:, lo..hi]) · W2[lo..hi, :]` as two sliced GEMMs.
    /// Reads `scratch.normed`, leaves the partial in `scratch.partial`.
    pub fn ffn_batch(&self, layer: usize, m: usize, shard: Shard, scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        let pw = &self.packed.layers[layer];
        let fw = shard.ffn_hi - shard.ffn_lo;
        scratch.mid.resize(m * fw, 0.0);
        pw.w1.matmul_cols_into(
            &scratch.normed[..m * h],
            m,
            shard.ffn_lo,
            shard.ffn_hi,
            &mut scratch.mid[..m * fw],
        );
        relu_slice(&mut scratch.mid[..m * fw]);
        scratch.partial.resize(m * h, 0.0);
        pw.w2.matmul_rows_into(
            &scratch.mid[..m * fw],
            m,
            shard.ffn_lo,
            shard.ffn_hi,
            &mut scratch.partial[..m * h],
        );
    }

    /// Adds the current `scratch.partial` into the residual stream — the
    /// single-shard stand-in for the tensor-parallel all-reduce.
    pub fn add_partial(&self, m: usize, scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        for (xi, p) in scratch.x[..m * h].iter_mut().zip(&scratch.partial[..m * h]) {
            *xi += p;
        }
    }

    /// Full (single-shard) batched forward pass: every row of `rows`
    /// through all layers, final hidden states left in `scratch.x`.
    /// Serves both batched prefill (a whole prompt as one activation
    /// matrix) and fused decode (one row per active sequence); logits are
    /// *not* computed here — call [`Model::logits_batch`] on the rows
    /// that need them.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range tokens/positions or KV append failure.
    pub fn forward_batch(&self, rows: &[BatchRow], kv: &mut PagedKv, scratch: &mut Scratch) {
        if rows.is_empty() {
            scratch.x.clear();
            return;
        }
        let shard = Shard::full(&self.cfg);
        let m = rows.len();
        self.embed_rows(rows, scratch);
        for layer in 0..self.cfg.layers {
            self.ln1_batch(layer, m, scratch);
            self.attn_batch(layer, rows, kv, shard, scratch);
            self.add_partial(m, scratch);
            self.ln2_batch(layer, m, scratch);
            self.ffn_batch(layer, m, shard, scratch);
            self.add_partial(m, scratch);
        }
    }

    /// Logits for the selected rows of the last [`Model::forward_batch`]:
    /// final LayerNorm plus one `(picks × vocab)` GEMM against the
    /// pre-transposed embedding. Results are read back with
    /// [`Scratch::logits_row`]. Prefill only pays for the rows it needs
    /// (each prompt's last position) instead of projecting every token.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for the forwarded batch.
    pub fn logits_batch(&self, picks: &[usize], scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        let r = picks.len();
        scratch.sel.resize(r * h, 0.0);
        for (j, &i) in picks.iter().enumerate() {
            let src = &scratch.x[i * h..(i + 1) * h];
            scratch.sel[j * h..(j + 1) * h].copy_from_slice(src);
        }
        scratch.normed.resize(r * h, 0.0);
        layer_norm_into(
            &scratch.sel[..r * h],
            r,
            &self.weights.lnf_scale,
            &self.weights.lnf_shift,
            &mut scratch.normed[..r * h],
        );
        let vocab = self.cfg.vocab;
        scratch.logits.resize(r * vocab, 0.0);
        scratch.logits_width = vocab;
        self.packed.embed_t.matmul_into(
            &scratch.normed[..r * h],
            r,
            &mut scratch.logits[..r * vocab],
        );
    }

    /// Full (single-shard) forward pass of one token, returning logits.
    #[must_use]
    pub fn forward_token(&self, seq: SeqId, pos: usize, token: u32, kv: &mut PagedKv) -> Vec<f32> {
        let shard = Shard::full(&self.cfg);
        let mut x = self.embed_token(token, pos);
        for layer in 0..self.cfg.layers {
            let xa = self.ln1(layer, &x);
            let attn = self.attn_partial(layer, &xa, seq, pos, kv, shard);
            for (xi, a) in x.iter_mut().zip(&attn) {
                *xi += a;
            }
            let xf = self.ln2(layer, &x);
            let ffn = self.ffn_partial(layer, &xf, shard);
            for (xi, f) in x.iter_mut().zip(&ffn) {
                *xi += f;
            }
        }
        self.logits(&x)
    }

    /// Builds a KV pool sized for `max_tokens` total positions.
    #[must_use]
    pub fn make_kv(&self, max_tokens: usize, block_size: usize) -> PagedKv {
        let blocks = max_tokens.div_ceil(block_size).max(1);
        PagedKv::new(self.cfg.layers, self.cfg.hidden, block_size, blocks)
    }

    /// Greedy generation: prefills `prompt` and emits `max_new` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate(&self, prompt: &[u32], max_new: usize) -> Vec<u32> {
        self.generate_with(
            prompt,
            max_new,
            &mut crate::sampling::Sampler::new(crate::sampling::Sampling::Greedy, 0),
        )
    }

    /// Generation with an explicit sampling strategy (§5: the frontend
    /// exposes sampling parameters such as temperature).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate_with(
        &self,
        prompt: &[u32],
        max_new: usize,
        sampler: &mut crate::sampling::Sampler,
    ) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + max_new <= self.cfg.max_seq,
            "sequence exceeds max_seq"
        );
        let mut kv = self.make_kv(prompt.len() + max_new, 16);
        kv.register(0);
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            logits = self.forward_token(0, pos, tok, &mut kv);
        }
        let mut out = Vec::with_capacity(max_new);
        for pos in prompt.len()..prompt.len() + max_new {
            let next = sampler.sample(&logits);
            out.push(next);
            if out.len() == max_new {
                break;
            }
            logits = self.forward_token(0, pos, next, &mut kv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::random(&TinyConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[1, 2, 3], 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&t| (t as usize) < m.config().vocab));
    }

    #[test]
    fn different_prompts_differ() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[4, 5, 6], 8);
        assert_ne!(a, b, "distinct prompts should diverge");
    }

    #[test]
    fn kv_reuse_equals_recompute() {
        // Incremental decoding with the cache must equal a from-scratch
        // forward over the whole prefix — the KV cache's core invariant.
        let m = model();
        let seq: Vec<u32> = vec![5, 9, 2, 7];

        // Incremental: feed tokens one at a time into one cache.
        let mut kv = m.make_kv(16, 4);
        kv.register(0);
        let mut logits_inc = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_inc = m.forward_token(0, pos, t, &mut kv);
        }

        // From scratch with a fresh cache (same computation order).
        let mut kv2 = m.make_kv(16, 16);
        kv2.register(0);
        let mut logits_fresh = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_fresh = m.forward_token(0, pos, t, &mut kv2);
        }
        for (a, b) in logits_inc.iter().zip(&logits_fresh) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sharded_sums_equal_full() {
        // The TP decomposition: attention and FFN partials summed over
        // shards must equal the full-shard result.
        let m = model();
        let cfg = m.config().clone();
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.1).sin()).collect();
        let xa = m.ln1(0, &x);

        // Full reference (its own cache).
        let mut kv_full = m.make_kv(8, 8);
        kv_full.register(0);
        let full = m.attn_partial(0, &xa, 0, 0, &mut kv_full, Shard::full(&cfg));

        // Two shards, each with its own cache copy.
        let mut sum = vec![0.0; cfg.hidden];
        for rank in 0..2 {
            let mut kv_s = m.make_kv(8, 8);
            kv_s.register(0);
            let part = m.attn_partial(0, &xa, 0, 0, &mut kv_s, Shard::of(&cfg, rank, 2));
            for (s, p) in sum.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full.iter().zip(&sum) {
            assert!((a - b).abs() < 1e-5, "attention: {a} vs {b}");
        }

        // FFN likewise.
        let xf = m.ln2(0, &x);
        let full_ffn = m.ffn_partial(0, &xf, Shard::full(&cfg));
        let mut sum_ffn = vec![0.0; cfg.hidden];
        for rank in 0..4 {
            let part = m.ffn_partial(0, &xf, Shard::of(&cfg, rank, 4));
            for (s, p) in sum_ffn.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            assert!((a - b).abs() < 1e-5, "ffn: {a} vs {b}");
        }
    }

    #[test]
    fn batched_prefill_bit_matches_reference() {
        // The whole prompt as one activation matrix must produce exactly
        // the reference token-at-a-time logits — same float ops in the
        // same order, not merely close.
        let m = model();
        let prompt = [7u32, 3, 11, 4, 9];

        let mut kv_ref = m.make_kv(32, 4);
        kv_ref.register(0);
        let mut ref_logits = Vec::new();
        for (pos, &t) in prompt.iter().enumerate() {
            ref_logits = m.forward_token(0, pos, t, &mut kv_ref);
        }

        let mut kv_b = m.make_kv(32, 4);
        kv_b.register(0);
        let rows: Vec<BatchRow> = prompt
            .iter()
            .enumerate()
            .map(|(pos, &token)| BatchRow { seq: 0, pos, token })
            .collect();
        let mut scratch = Scratch::new();
        m.forward_batch(&rows, &mut kv_b, &mut scratch);
        m.logits_batch(&[prompt.len() - 1], &mut scratch);
        assert_eq!(scratch.logits_row(0), &ref_logits[..]);
    }

    #[test]
    fn fused_decode_bit_matches_reference() {
        // Several sequences decoding as one stacked batch must equal each
        // sequence decoded alone.
        let m = model();
        let prompts: [&[u32]; 3] = [&[1, 2, 3], &[9, 8], &[4, 4, 4, 4]];

        // Reference: each sequence in its own cache, token at a time.
        let mut ref_logits = Vec::new();
        for prompt in prompts {
            let mut kv = m.make_kv(16, 4);
            kv.register(0);
            let mut logits = Vec::new();
            for (pos, &t) in prompt.iter().enumerate() {
                logits = m.forward_token(0, pos, t, &mut kv);
            }
            let next = crate::tensor::argmax(&logits) as u32;
            let logits = m.forward_token(0, prompt.len(), next, &mut kv);
            ref_logits.push(logits);
        }

        // Batched: shared cache, prefill each prompt, then one fused
        // decode step over all three sequences.
        let mut kv = m.make_kv(64, 4);
        let mut scratch = Scratch::new();
        let mut decode_rows = Vec::new();
        for (s, prompt) in prompts.iter().enumerate() {
            let seq = s as SeqId;
            kv.register(seq);
            let rows: Vec<BatchRow> = prompt
                .iter()
                .enumerate()
                .map(|(pos, &token)| BatchRow { seq, pos, token })
                .collect();
            m.forward_batch(&rows, &mut kv, &mut scratch);
            m.logits_batch(&[prompt.len() - 1], &mut scratch);
            let next = crate::tensor::argmax(scratch.logits_row(0)) as u32;
            decode_rows.push(BatchRow {
                seq,
                pos: prompt.len(),
                token: next,
            });
        }
        m.forward_batch(&decode_rows, &mut kv, &mut scratch);
        m.logits_batch(&[0, 1, 2], &mut scratch);
        for (i, expect) in ref_logits.iter().enumerate() {
            assert_eq!(scratch.logits_row(i), &expect[..], "sequence {i}");
        }
    }

    #[test]
    fn sharded_batch_partials_sum_to_full() {
        // attn_batch/ffn_batch over proper shards must sum to the full
        // shard's partial (the all-reduce invariant, batch tier).
        let m = model();
        let cfg = m.config().clone();
        let rows = [
            BatchRow {
                seq: 0,
                pos: 0,
                token: 3,
            },
            BatchRow {
                seq: 0,
                pos: 1,
                token: 8,
            },
        ];
        let mh = rows.len() * cfg.hidden;

        let mut kv_full = m.make_kv(8, 8);
        kv_full.register(0);
        let mut s_full = Scratch::new();
        m.embed_rows(&rows, &mut s_full);
        m.ln1_batch(0, rows.len(), &mut s_full);
        m.attn_batch(0, &rows, &mut kv_full, Shard::full(&cfg), &mut s_full);
        let full_attn = s_full.partial.clone();
        m.ffn_batch(0, rows.len(), Shard::full(&cfg), &mut s_full);
        let full_ffn = s_full.partial.clone();

        let mut sum_attn = vec![0.0; mh];
        let mut sum_ffn = vec![0.0; mh];
        for rank in 0..2 {
            let shard = Shard::of(&cfg, rank, 2);
            let mut kv_s = m.make_kv(8, 8);
            kv_s.register(0);
            let mut s = Scratch::new();
            m.embed_rows(&rows, &mut s);
            m.ln1_batch(0, rows.len(), &mut s);
            m.attn_batch(0, &rows, &mut kv_s, shard, &mut s);
            for (a, p) in sum_attn.iter_mut().zip(&s.partial) {
                *a += p;
            }
            m.ffn_batch(0, rows.len(), shard, &mut s);
            for (a, p) in sum_ffn.iter_mut().zip(&s.partial) {
                *a += p;
            }
        }
        for (a, b) in full_attn.iter().zip(&sum_attn) {
            assert!((a - b).abs() < 1e-5, "attention: {a} vs {b}");
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            assert!((a - b).abs() < 1e-5, "ffn: {a} vs {b}");
        }
    }

    #[test]
    fn attention_attends_to_context() {
        // The logits at the last position must depend on earlier tokens,
        // not just the final one.
        let m = model();
        let a = m.generate(&[1, 2, 9], 1);
        let b = m.generate(&[7, 2, 9], 1);
        // Same final token, different context → (almost surely) different
        // continuation under random weights.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn overlong_generation_rejected() {
        let m = model();
        let prompt = vec![0u32; 200];
        let _ = m.generate(&prompt, 100); // 300 > max_seq 256.
    }

    #[test]
    fn shard_partition_covers_everything() {
        let cfg = TinyConfig::tiny();
        let s0 = Shard::of(&cfg, 0, 4);
        let s3 = Shard::of(&cfg, 3, 4);
        assert_eq!(s0.head_lo, 0);
        assert_eq!(s3.head_hi, cfg.heads);
        assert_eq!(s3.ffn_hi, cfg.ffn);
    }
}
