//! The forward pass: an OPT-style decoder reading a paged KV cache.
//!
//! The layer computation is factored into *partial* pieces parameterized
//! by a [`Shard`] (a head range plus an FFN column range) so the same
//! code runs single-threaded (the full shard) and tensor-parallel (each
//! worker a proper shard, summing partials — the all-reduce). This
//! mirrors Megatron-style intra-operator parallelism (§2.2).
//!
//! Two execution tiers share the weights. [`Model::forward_token`] is the
//! token-at-a-time *reference* path, written for readability. The *batch*
//! path ([`Model::forward_batch`] plus the `*_batch` layer pieces) stacks
//! many rows — a whole prompt in prefill, one row per active sequence in
//! fused decode — into single GEMMs over pre-packed weights
//! ([`PackedMatrix`]), reusing one [`Scratch`] arena across steps so the
//! hot loop never allocates. The batch kernels accumulate in the same
//! per-element order as the reference, so both tiers produce identical
//! tokens (the scheduler tests assert exact equality).

use std::sync::Arc;

use crate::kv::{KvLayerView, PagedKv, SeqId};
use crate::model::{ComputeConfig, Precision, TinyConfig, Weights};
use crate::pool::WorkerPool;
use crate::tensor::{
    exp_fast, layer_norm, layer_norm_into, relu, relu_slice, Kernel, Matrix, PackedMatrix,
    QuantMatrix,
};

/// A tensor-parallel shard: which heads and FFN columns this worker owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First owned attention head.
    pub head_lo: usize,
    /// One past the last owned head.
    pub head_hi: usize,
    /// First owned FFN column.
    pub ffn_lo: usize,
    /// One past the last owned FFN column.
    pub ffn_hi: usize,
}

impl Shard {
    /// The whole model (single-device execution).
    #[must_use]
    pub fn full(cfg: &TinyConfig) -> Self {
        Shard {
            head_lo: 0,
            head_hi: cfg.heads,
            ffn_lo: 0,
            ffn_hi: cfg.ffn,
        }
    }

    /// The `rank`-th of `world` equal shards.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides both the head count and FFN width
    /// and `rank < world`.
    #[must_use]
    pub fn of(cfg: &TinyConfig, rank: usize, world: usize) -> Self {
        assert!(rank < world, "rank {rank} out of {world}");
        assert_eq!(cfg.heads % world, 0, "heads % world != 0");
        assert_eq!(cfg.ffn % world, 0, "ffn % world != 0");
        let hpw = cfg.heads / world;
        let fpw = cfg.ffn / world;
        Shard {
            head_lo: rank * hpw,
            head_hi: (rank + 1) * hpw,
            ffn_lo: rank * fpw,
            ffn_hi: (rank + 1) * fpw,
        }
    }
}

/// One row of a batched forward pass: a token of some sequence at some
/// position. Prefill stacks a prompt's rows (same `seq`, ascending
/// `pos`); fused decode stacks one row per active sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRow {
    /// Sequence the row belongs to.
    pub seq: SeqId,
    /// Position within the sequence.
    pub pos: usize,
    /// Input token at that position.
    pub token: u32,
}

/// Per-layer weights re-packed for the blocked kernels (built once at
/// model construction). Each projection is a [`Kernel`] — f32 packed or
/// int8 quantized, chosen by the model's [`Precision`].
#[derive(Debug, Clone)]
struct PackedLayer {
    wqkv: Kernel,
    wo: Kernel,
    w1: Kernel,
    w2: Kernel,
}

/// All packed weights: the per-layer projections plus the transposed
/// embedding (`hidden × vocab`) so tied-embedding logits are one GEMM.
/// The logits projection stays f32 at every precision: it feeds argmax
/// directly, where quantization noise would flip tokens rather than
/// merely perturb activations.
#[derive(Debug, Clone)]
struct PackedWeights {
    layers: Vec<PackedLayer>,
    embed_t: Kernel,
}

impl PackedWeights {
    fn build(w: &Weights, precision: Precision) -> Self {
        let kernel = |m: &Matrix| match precision {
            Precision::F32 => Kernel::F32(PackedMatrix::pack(m)),
            Precision::Int8 => Kernel::Int8(QuantMatrix::quantize(m)),
        };
        PackedWeights {
            layers: w
                .layers
                .iter()
                .map(|lw| PackedLayer {
                    wqkv: kernel(&lw.wqkv),
                    wo: kernel(&lw.wo),
                    w1: kernel(&lw.w1),
                    w2: kernel(&lw.w2),
                })
                .collect(),
            embed_t: Kernel::F32(PackedMatrix::pack_transposed(&w.embed)),
        }
    }
}

/// Reusable buffers for the batch path. One arena serves every step of a
/// scheduler or generation loop; buffers are resized (never reallocated
/// once at steady state) and fully overwritten by each kernel.
#[derive(Debug, Default)]
pub struct Scratch {
    /// `(m × hidden)` residual stream.
    pub(crate) x: Vec<f32>,
    /// `(m × hidden)` LayerNorm output.
    pub(crate) normed: Vec<f32>,
    /// `(m × 3·hidden)` fused Q/K/V projection.
    qkv: Vec<f32>,
    /// `(m × shard head dims)` attention context, shard slice only.
    attn: Vec<f32>,
    /// `(m × hidden)` projection partial (attention or FFN output).
    pub(crate) partial: Vec<f32>,
    /// `(m × shard FFN width)` FFN mid activation.
    mid: Vec<f32>,
    /// Per-row fused-attention temporaries (one block of scores plus
    /// per-head running max/normalizer — `O(block_size × heads)`, not
    /// `O(context × heads)`).
    attn_scr: AttnScratch,
    /// Selected rows gathered for the logits projection.
    sel: Vec<f32>,
    /// `(picks × vocab)` logits of the selected rows.
    logits: Vec<f32>,
    /// Row width of `logits` (the vocab size), set by `logits_batch`.
    logits_width: usize,
}

impl Scratch {
    /// An empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }

    /// The logits row for the `i`-th selected index of the last
    /// [`Model::logits_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for that call.
    #[must_use]
    pub fn logits_row(&self, i: usize) -> &[f32] {
        let w = self.logits_width;
        &self.logits[i * w..(i + 1) * w]
    }
}

/// Per-row temporaries of the fused attention kernel: one *block* of
/// scores (head-major, `block_size` per head) plus per-head running max
/// and normalizer. Memory is `O(block_size × heads)` regardless of
/// context length — the full `O(context × heads)` position-major score
/// matrix of the pre-fused path is never materialized.
#[derive(Debug, Default)]
pub(crate) struct AttnScratch {
    /// Head-major block scores, `heads × block_size`; overwritten in
    /// place with `exp(score − m_new)` during the online update.
    sb: Vec<f32>,
    /// Running per-head maximum.
    m: Vec<f32>,
    /// Running per-head normalizer (sum of exponentials, rescaled).
    l: Vec<f32>,
}

/// Staged inputs for farming fused-attention rows out to pool workers:
/// everything a worker needs to rebuild a [`KvLayerView`] and run rows
/// independently, owned (or `Arc`-shared) so jobs are `'static`.
#[derive(Debug, Default)]
pub(crate) struct AttnStage {
    /// Each row's query slice for the shard, `m × (heads · d)`.
    pub(crate) q: Vec<f32>,
    /// Per row: `(ctx, block range into blocks)`.
    pub(crate) rows: Vec<(usize, usize, usize)>,
    /// Flattened per-row block tables.
    pub(crate) blocks: Vec<usize>,
    /// Head dimension.
    pub(crate) d: usize,
    /// Shard head count.
    pub(crate) heads: usize,
    /// Shard dim offset into hidden.
    pub(crate) lo: usize,
    /// Model hidden size.
    pub(crate) hidden: usize,
    /// Cache positions per block.
    pub(crate) block_size: usize,
    /// Floats per block across all layers.
    pub(crate) block_floats: usize,
    /// Float offset of this layer within a block.
    pub(crate) layer_base: usize,
    /// `1 / sqrt(d)`.
    pub(crate) scale: f32,
}

/// Runs fused attention for staged rows `row_lo..row_hi`, writing each
/// row's `(heads · d)` context vector densely into `out`. Called on pool
/// workers (strip destination) and on the dispatching thread (prefix of
/// the real destination) — identical math either way.
pub(crate) fn attn_rows_strip(
    stage: &AttnStage,
    storage: &[f32],
    row_lo: usize,
    row_hi: usize,
    scr: &mut AttnScratch,
    out: &mut [f32],
) {
    let _prof = distserve_prof::scope("fused_attn_rows");
    let width = stage.heads * stage.d;
    for r in row_lo..row_hi {
        let (ctx, blk_lo, blk_hi) = stage.rows[r];
        let view = KvLayerView::from_parts(
            storage,
            &stage.blocks[blk_lo..blk_hi],
            ctx,
            stage.block_size,
            stage.hidden,
            stage.block_floats,
            stage.layer_base,
        );
        let q_s = &stage.q[r * width..(r + 1) * width];
        let out_row = &mut out[(r - row_lo) * width..(r - row_lo + 1) * width];
        fused_attn_row(
            &view,
            ctx,
            q_s,
            stage.lo,
            stage.d,
            stage.heads,
            stage.scale,
            stage.hidden,
            scr,
            out_row,
        );
    }
}

/// One row of flash-style fused attention: a single pass over the KV
/// blocks computes scores, the online softmax (running max `m`, running
/// normalizer `l`, rescale factor `exp(m_old − m_new)`), and the value
/// accumulation — no materialized `context × heads` score matrix.
///
/// Block-online association is the *defining* numeric order for
/// attention in this crate: the token-at-a-time reference
/// ([`Model::attn_partial`]) applies the same recurrence per chunk of
/// `block_size` positions, so both tiers stay bit-identical. The rescale
/// multiply is exact when the max is unchanged (`exp_fast(0) == 1.0`),
/// and harmless at the start (`exp_fast(−inf)` is a subnormal scale on
/// zero-valued accumulators).
///
/// Dispatches to a width-monomorphized kernel for the standard shapes
/// (`d == 8`, block size 16); the generic path handles everything else
/// with identical operations in identical order.
#[allow(clippy::too_many_arguments)]
fn fused_attn_row(
    view: &KvLayerView<'_>,
    ctx: usize,
    q_s: &[f32],
    lo: usize,
    d: usize,
    heads: usize,
    scale: f32,
    h: usize,
    scr: &mut AttnScratch,
    out_row: &mut [f32],
) {
    let bs = view.block_size();
    scr.sb.resize(bs * heads, 0.0);
    if bs == 16 && d == 8 {
        match heads * d {
            64 => {
                return fused_attn_row_w::<64, 8>(
                    view,
                    ctx,
                    q_s,
                    lo,
                    h,
                    scale,
                    &mut scr.sb,
                    out_row,
                )
            }
            32 => {
                return fused_attn_row_w::<32, 8>(
                    view,
                    ctx,
                    q_s,
                    lo,
                    h,
                    scale,
                    &mut scr.sb,
                    out_row,
                )
            }
            16 => {
                return fused_attn_row_w::<16, 8>(
                    view,
                    ctx,
                    q_s,
                    lo,
                    h,
                    scale,
                    &mut scr.sb,
                    out_row,
                )
            }
            8 => {
                return fused_attn_row_w::<8, 8>(view, ctx, q_s, lo, h, scale, &mut scr.sb, out_row)
            }
            _ => {}
        }
    }
    scr.m.resize(heads, 0.0);
    scr.m.fill(f32::NEG_INFINITY);
    scr.l.resize(heads, 0.0);
    scr.l.fill(0.0);
    out_row.fill(0.0);
    for (panel, (region, take)) in view.key_panels(ctx).zip(view.slot_regions(ctx)) {
        for hd in 0..heads {
            // Block scores for this head: `bs` accumulators sweep the
            // dims in ascending order (the reference dot's order), one
            // FMA across the whole block per dim. Panel columns past
            // `take` hold garbage and are never read below.
            let row = &mut scr.sb[hd * bs..(hd + 1) * bs];
            row.fill(0.0);
            for (l, &q) in q_s[hd * d..(hd + 1) * d].iter().enumerate() {
                let dim_row = &panel[(lo + hd * d + l) * bs..][..bs];
                for (a, &kv) in row.iter_mut().zip(dim_row) {
                    *a += q * kv;
                }
            }
            for v in row.iter_mut() {
                *v *= scale;
            }
            // Online softmax update for the block.
            let mut bm = f32::NEG_INFINITY;
            for &v in &row[..take] {
                bm = bm.max(v);
            }
            let m_new = scr.m[hd].max(bm);
            let c = exp_fast(scr.m[hd] - m_new);
            let mut l = scr.l[hd] * c;
            for a in out_row[hd * d..(hd + 1) * d].iter_mut() {
                *a *= c;
            }
            for v in row[..take].iter_mut() {
                let e = exp_fast(*v - m_new);
                *v = e;
                l += e;
            }
            scr.m[hd] = m_new;
            scr.l[hd] = l;
        }
        // Unnormalized value accumulation: positions ascending, each
        // head's broadcast weight times its `d`-float V chunk.
        for s in 0..take {
            let v_s = &region[s * 2 * h + h..s * 2 * h + 2 * h];
            for hd in 0..heads {
                let w = scr.sb[hd * bs + s];
                for (a, &vv) in out_row[hd * d..(hd + 1) * d]
                    .iter_mut()
                    .zip(&v_s[lo + hd * d..lo + (hd + 1) * d])
                {
                    *a += w * vv;
                }
            }
        }
    }
    for hd in 0..heads {
        let l = scr.l[hd];
        for a in out_row[hd * d..(hd + 1) * d].iter_mut() {
            *a /= l;
        }
    }
}

/// [`fused_attn_row`] monomorphized for a `W`-float shard of `D`-dim
/// heads over block-size-16 panels: the value accumulator (and running
/// max/normalizer) live in registers across the whole context sweep,
/// and the inner loops are straight lines of const-indexed FMAs. Same
/// operations in the same order as the generic path — bit-identical.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn fused_attn_row_w<const W: usize, const D: usize>(
    view: &KvLayerView<'_>,
    ctx: usize,
    q_s: &[f32],
    lo: usize,
    h: usize,
    scale: f32,
    sb: &mut [f32],
    out_row: &mut [f32],
) {
    const BS: usize = 16;
    let heads = W / D;
    let mut acc = [0.0f32; W];
    // Per-head running state; only the first `heads` entries are live
    // (`[f32; W / D]` is not expressible on stable const generics).
    let mut mr = [f32::NEG_INFINITY; W];
    let mut lr = [0.0f32; W];
    for (panel, (region, take)) in view.key_panels(ctx).zip(view.slot_regions(ctx)) {
        for hd in 0..heads {
            let mut sa = [0.0f32; BS];
            for (l, &q) in q_s[hd * D..(hd + 1) * D].iter().enumerate() {
                let dim_row: &[f32; BS] = panel[(lo + hd * D + l) * BS..][..BS]
                    .try_into()
                    .expect("BS-wide panel row");
                for (a, &kv) in sa.iter_mut().zip(dim_row) {
                    *a += q * kv;
                }
            }
            let row = &mut sb[hd * BS..(hd + 1) * BS];
            for (dst, &a) in row.iter_mut().zip(&sa) {
                *dst = a * scale;
            }
            let mut bm = f32::NEG_INFINITY;
            for &v in &row[..take] {
                bm = bm.max(v);
            }
            let m_new = mr[hd].max(bm);
            let c = exp_fast(mr[hd] - m_new);
            let mut l = lr[hd] * c;
            for a in acc[hd * D..(hd + 1) * D].iter_mut() {
                *a *= c;
            }
            for v in row[..take].iter_mut() {
                let e = exp_fast(*v - m_new);
                *v = e;
                l += e;
            }
            mr[hd] = m_new;
            lr[hd] = l;
        }
        for s in 0..take {
            let v_s: &[f32; W] = region[s * 2 * h + h + lo..][..W]
                .try_into()
                .expect("W-wide V slice");
            for hd in 0..heads {
                let w = sb[hd * BS + s];
                for l in 0..D {
                    acc[hd * D + l] += w * v_s[hd * D + l];
                }
            }
        }
    }
    for hd in 0..heads {
        let l = lr[hd];
        for i in 0..D {
            out_row[hd * D + i] = acc[hd * D + i] / l;
        }
    }
}

/// A transformer model with weights, ready for inference.
///
/// Cloning is cheap: the raw weights live behind an `Arc` and the clone
/// shares the original's persistent [`WorkerPool`], so tensor-parallel
/// ranks and schedulers can hold their own handles without duplicating
/// parameters or threads.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: TinyConfig,
    weights: Arc<Weights>,
    packed: PackedWeights,
    pool: Arc<WorkerPool>,
    precision: Precision,
}

impl Model {
    /// Builds a model with deterministic random weights and the default
    /// compute configuration (f32, auto thread count).
    #[must_use]
    pub fn random(cfg: &TinyConfig, seed: u64) -> Self {
        Model::random_with(cfg, seed, ComputeConfig::default())
    }

    /// Builds a model with deterministic random weights and an explicit
    /// [`ComputeConfig`]: weight precision (quantization happens here, at
    /// load) and worker-pool width (the pool is spawned once, per model,
    /// not per call).
    #[must_use]
    pub fn random_with(cfg: &TinyConfig, seed: u64, compute: ComputeConfig) -> Self {
        let weights = Arc::new(Weights::random(cfg, seed));
        let packed = PackedWeights::build(&weights, compute.precision);
        Model {
            cfg: cfg.clone(),
            weights,
            packed,
            pool: Arc::new(WorkerPool::new(compute.resolved_threads())),
            precision: compute.precision,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TinyConfig {
        &self.cfg
    }

    /// Compute threads (worker-pool lanes, including the caller's).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.lanes()
    }

    /// Busy/idle/dispatch-wait accounting of the model's worker pool
    /// (shared by all clones of this model).
    #[must_use]
    pub fn pool_utilization(&self) -> crate::pool::PoolUtilization {
        self.pool.utilization()
    }

    /// Weight precision of the packed kernels.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The model's persistent worker pool.
    pub(crate) fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Token plus learned position embedding.
    ///
    /// # Panics
    ///
    /// Panics if the token or position is out of range.
    #[must_use]
    pub fn embed_token(&self, token: u32, pos: usize) -> Vec<f32> {
        let t = token as usize;
        assert!(t < self.cfg.vocab, "token {t} out of vocab");
        assert!(pos < self.cfg.max_seq, "position {pos} past max_seq");
        self.weights
            .embed
            .row(t)
            .iter()
            .zip(self.weights.pos.row(pos))
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Pre-attention LayerNorm.
    #[must_use]
    pub fn ln1(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln1_scale,
            &lw.ln1_shift,
        )
        .data
    }

    /// Pre-FFN LayerNorm.
    #[must_use]
    pub fn ln2(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &lw.ln2_scale,
            &lw.ln2_shift,
        )
        .data
    }

    /// Attention for the shard's heads at `(seq, pos)`: projects Q/K/V,
    /// appends this position's K/V (shard's head slice only) to the cache,
    /// attends causally over positions `0..=pos`, and applies the shard's
    /// slice of the output projection. Summing all shards' results gives
    /// the layer's attention output (the all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if the KV append fails (pool exhausted or sequence not
    /// registered) — the scheduler must admit within capacity.
    #[must_use]
    pub fn attn_partial(
        &self,
        layer: usize,
        x_norm: &[f32],
        seq: SeqId,
        pos: usize,
        kv: &mut PagedKv,
        shard: Shard,
    ) -> Vec<f32> {
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, h, x_norm.to_vec());
        let qkv = x.matmul(&lw.wqkv);
        let (q, rest) = qkv.data.split_at(h);
        let (k, v) = rest.split_at(h);

        // Write this position's K/V: only the shard's head slice — the
        // dims this worker will read back. Other dims are other shards'
        // business (each worker owns a cache copy).
        let lo = shard.head_lo * d;
        let hi = shard.head_hi * d;
        kv.append_range(seq, layer, pos, lo, &k[lo..hi], &v[lo..hi])
            .expect("KV append within capacity");

        // Per-head causal attention over the cache, evaluated with the
        // *block-online* softmax recurrence: positions are visited in
        // chunks of the cache's block size, each chunk updating a running
        // max `m`, normalizer `l` (rescaled by `exp(m_old − m_new)`), and
        // unnormalized value accumulator, with one divide at the end.
        // This is the defining numeric association for attention in this
        // crate — the fused batch kernel applies the identical recurrence
        // per KV block, so both tiers stay bit-identical. (A plain
        // two-pass softmax would associate the sums differently and break
        // the exact-equality tests.)
        let scale = 1.0 / (d as f32).sqrt();
        let bs = kv.block_size();
        let mut attn_out = vec![0.0; h];
        let mut scores = Vec::with_capacity(bs);
        for head in shard.head_lo..shard.head_hi {
            let hl = head * d;
            let q_h = &q[hl..hl + d];
            let mut m_run = f32::NEG_INFINITY;
            let mut l_run = 0.0f32;
            let mut chunk = 0;
            while chunk <= pos {
                let take = (pos + 1 - chunk).min(bs);
                scores.clear();
                for p in chunk..chunk + take {
                    let k_p = &kv.key(seq, layer, p)[hl..hl + d];
                    let dot: f32 = q_h.iter().zip(k_p).map(|(a, b)| a * b).sum();
                    scores.push(dot * scale);
                }
                let mut bm = f32::NEG_INFINITY;
                for &s in &scores {
                    bm = bm.max(s);
                }
                let m_new = m_run.max(bm);
                let c = exp_fast(m_run - m_new);
                l_run *= c;
                for o in attn_out[hl..hl + d].iter_mut() {
                    *o *= c;
                }
                for (off, &s) in scores.iter().enumerate() {
                    let e = exp_fast(s - m_new);
                    l_run += e;
                    let v_p = &kv.value(seq, layer, chunk + off)[hl..hl + d];
                    for (o, &vv) in attn_out[hl..hl + d].iter_mut().zip(v_p) {
                        *o += e * vv;
                    }
                }
                m_run = m_new;
                chunk += take;
            }
            for o in attn_out[hl..hl + d].iter_mut() {
                *o /= l_run;
            }
        }

        // Output projection: rows outside the shard's dims are zero in
        // `attn_out`, and the matmul skips zero inputs, so this computes
        // exactly the shard's partial sum.
        Matrix::from_vec(1, h, attn_out).matmul(&lw.wo).data
    }

    /// FFN for the shard's columns: `relu(x·W1[:, lo..hi]) · W2[lo..hi, :]`.
    #[must_use]
    pub fn ffn_partial(&self, layer: usize, x_norm: &[f32], shard: Shard) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        let x = Matrix::from_vec(1, x_norm.len(), x_norm.to_vec());
        let mut mid = x.matmul_cols(&lw.w1, shard.ffn_lo, shard.ffn_hi);
        relu(&mut mid);
        // Zero-pad to full FFN width; zero rows are skipped by matmul.
        let mut padded = vec![0.0; self.cfg.ffn];
        padded[shard.ffn_lo..shard.ffn_hi].copy_from_slice(&mid.data);
        Matrix::from_vec(1, self.cfg.ffn, padded)
            .matmul(&lw.w2)
            .data
    }

    /// Output logits from a final hidden state (tied embeddings).
    #[must_use]
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        let normed = layer_norm(
            &Matrix::from_vec(1, x.len(), x.to_vec()),
            &self.weights.lnf_scale,
            &self.weights.lnf_shift,
        );
        let mut out = vec![0.0; self.cfg.vocab];
        for (t, o) in out.iter_mut().enumerate() {
            *o = normed
                .row(0)
                .iter()
                .zip(self.weights.embed.row(t))
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }

    /// Embeds every batch row (token + learned position) into
    /// `scratch.x`, the `(m × hidden)` residual stream.
    ///
    /// # Panics
    ///
    /// Panics if any token or position is out of range.
    pub fn embed_rows(&self, rows: &[BatchRow], scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        scratch.x.resize(rows.len() * h, 0.0);
        for (i, row) in rows.iter().enumerate() {
            let t = row.token as usize;
            assert!(t < self.cfg.vocab, "token {t} out of vocab");
            assert!(
                row.pos < self.cfg.max_seq,
                "position {} past max_seq",
                row.pos
            );
            let out = &mut scratch.x[i * h..(i + 1) * h];
            for ((o, e), p) in out
                .iter_mut()
                .zip(self.weights.embed.row(t))
                .zip(self.weights.pos.row(row.pos))
            {
                *o = e + p;
            }
        }
    }

    /// Pre-attention LayerNorm of the whole batch: `scratch.x` →
    /// `scratch.normed`.
    pub fn ln1_batch(&self, layer: usize, m: usize, scratch: &mut Scratch) {
        let lw = &self.weights.layers[layer];
        let h = self.cfg.hidden;
        scratch.normed.resize(m * h, 0.0);
        layer_norm_into(
            &scratch.x[..m * h],
            m,
            &lw.ln1_scale,
            &lw.ln1_shift,
            &mut scratch.normed[..m * h],
        );
    }

    /// Pre-FFN LayerNorm of the whole batch: `scratch.x` →
    /// `scratch.normed`.
    pub fn ln2_batch(&self, layer: usize, m: usize, scratch: &mut Scratch) {
        let lw = &self.weights.layers[layer];
        let h = self.cfg.hidden;
        scratch.normed.resize(m * h, 0.0);
        layer_norm_into(
            &scratch.x[..m * h],
            m,
            &lw.ln2_scale,
            &lw.ln2_shift,
            &mut scratch.normed[..m * h],
        );
    }

    /// Batched attention for the shard's heads: one fused Q/K/V GEMM over
    /// all rows, shard-sliced KV appends, per-row causal attention read
    /// through a [`crate::kv::KvLayerView`], and the shard's slice of the
    /// output projection as one row-sliced GEMM. Reads `scratch.normed`,
    /// leaves the partial in `scratch.partial`.
    ///
    /// # Panics
    ///
    /// Panics if a KV append fails — the scheduler must admit within
    /// capacity.
    pub fn attn_batch(
        &self,
        layer: usize,
        rows: &[BatchRow],
        kv: &mut PagedKv,
        shard: Shard,
        scratch: &mut Scratch,
    ) {
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let m = rows.len();
        let pw = &self.packed.layers[layer];
        let lo = shard.head_lo * d;
        let hi = shard.head_hi * d;
        let width = hi - lo;

        // One GEMM for every row's Q, K and V, strip-split across the
        // pool when the batch is worth it.
        {
            let _prof = distserve_prof::scope("qkv_gemm");
            scratch.qkv.resize(m * 3 * h, 0.0);
            self.pool.gemm(
                &pw.wqkv,
                &scratch.normed[..m * h],
                m,
                h,
                0,
                0,
                3 * h,
                &mut scratch.qkv[..m * 3 * h],
            );
        }

        // Append each row's K/V (shard dims only) before any row attends:
        // within one batch a prefill row must see its predecessors' keys.
        {
            let _prof = distserve_prof::scope("kv_append");
            for (i, row) in rows.iter().enumerate() {
                let qkv_row = &scratch.qkv[i * 3 * h..(i + 1) * 3 * h];
                let k = &qkv_row[h..2 * h];
                let v = &qkv_row[2 * h..3 * h];
                kv.append_range(row.seq, layer, row.pos, lo, &k[lo..hi], &v[lo..hi])
                    .expect("KV append within capacity");
            }
        }

        // Fused causal attention per row — scores, online softmax, and
        // value accumulation in one pass over the KV blocks (see
        // [`fused_attn_row`]); no position-major score matrix is ever
        // materialized. When the batch carries enough total context, rows
        // are farmed across the pool: attention rows are embarrassingly
        // parallel, so the split is trivially bit-identical to the serial
        // loop.
        let _prof_attn = distserve_prof::scope("fused_attn");
        let scale = 1.0 / (d as f32).sqrt();
        let heads = shard.head_hi - shard.head_lo;
        scratch.attn.resize(m * width, 0.0);
        let total_ctx: usize = rows.iter().map(|r| r.pos + 1).sum();
        let lanes = self.pool.attn_lanes(m, total_ctx * width * 2);
        if lanes > 1 {
            let (hidden, bs, block_floats, layer_base) = kv.geometry(layer);
            let storage = kv.storage_arc();
            let qkv = &scratch.qkv;
            self.pool.attn_rows(
                lanes,
                &storage,
                |stage| {
                    stage.q.clear();
                    stage.rows.clear();
                    stage.blocks.clear();
                    for (i, row) in rows.iter().enumerate() {
                        stage
                            .q
                            .extend_from_slice(&qkv[i * 3 * h + lo..i * 3 * h + hi]);
                        let ctx = row.pos + 1;
                        let (blocks, _) = kv.table_parts(row.seq);
                        let blk_lo = stage.blocks.len();
                        stage.blocks.extend_from_slice(&blocks[..ctx.div_ceil(bs)]);
                        stage.rows.push((ctx, blk_lo, stage.blocks.len()));
                    }
                    stage.d = d;
                    stage.heads = heads;
                    stage.lo = lo;
                    stage.hidden = hidden;
                    stage.block_size = bs;
                    stage.block_floats = block_floats;
                    stage.layer_base = layer_base;
                    stage.scale = scale;
                },
                m,
                width,
                &mut scratch.attn[..m * width],
            );
        } else {
            for (i, row) in rows.iter().enumerate() {
                let view = kv.layer_view(row.seq, layer);
                let ctx = row.pos + 1;
                let q_s = &scratch.qkv[i * 3 * h + lo..i * 3 * h + hi];
                let out_row = &mut scratch.attn[i * width..(i + 1) * width];
                fused_attn_row(
                    &view,
                    ctx,
                    q_s,
                    lo,
                    d,
                    heads,
                    scale,
                    h,
                    &mut scratch.attn_scr,
                    out_row,
                );
            }
        }

        drop(_prof_attn);

        // Output projection: only the shard's rows of W_O, fed by the
        // tight shard-width context (no zero padding).
        let _prof = distserve_prof::scope("out_proj_gemm");
        scratch.partial.resize(m * h, 0.0);
        self.pool.gemm(
            &pw.wo,
            &scratch.attn[..m * width],
            m,
            width,
            lo,
            0,
            h,
            &mut scratch.partial[..m * h],
        );
    }

    /// Batched FFN for the shard's columns:
    /// `relu(normed · W1[:, lo..hi]) · W2[lo..hi, :]` as two sliced GEMMs.
    /// Reads `scratch.normed`, leaves the partial in `scratch.partial`.
    pub fn ffn_batch(&self, layer: usize, m: usize, shard: Shard, scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        let pw = &self.packed.layers[layer];
        let fw = shard.ffn_hi - shard.ffn_lo;
        scratch.mid.resize(m * fw, 0.0);
        self.pool.gemm(
            &pw.w1,
            &scratch.normed[..m * h],
            m,
            h,
            0,
            shard.ffn_lo,
            fw,
            &mut scratch.mid[..m * fw],
        );
        relu_slice(&mut scratch.mid[..m * fw]);
        scratch.partial.resize(m * h, 0.0);
        self.pool.gemm(
            &pw.w2,
            &scratch.mid[..m * fw],
            m,
            fw,
            shard.ffn_lo,
            0,
            h,
            &mut scratch.partial[..m * h],
        );
    }

    /// Adds the current `scratch.partial` into the residual stream — the
    /// single-shard stand-in for the tensor-parallel all-reduce.
    pub fn add_partial(&self, m: usize, scratch: &mut Scratch) {
        let h = self.cfg.hidden;
        for (xi, p) in scratch.x[..m * h].iter_mut().zip(&scratch.partial[..m * h]) {
            *xi += p;
        }
    }

    /// Full (single-shard) batched forward pass: every row of `rows`
    /// through all layers, final hidden states left in `scratch.x`.
    /// Serves both batched prefill (a whole prompt as one activation
    /// matrix) and fused decode (one row per active sequence); logits are
    /// *not* computed here — call [`Model::logits_batch`] on the rows
    /// that need them.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range tokens/positions or KV append failure.
    pub fn forward_batch(&self, rows: &[BatchRow], kv: &mut PagedKv, scratch: &mut Scratch) {
        if rows.is_empty() {
            scratch.x.clear();
            return;
        }
        let _prof = distserve_prof::scope("forward_batch");
        let shard = Shard::full(&self.cfg);
        let m = rows.len();
        {
            let _prof = distserve_prof::scope("embed");
            self.embed_rows(rows, scratch);
        }
        // LayerNorms run unscoped: at ~µs bodies, two extra scope pairs
        // per layer per step would spend the <3% overhead budget on the
        // least interesting kernels. Their time reads as `forward_batch`
        // self-time.
        for layer in 0..self.cfg.layers {
            self.ln1_batch(layer, m, scratch);
            {
                let _prof = distserve_prof::scope("attn");
                self.attn_batch(layer, rows, kv, shard, scratch);
            }
            self.add_partial(m, scratch);
            self.ln2_batch(layer, m, scratch);
            {
                let _prof = distserve_prof::scope("ffn");
                self.ffn_batch(layer, m, shard, scratch);
            }
            self.add_partial(m, scratch);
        }
    }

    /// Logits for the selected rows of the last [`Model::forward_batch`]:
    /// final LayerNorm plus one `(picks × vocab)` GEMM against the
    /// pre-transposed embedding. Results are read back with
    /// [`Scratch::logits_row`]. Prefill only pays for the rows it needs
    /// (each prompt's last position) instead of projecting every token.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for the forwarded batch.
    pub fn logits_batch(&self, picks: &[usize], scratch: &mut Scratch) {
        let _prof = distserve_prof::scope("logits");
        let h = self.cfg.hidden;
        let r = picks.len();
        scratch.sel.resize(r * h, 0.0);
        for (j, &i) in picks.iter().enumerate() {
            let src = &scratch.x[i * h..(i + 1) * h];
            scratch.sel[j * h..(j + 1) * h].copy_from_slice(src);
        }
        scratch.normed.resize(r * h, 0.0);
        layer_norm_into(
            &scratch.sel[..r * h],
            r,
            &self.weights.lnf_scale,
            &self.weights.lnf_shift,
            &mut scratch.normed[..r * h],
        );
        let vocab = self.cfg.vocab;
        scratch.logits.resize(r * vocab, 0.0);
        scratch.logits_width = vocab;
        self.pool.gemm(
            &self.packed.embed_t,
            &scratch.normed[..r * h],
            r,
            h,
            0,
            0,
            vocab,
            &mut scratch.logits[..r * vocab],
        );
    }

    /// Full (single-shard) forward pass of one token, returning logits.
    #[must_use]
    pub fn forward_token(&self, seq: SeqId, pos: usize, token: u32, kv: &mut PagedKv) -> Vec<f32> {
        let shard = Shard::full(&self.cfg);
        let mut x = self.embed_token(token, pos);
        for layer in 0..self.cfg.layers {
            let xa = self.ln1(layer, &x);
            let attn = self.attn_partial(layer, &xa, seq, pos, kv, shard);
            for (xi, a) in x.iter_mut().zip(&attn) {
                *xi += a;
            }
            let xf = self.ln2(layer, &x);
            let ffn = self.ffn_partial(layer, &xf, shard);
            for (xi, f) in x.iter_mut().zip(&ffn) {
                *xi += f;
            }
        }
        self.logits(&x)
    }

    /// Builds a KV pool sized for `max_tokens` total positions.
    #[must_use]
    pub fn make_kv(&self, max_tokens: usize, block_size: usize) -> PagedKv {
        let blocks = max_tokens.div_ceil(block_size).max(1);
        PagedKv::new(self.cfg.layers, self.cfg.hidden, block_size, blocks)
    }

    /// Greedy generation: prefills `prompt` and emits `max_new` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate(&self, prompt: &[u32], max_new: usize) -> Vec<u32> {
        self.generate_with(
            prompt,
            max_new,
            &mut crate::sampling::Sampler::new(crate::sampling::Sampling::Greedy, 0),
        )
    }

    /// Generation with an explicit sampling strategy (§5: the frontend
    /// exposes sampling parameters such as temperature).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds `max_seq`.
    #[must_use]
    pub fn generate_with(
        &self,
        prompt: &[u32],
        max_new: usize,
        sampler: &mut crate::sampling::Sampler,
    ) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + max_new <= self.cfg.max_seq,
            "sequence exceeds max_seq"
        );
        let mut kv = self.make_kv(prompt.len() + max_new, 16);
        kv.register(0);
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            logits = self.forward_token(0, pos, tok, &mut kv);
        }
        let mut out = Vec::with_capacity(max_new);
        for pos in prompt.len()..prompt.len() + max_new {
            let next = sampler.sample(&logits);
            out.push(next);
            if out.len() == max_new {
                break;
            }
            logits = self.forward_token(0, pos, next, &mut kv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::random(&TinyConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[1, 2, 3], 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&t| (t as usize) < m.config().vocab));
    }

    #[test]
    fn different_prompts_differ() {
        let m = model();
        let a = m.generate(&[1, 2, 3], 8);
        let b = m.generate(&[4, 5, 6], 8);
        assert_ne!(a, b, "distinct prompts should diverge");
    }

    #[test]
    fn kv_reuse_equals_recompute() {
        // Incremental decoding with the cache must equal a from-scratch
        // forward over the whole prefix — the KV cache's core invariant.
        let m = model();
        let seq: Vec<u32> = vec![5, 9, 2, 7];

        // Incremental: feed tokens one at a time into one cache.
        let mut kv = m.make_kv(16, 4);
        kv.register(0);
        let mut logits_inc = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_inc = m.forward_token(0, pos, t, &mut kv);
        }

        // From scratch with a fresh cache (same computation order).
        let mut kv2 = m.make_kv(16, 16);
        kv2.register(0);
        let mut logits_fresh = Vec::new();
        for (pos, &t) in seq.iter().enumerate() {
            logits_fresh = m.forward_token(0, pos, t, &mut kv2);
        }
        for (a, b) in logits_inc.iter().zip(&logits_fresh) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sharded_sums_equal_full() {
        // The TP decomposition: attention and FFN partials summed over
        // shards must equal the full-shard result.
        let m = model();
        let cfg = m.config().clone();
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 * 0.1).sin()).collect();
        let xa = m.ln1(0, &x);

        // Full reference (its own cache).
        let mut kv_full = m.make_kv(8, 8);
        kv_full.register(0);
        let full = m.attn_partial(0, &xa, 0, 0, &mut kv_full, Shard::full(&cfg));

        // Two shards, each with its own cache copy.
        let mut sum = vec![0.0; cfg.hidden];
        for rank in 0..2 {
            let mut kv_s = m.make_kv(8, 8);
            kv_s.register(0);
            let part = m.attn_partial(0, &xa, 0, 0, &mut kv_s, Shard::of(&cfg, rank, 2));
            for (s, p) in sum.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full.iter().zip(&sum) {
            assert!((a - b).abs() < 1e-5, "attention: {a} vs {b}");
        }

        // FFN likewise.
        let xf = m.ln2(0, &x);
        let full_ffn = m.ffn_partial(0, &xf, Shard::full(&cfg));
        let mut sum_ffn = vec![0.0; cfg.hidden];
        for rank in 0..4 {
            let part = m.ffn_partial(0, &xf, Shard::of(&cfg, rank, 4));
            for (s, p) in sum_ffn.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            assert!((a - b).abs() < 1e-5, "ffn: {a} vs {b}");
        }
    }

    #[test]
    fn batched_prefill_bit_matches_reference() {
        // The whole prompt as one activation matrix must produce exactly
        // the reference token-at-a-time logits — same float ops in the
        // same order, not merely close.
        let m = model();
        let prompt = [7u32, 3, 11, 4, 9];

        let mut kv_ref = m.make_kv(32, 4);
        kv_ref.register(0);
        let mut ref_logits = Vec::new();
        for (pos, &t) in prompt.iter().enumerate() {
            ref_logits = m.forward_token(0, pos, t, &mut kv_ref);
        }

        let mut kv_b = m.make_kv(32, 4);
        kv_b.register(0);
        let rows: Vec<BatchRow> = prompt
            .iter()
            .enumerate()
            .map(|(pos, &token)| BatchRow { seq: 0, pos, token })
            .collect();
        let mut scratch = Scratch::new();
        m.forward_batch(&rows, &mut kv_b, &mut scratch);
        m.logits_batch(&[prompt.len() - 1], &mut scratch);
        assert_eq!(scratch.logits_row(0), &ref_logits[..]);
    }

    #[test]
    fn fused_decode_bit_matches_reference() {
        // Several sequences decoding as one stacked batch must equal each
        // sequence decoded alone.
        let m = model();
        let prompts: [&[u32]; 3] = [&[1, 2, 3], &[9, 8], &[4, 4, 4, 4]];

        // Reference: each sequence in its own cache, token at a time.
        let mut ref_logits = Vec::new();
        for prompt in prompts {
            let mut kv = m.make_kv(16, 4);
            kv.register(0);
            let mut logits = Vec::new();
            for (pos, &t) in prompt.iter().enumerate() {
                logits = m.forward_token(0, pos, t, &mut kv);
            }
            let next = crate::tensor::argmax(&logits) as u32;
            let logits = m.forward_token(0, prompt.len(), next, &mut kv);
            ref_logits.push(logits);
        }

        // Batched: shared cache, prefill each prompt, then one fused
        // decode step over all three sequences.
        let mut kv = m.make_kv(64, 4);
        let mut scratch = Scratch::new();
        let mut decode_rows = Vec::new();
        for (s, prompt) in prompts.iter().enumerate() {
            let seq = s as SeqId;
            kv.register(seq);
            let rows: Vec<BatchRow> = prompt
                .iter()
                .enumerate()
                .map(|(pos, &token)| BatchRow { seq, pos, token })
                .collect();
            m.forward_batch(&rows, &mut kv, &mut scratch);
            m.logits_batch(&[prompt.len() - 1], &mut scratch);
            let next = crate::tensor::argmax(scratch.logits_row(0)) as u32;
            decode_rows.push(BatchRow {
                seq,
                pos: prompt.len(),
                token: next,
            });
        }
        m.forward_batch(&decode_rows, &mut kv, &mut scratch);
        m.logits_batch(&[0, 1, 2], &mut scratch);
        for (i, expect) in ref_logits.iter().enumerate() {
            assert_eq!(scratch.logits_row(i), &expect[..], "sequence {i}");
        }
    }

    #[test]
    fn sharded_batch_partials_sum_to_full() {
        // attn_batch/ffn_batch over proper shards must sum to the full
        // shard's partial (the all-reduce invariant, batch tier).
        let m = model();
        let cfg = m.config().clone();
        let rows = [
            BatchRow {
                seq: 0,
                pos: 0,
                token: 3,
            },
            BatchRow {
                seq: 0,
                pos: 1,
                token: 8,
            },
        ];
        let mh = rows.len() * cfg.hidden;

        let mut kv_full = m.make_kv(8, 8);
        kv_full.register(0);
        let mut s_full = Scratch::new();
        m.embed_rows(&rows, &mut s_full);
        m.ln1_batch(0, rows.len(), &mut s_full);
        m.attn_batch(0, &rows, &mut kv_full, Shard::full(&cfg), &mut s_full);
        let full_attn = s_full.partial.clone();
        m.ffn_batch(0, rows.len(), Shard::full(&cfg), &mut s_full);
        let full_ffn = s_full.partial.clone();

        let mut sum_attn = vec![0.0; mh];
        let mut sum_ffn = vec![0.0; mh];
        for rank in 0..2 {
            let shard = Shard::of(&cfg, rank, 2);
            let mut kv_s = m.make_kv(8, 8);
            kv_s.register(0);
            let mut s = Scratch::new();
            m.embed_rows(&rows, &mut s);
            m.ln1_batch(0, rows.len(), &mut s);
            m.attn_batch(0, &rows, &mut kv_s, shard, &mut s);
            for (a, p) in sum_attn.iter_mut().zip(&s.partial) {
                *a += p;
            }
            m.ffn_batch(0, rows.len(), shard, &mut s);
            for (a, p) in sum_ffn.iter_mut().zip(&s.partial) {
                *a += p;
            }
        }
        for (a, b) in full_attn.iter().zip(&sum_attn) {
            assert!((a - b).abs() < 1e-5, "attention: {a} vs {b}");
        }
        for (a, b) in full_ffn.iter().zip(&sum_ffn) {
            assert!((a - b).abs() < 1e-5, "ffn: {a} vs {b}");
        }
    }

    #[test]
    fn fused_attention_matches_materialized_scores() {
        // The fused one-pass kernel against an oracle that materializes
        // the full score matrix first. Sweeping the materialized scores
        // with the same block-online recurrence must match *bitwise*;
        // a classic two-pass softmax must agree to float tolerance.
        let m = model();
        let cfg = m.config().clone();
        let d = cfg.head_dim();
        let h = cfg.hidden;
        let heads = cfg.heads;
        // Block size 4 with context 7: the tail block is partial, so the
        // `take < block_size` paths are exercised.
        let mut kv = m.make_kv(32, 4);
        kv.register(0);
        let prompt = [7u32, 3, 11, 4, 9, 1, 6];
        let rows: Vec<BatchRow> = prompt
            .iter()
            .enumerate()
            .map(|(pos, &token)| BatchRow { seq: 0, pos, token })
            .collect();
        let mut scratch = Scratch::new();
        m.forward_batch(&rows, &mut kv, &mut scratch);

        let ctx = prompt.len();
        let bs = kv.block_size();
        let scale = 1.0 / (d as f32).sqrt();
        let q: Vec<f32> = (0..h)
            .map(|i| ((i * 13 + 5) % 17) as f32 * 0.1 - 0.8)
            .collect();
        let mut fused = vec![0.0f32; h];
        {
            let view = kv.layer_view(0, 0);
            let mut scr = AttnScratch::default();
            fused_attn_row(&view, ctx, &q, 0, d, heads, scale, h, &mut scr, &mut fused);
        }

        let mut exact = vec![0.0f32; h];
        let mut two_pass = vec![0.0f32; h];
        for head in 0..heads {
            let hl = head * d;
            // Materialize every score for this head.
            let scores: Vec<f32> = (0..ctx)
                .map(|p| {
                    let k_p = &kv.key(0, 0, p)[hl..hl + d];
                    let dot: f32 = q[hl..hl + d].iter().zip(k_p).map(|(a, b)| a * b).sum();
                    dot * scale
                })
                .collect();
            // (a) Block-online sweep over the materialized matrix — the
            // crate's defining association; bit-equal to fused.
            let mut m_run = f32::NEG_INFINITY;
            let mut l_run = 0.0f32;
            for (ci, chunk) in scores.chunks(bs).enumerate() {
                let mut bm = f32::NEG_INFINITY;
                for &s in chunk {
                    bm = bm.max(s);
                }
                let m_new = m_run.max(bm);
                let c = exp_fast(m_run - m_new);
                l_run *= c;
                for o in exact[hl..hl + d].iter_mut() {
                    *o *= c;
                }
                for (off, &s) in chunk.iter().enumerate() {
                    let e = exp_fast(s - m_new);
                    l_run += e;
                    let v_p = &kv.value(0, 0, ci * bs + off)[hl..hl + d];
                    for (o, &vv) in exact[hl..hl + d].iter_mut().zip(v_p) {
                        *o += e * vv;
                    }
                }
                m_run = m_new;
            }
            for o in exact[hl..hl + d].iter_mut() {
                *o /= l_run;
            }
            // (b) Classic two-pass softmax over the same scores.
            let max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let exps: Vec<f32> = scores.iter().map(|&s| exp_fast(s - max)).collect();
            let denom: f32 = exps.iter().sum();
            for (p, &e) in exps.iter().enumerate() {
                let w = e / denom;
                let v_p = &kv.value(0, 0, p)[hl..hl + d];
                for (o, &vv) in two_pass[hl..hl + d].iter_mut().zip(v_p) {
                    *o += w * vv;
                }
            }
        }
        assert_eq!(fused, exact, "block-online oracle must match bitwise");
        for (a, b) in fused.iter().zip(&two_pass) {
            assert!((a - b).abs() < 1e-5, "two-pass softmax: {a} vs {b}");
        }
    }

    #[test]
    fn threaded_batch_bit_matches_serial() {
        // The same batched forward on a 1-lane and a 4-lane model must
        // produce bit-identical hidden states and logits: GEMM strips and
        // attention row splits never change any accumulation chain.
        let cfg = TinyConfig::small();
        let serial = Model::random_with(
            &cfg,
            42,
            ComputeConfig {
                precision: Precision::F32,
                threads: 1,
            },
        );
        let threaded = Model::random_with(
            &cfg,
            42,
            ComputeConfig {
                precision: Precision::F32,
                threads: 4,
            },
        );
        assert_eq!(threaded.threads(), 4);
        // 32 rows of growing context: big enough that both the GEMM and
        // the attention dispatch actually go parallel on the 4-lane pool.
        let rows: Vec<BatchRow> = (0..32)
            .map(|pos| BatchRow {
                seq: 0,
                pos,
                token: (pos as u32 * 7 + 3) % cfg.vocab as u32,
            })
            .collect();
        let mut out = Vec::new();
        for m in [&serial, &threaded] {
            let mut kv = m.make_kv(64, 16);
            kv.register(0);
            let mut scratch = Scratch::new();
            m.forward_batch(&rows, &mut kv, &mut scratch);
            m.logits_batch(&[rows.len() - 1], &mut scratch);
            out.push((scratch.x.clone(), scratch.logits_row(0).to_vec()));
        }
        assert_eq!(out[0].0, out[1].0, "hidden states");
        assert_eq!(out[0].1, out[1].1, "logits");
    }

    #[test]
    fn int8_batch_close_to_f32_and_thread_deterministic() {
        // Int8 is bounded-error vs. f32 (loose tolerance on logits) but
        // fully deterministic: 1-lane and 4-lane int8 runs are bit-equal.
        let cfg = TinyConfig::tiny();
        let prompt = [7u32, 3, 11, 4, 9];
        let rows: Vec<BatchRow> = prompt
            .iter()
            .enumerate()
            .map(|(pos, &token)| BatchRow { seq: 0, pos, token })
            .collect();
        let run = |compute: ComputeConfig| {
            let m = Model::random_with(&cfg, 42, compute);
            let mut kv = m.make_kv(32, 16);
            kv.register(0);
            let mut scratch = Scratch::new();
            m.forward_batch(&rows, &mut kv, &mut scratch);
            m.logits_batch(&[prompt.len() - 1], &mut scratch);
            scratch.logits_row(0).to_vec()
        };
        let f32_logits = run(ComputeConfig::default());
        let q1 = run(ComputeConfig {
            precision: Precision::Int8,
            threads: 1,
        });
        let q4 = run(ComputeConfig {
            precision: Precision::Int8,
            threads: 4,
        });
        assert_eq!(q1, q4, "int8 must be thread-count invariant");
        let mut max_diff = 0.0f32;
        for (a, b) in f32_logits.iter().zip(&q1) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff > 0.0, "int8 should actually differ from f32");
        assert!(max_diff < 0.05, "int8 drift too large: {max_diff}");
    }

    #[test]
    fn attention_attends_to_context() {
        // The logits at the last position must depend on earlier tokens,
        // not just the final one.
        let m = model();
        let a = m.generate(&[1, 2, 9], 1);
        let b = m.generate(&[7, 2, 9], 1);
        // Same final token, different context → (almost surely) different
        // continuation under random weights.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn overlong_generation_rejected() {
        let m = model();
        let prompt = vec![0u32; 200];
        let _ = m.generate(&prompt, 100); // 300 > max_seq 256.
    }

    #[test]
    fn shard_partition_covers_everything() {
        let cfg = TinyConfig::tiny();
        let s0 = Shard::of(&cfg, 0, 4);
        let s3 = Shard::of(&cfg, 3, 4);
        assert_eq!(s0.head_lo, 0);
        assert_eq!(s3.head_hi, cfg.heads);
        assert_eq!(s3.ffn_hi, cfg.ffn);
    }
}
