//! Property tests for the parallel compute path: threaded GEMM must be
//! bit-identical to single-threaded across arbitrary shapes and thread
//! counts, and int8 quantized GEMM must respect its documented error
//! bound.

use proptest::prelude::*;
use tinyllm::tensor::{Kernel, Matrix, PackedMatrix, QuantMatrix};
use tinyllm::WorkerPool;

/// Deterministic pseudo-random matrix data in roughly `[-1, 1)`.
fn fill(rows: usize, cols: usize, salt: u64) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            ((x >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any `(m, k, n)` shape at any thread count — including `n` not
    /// divisible by the 16-wide register tile — produces exactly the
    /// serial kernel's bits. The dispatch may split the N dimension into
    /// strips, but every output element's multiply-add chain is the
    /// same either way.
    #[test]
    fn threaded_gemm_bit_identical(
        m in 1usize..=16,
        k in 1usize..=96,
        n in 1usize..=300,
        threads in 2usize..=8,
    ) {
        let a = fill(m, k, 0xA5A5);
        let w = Matrix::from_vec(k, n, fill(k, n, 0x5A5A));
        let kern = Kernel::F32(PackedMatrix::pack(&w));
        let mut serial = vec![0.0f32; m * n];
        WorkerPool::new(1).gemm(&kern, &a, m, k, 0, 0, n, &mut serial);
        let mut parallel = vec![0.0f32; m * n];
        WorkerPool::new(threads).gemm(&kern, &a, m, k, 0, 0, n, &mut parallel);
        prop_assert_eq!(serial, parallel);
    }

    /// Int8 GEMM stays within the documented per-channel bound:
    /// `|y_int8[j] − y_f32[j]| ≤ (s_j / 2) · ‖a‖₁ + ε_acc`, where `s_j`
    /// is column `j`'s quantization step (a small slack covers the f32
    /// accumulation term ε_acc).
    #[test]
    fn int8_gemm_within_documented_bound(
        m in 1usize..=4,
        k in 1usize..=64,
        n in 1usize..=80,
        salt in 0u64..1024,
    ) {
        let a = fill(m, k, salt);
        let w = Matrix::from_vec(k, n, fill(k, n, salt ^ 0xFFFF));
        let q = QuantMatrix::quantize(&w);
        let exact = Matrix::from_vec(m, k, a.clone()).matmul(&w);
        let mut approx = vec![0.0f32; m * n];
        q.matmul_into(&a, m, &mut approx);
        for r in 0..m {
            let a1: f32 = a[r * k..(r + 1) * k].iter().map(|x| x.abs()).sum();
            for j in 0..n {
                let err = (approx[r * n + j] - exact.data[r * n + j]).abs();
                let bound = q.scale(j) * 0.5 * a1 * (1.0 + 1.0 / 64.0) + 1e-6;
                prop_assert!(
                    err <= bound,
                    "row {} col {}: err {} > bound {}",
                    r, j, err, bound
                );
            }
        }
    }

    /// Int8 is deterministic: the threaded dispatch reproduces the
    /// serial int8 result bit for bit (the bound above is about f32 vs.
    /// int8, never about thread count).
    #[test]
    fn threaded_int8_gemm_bit_identical(
        m in 1usize..=8,
        k in 1usize..=64,
        n in 1usize..=200,
        threads in 2usize..=6,
    ) {
        let a = fill(m, k, 0x1234);
        let w = Matrix::from_vec(k, n, fill(k, n, 0x4321));
        let kern = Kernel::Int8(QuantMatrix::quantize(&w));
        let mut serial = vec![0.0f32; m * n];
        WorkerPool::new(1).gemm(&kern, &a, m, k, 0, 0, n, &mut serial);
        let mut parallel = vec![0.0f32; m * n];
        WorkerPool::new(threads).gemm(&kern, &a, m, k, 0, 0, n, &mut parallel);
        prop_assert_eq!(serial, parallel);
    }
}
