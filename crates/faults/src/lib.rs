//! Deterministic fault injection and recovery.
//!
//! The paper's placement and replanning machinery (§4.1, §4.3) assumes a
//! healthy cluster; at production scale instances crash, links degrade,
//! and stragglers appear, and goodput must be defined *through* those
//! events. This crate supplies the vocabulary the rest of the stack
//! threads through:
//!
//! * [`schedule`] — typed fault kinds and a seedable [`FaultSchedule`]
//!   (stream-split RNG from `simcore::rng`) that the engine turns into
//!   DES events, keeping faulted runs bit-reproducible.
//! * [`health`] — the per-instance [`InstanceHealth`] state machine
//!   (`Up → Degraded → Down → Recovering → Up`, plus `Draining` for
//!   planned maintenance).
//! * [`policy`] — per-request retry budgets with capped exponential
//!   backoff for failed KV migrations and re-dispatch.
//! * [`report`] — the availability report: unavailability windows,
//!   per-fault goodput dip, and recovery time (MTTR), serialized as
//!   JSON for CI and rendered as text for humans.

pub mod health;
pub mod policy;
pub mod report;
pub mod schedule;

pub use health::InstanceHealth;
pub use policy::RetryPolicy;
pub use report::{AvailabilityReport, GoodputSample, UnavailabilityWindow};
pub use schedule::{Fault, FaultKind, FaultSchedule, StormConfig};
