//! Retry budgets and capped exponential backoff.
//!
//! Failed KV migrations and crash-displaced requests are retried, but not
//! forever: each request carries a budget, and each attempt backs off
//! exponentially up to a cap so a flapping link cannot melt the
//! dispatcher. All delays are pure functions of the attempt number —
//! no randomized jitter — to preserve bit-identical replay.

/// Retry budget and backoff shape, shared by all requests in a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per request before it is failed terminally.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_backoff_secs: f64,
    /// Multiplier applied per subsequent attempt.
    pub backoff_factor: f64,
    /// Upper bound on any single delay.
    pub max_backoff_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_secs: 0.05,
            backoff_factor: 2.0,
            max_backoff_secs: 1.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail fast).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (1-based): capped
    /// exponential, `base × factor^(attempt-1)`, clamped to the cap.
    #[must_use]
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(62);
        let raw = self.base_backoff_secs * self.backoff_factor.powi(exp as i32);
        raw.min(self.max_backoff_secs).max(0.0)
    }

    /// Whether a request that has already retried `retries` times may
    /// retry again.
    #[must_use]
    pub fn allows(&self, retries: u32) -> bool {
        retries < self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff_secs: 0.1,
            backoff_factor: 2.0,
            max_backoff_secs: 0.5,
        };
        assert!((p.backoff_secs(1) - 0.1).abs() < 1e-12);
        assert!((p.backoff_secs(2) - 0.2).abs() < 1e-12);
        assert!((p.backoff_secs(3) - 0.4).abs() < 1e-12);
        assert!((p.backoff_secs(4) - 0.5).abs() < 1e-12); // capped
        assert!((p.backoff_secs(40) - 0.5).abs() < 1e-12); // no overflow
    }

    #[test]
    fn budget_is_enforced() {
        let p = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        assert!(p.allows(0));
        assert!(p.allows(1));
        assert!(!p.allows(2));
        assert!(!RetryPolicy::none().allows(0));
    }
}
