//! Availability reporting: what the chaos actually cost.
//!
//! The report folds three inputs — a windowed goodput series (from the
//! observe crate's buckets, passed as plain samples so this crate stays
//! at the bottom of the dependency graph), the injected fault times, and
//! the per-instance unavailability windows the engine recorded — into
//! the numbers an operator asks for after an incident: baseline goodput,
//! depth of the dip, time to recover, and MTTR. Serialized as JSON for
//! CI and rendered as text for humans.

/// One goodput observation (typically one observe bucket).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputSample {
    /// Bucket start, sim-clock seconds.
    pub start_s: f64,
    /// Goodput (requests finishing inside both SLOs per second) in the
    /// bucket.
    pub goodput_rps: f64,
}

/// One contiguous span an instance spent unavailable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnavailabilityWindow {
    /// Which instance.
    pub instance: usize,
    /// When it went down.
    pub start_s: f64,
    /// When it came back up; `None` when it never did.
    pub end_s: Option<f64>,
}

impl UnavailabilityWindow {
    /// Outage length, when the window closed.
    #[must_use]
    pub fn duration_secs(&self) -> Option<f64> {
        self.end_s.map(|e| (e - self.start_s).max(0.0))
    }
}

/// The availability report for one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Mean goodput before the first fault.
    pub baseline_goodput_rps: f64,
    /// Minimum windowed goodput at or after the first fault.
    pub dip_goodput_rps: f64,
    /// Mean goodput over the final quarter of the series.
    pub recovered_goodput_rps: f64,
    /// `recovered / baseline` (1.0 = full recovery). 0 when there was no
    /// pre-fault baseline.
    pub recovery_frac: f64,
    /// Seconds from the first fault until windowed goodput first returned
    /// to ≥ 90% of baseline; `None` if it never did.
    pub recovery_secs: Option<f64>,
    /// Mean time to repair over closed unavailability windows.
    pub mttr_secs: Option<f64>,
    /// Per-instance outage spans.
    pub unavailability: Vec<UnavailabilityWindow>,
    /// Faults injected during the run.
    pub faults_injected: u64,
    /// Total request retries (re-dispatch + KV-transfer retries).
    pub retries: u64,
    /// Requests that terminally failed (retry budget exhausted).
    pub failed_requests: u64,
    /// Requests that finished.
    pub finished: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
}

/// Replaces non-finite values so the report always serializes to valid
/// JSON.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl AvailabilityReport {
    /// Builds a report from a goodput series and the first fault time.
    /// Counters start at zero; fill them from the run's metrics.
    #[must_use]
    pub fn from_series(
        samples: &[GoodputSample],
        first_fault_s: f64,
        unavailability: Vec<UnavailabilityWindow>,
    ) -> Self {
        let pre: Vec<f64> = samples
            .iter()
            .filter(|s| s.start_s < first_fault_s)
            .map(|s| s.goodput_rps)
            .collect();
        let post: Vec<&GoodputSample> = samples
            .iter()
            .filter(|s| s.start_s >= first_fault_s)
            .collect();
        let baseline = if pre.is_empty() {
            0.0
        } else {
            pre.iter().sum::<f64>() / pre.len() as f64
        };
        let dip = post
            .iter()
            .map(|s| s.goodput_rps)
            .fold(f64::INFINITY, f64::min);
        let dip = if dip.is_finite() { dip } else { baseline };
        let tail_len = (samples.len() / 4).max(1);
        let tail = &samples[samples.len().saturating_sub(tail_len)..];
        let recovered = if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|s| s.goodput_rps).sum::<f64>() / tail.len() as f64
        };
        let recovery_frac = if baseline > 0.0 {
            recovered / baseline
        } else {
            0.0
        };
        // First post-dip bucket back at ≥ 90% of baseline. Scan past the
        // dip so a fault landing mid-bucket (whose bucket still looks
        // healthy) does not count as an instant recovery.
        let mut recovery_secs = None;
        if baseline > 0.0 {
            let mut seen_dip = false;
            for s in &post {
                if !seen_dip && s.goodput_rps < 0.9 * baseline {
                    seen_dip = true;
                }
                if seen_dip && s.goodput_rps >= 0.9 * baseline {
                    recovery_secs = Some(s.start_s - first_fault_s);
                    break;
                }
            }
            // Goodput never visibly dipped: recovery was immediate.
            if !seen_dip && !post.is_empty() {
                recovery_secs = Some(0.0);
            }
        }
        let repairs: Vec<f64> = unavailability
            .iter()
            .filter_map(UnavailabilityWindow::duration_secs)
            .collect();
        let mttr = if repairs.is_empty() {
            None
        } else {
            Some(repairs.iter().sum::<f64>() / repairs.len() as f64)
        };
        AvailabilityReport {
            baseline_goodput_rps: finite(baseline),
            dip_goodput_rps: finite(dip),
            recovered_goodput_rps: finite(recovered),
            recovery_frac: finite(recovery_frac),
            recovery_secs,
            mttr_secs: mttr,
            unavailability,
            faults_injected: 0,
            retries: 0,
            failed_requests: 0,
            finished: 0,
            rejected: 0,
        }
    }

    /// Serializes the report as JSON (hand-rolled: the vendored serde
    /// stand-in cannot derive for `Option`-bearing nested structs, and
    /// the format here is a CI contract, not a wire protocol).
    #[must_use]
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{}", finite(x)),
            None => "null".to_string(),
        };
        let windows: Vec<String> = self
            .unavailability
            .iter()
            .map(|w| {
                format!(
                    "{{\"instance\":{},\"start_s\":{},\"end_s\":{}}}",
                    w.instance,
                    finite(w.start_s),
                    opt(w.end_s)
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"baseline_goodput_rps\":{},\"dip_goodput_rps\":{},",
                "\"recovered_goodput_rps\":{},\"recovery_frac\":{},",
                "\"recovery_secs\":{},\"mttr_secs\":{},",
                "\"faults_injected\":{},\"retries\":{},\"failed_requests\":{},",
                "\"finished\":{},\"rejected\":{},\"unavailability\":[{}]}}"
            ),
            finite(self.baseline_goodput_rps),
            finite(self.dip_goodput_rps),
            finite(self.recovered_goodput_rps),
            finite(self.recovery_frac),
            opt(self.recovery_secs),
            opt(self.mttr_secs),
            self.faults_injected,
            self.retries,
            self.failed_requests,
            self.finished,
            self.rejected,
            windows.join(",")
        )
    }

    /// Renders the report as indented text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("availability report\n");
        out.push_str(&format!(
            "  goodput: baseline {:.2} rps, dip {:.2} rps, recovered {:.2} rps ({:.0}% of baseline)\n",
            self.baseline_goodput_rps,
            self.dip_goodput_rps,
            self.recovered_goodput_rps,
            self.recovery_frac * 100.0
        ));
        match self.recovery_secs {
            Some(s) => out.push_str(&format!("  goodput recovery: {s:.1} s after first fault\n")),
            None => out.push_str("  goodput recovery: not reached\n"),
        }
        match self.mttr_secs {
            Some(s) => out.push_str(&format!("  MTTR: {s:.1} s\n")),
            None => out.push_str("  MTTR: n/a (no repaired outage)\n"),
        }
        out.push_str(&format!(
            "  requests: {} finished, {} rejected, {} failed, {} retries\n",
            self.finished, self.rejected, self.failed_requests, self.retries
        ));
        out.push_str(&format!("  faults injected: {}\n", self.faults_injected));
        for w in &self.unavailability {
            match w.end_s {
                Some(e) => out.push_str(&format!(
                    "  instance {} down {:.1}s – {:.1}s ({:.1} s)\n",
                    w.instance,
                    w.start_s,
                    e,
                    e - w.start_s
                )),
                None => out.push_str(&format!(
                    "  instance {} down from {:.1}s (never recovered)\n",
                    w.instance, w.start_s
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> Vec<GoodputSample> {
        vals.iter()
            .enumerate()
            .map(|(i, &g)| GoodputSample {
                start_s: i as f64,
                goodput_rps: g,
            })
            .collect()
    }

    #[test]
    fn dip_and_recovery_detected() {
        // Baseline 4, dip to 1 at t=4, recovered by t=6.
        let s = series(&[4.0, 4.0, 4.0, 4.0, 1.0, 2.0, 4.0, 4.0]);
        let r = AvailabilityReport::from_series(&s, 4.0, vec![]);
        assert!((r.baseline_goodput_rps - 4.0).abs() < 1e-12);
        assert!((r.dip_goodput_rps - 1.0).abs() < 1e-12);
        assert_eq!(r.recovery_secs, Some(2.0));
        assert!(r.recovery_frac > 0.9);
    }

    #[test]
    fn never_recovering_goodput_reports_none() {
        let s = series(&[4.0, 4.0, 1.0, 1.0, 1.0, 1.0]);
        let r = AvailabilityReport::from_series(&s, 2.0, vec![]);
        assert_eq!(r.recovery_secs, None);
        assert!(r.recovery_frac < 0.5);
    }

    #[test]
    fn mttr_averages_closed_windows_only() {
        let windows = vec![
            UnavailabilityWindow {
                instance: 0,
                start_s: 1.0,
                end_s: Some(5.0),
            },
            UnavailabilityWindow {
                instance: 1,
                start_s: 2.0,
                end_s: Some(4.0),
            },
            UnavailabilityWindow {
                instance: 2,
                start_s: 3.0,
                end_s: None,
            },
        ];
        let r = AvailabilityReport::from_series(&series(&[1.0]), 0.5, windows);
        assert_eq!(r.mttr_secs, Some(3.0));
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = AvailabilityReport::from_series(
            &series(&[4.0, 1.0, 4.0]),
            0.5,
            vec![UnavailabilityWindow {
                instance: 1,
                start_s: 0.5,
                end_s: None,
            }],
        );
        r.faults_injected = 3;
        r.retries = 7;
        let json = r.to_json();
        // The vendored serde_json parses it back — the same check CI runs
        // with a real parser.
        let v: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        drop(v);
        assert!(json.contains("\"end_s\":null"));
        assert!(json.contains("\"retries\":7"));
        assert!(!r.render().is_empty());
    }
}
