//! The per-instance health state machine.
//!
//! ```text
//!            crash/GPU loss            downtime elapses
//!   Up ───────────────────────▶ Down ─────────────────▶ Recovering
//!    ▲  ╲ straggler                ▲                         │
//!    │   ╲                        kill                    warmup
//!    │    ▼                        │                         │
//!    │  Degraded ──────────────────┘                         │
//!    └───────────────────────────────────────────────────────┘
//!
//!   Up ──drain──▶ Draining ──idle──▶ Down (planned maintenance)
//! ```
//!
//! `Degraded` instances still serve (slower); `Draining` instances finish
//! what they hold but accept nothing new; `Down` and `Recovering`
//! instances serve nothing — `Recovering` models weight reload / cache
//! warmup between restart and first useful batch.

/// Health of one serving instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceHealth {
    /// Serving normally.
    Up,
    /// Serving, but every batch takes `slowdown`× as long.
    Degraded {
        /// Batch-time multiplier (`>= 1`).
        slowdown: f64,
    },
    /// Planned maintenance: no new work; in-flight work completes.
    Draining,
    /// Not serving; in-flight work was lost.
    Down,
    /// Restarted but still warming up (weights loading); not yet serving.
    Recovering,
}

impl InstanceHealth {
    /// Whether the dispatcher may route *new* requests here.
    #[must_use]
    pub fn accepts_new_work(&self) -> bool {
        matches!(self, InstanceHealth::Up | InstanceHealth::Degraded { .. })
    }

    /// Whether the instance can make progress on work it already holds.
    #[must_use]
    pub fn serves(&self) -> bool {
        matches!(
            self,
            InstanceHealth::Up | InstanceHealth::Degraded { .. } | InstanceHealth::Draining
        )
    }

    /// Whether the instance is unavailable (down or still warming up).
    #[must_use]
    pub fn is_down(&self) -> bool {
        matches!(self, InstanceHealth::Down | InstanceHealth::Recovering)
    }

    /// The batch-time multiplier this state imposes.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        match *self {
            InstanceHealth::Degraded { slowdown } => slowdown.max(1.0),
            _ => 1.0,
        }
    }

    /// Short stable name for gauges and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            InstanceHealth::Up => "up",
            InstanceHealth::Degraded { .. } => "degraded",
            InstanceHealth::Draining => "draining",
            InstanceHealth::Down => "down",
            InstanceHealth::Recovering => "recovering",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(InstanceHealth::Up.accepts_new_work());
        assert!(InstanceHealth::Degraded { slowdown: 2.0 }.accepts_new_work());
        assert!(!InstanceHealth::Draining.accepts_new_work());
        assert!(InstanceHealth::Draining.serves());
        assert!(!InstanceHealth::Down.serves());
        assert!(InstanceHealth::Down.is_down());
        assert!(InstanceHealth::Recovering.is_down());
        assert!(!InstanceHealth::Recovering.serves());
    }

    #[test]
    fn slowdown_floors_at_one() {
        assert_eq!(InstanceHealth::Degraded { slowdown: 0.5 }.slowdown(), 1.0);
        assert_eq!(InstanceHealth::Degraded { slowdown: 3.0 }.slowdown(), 3.0);
        assert_eq!(InstanceHealth::Up.slowdown(), 1.0);
    }
}
