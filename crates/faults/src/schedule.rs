//! Typed faults and deterministic fault schedules.
//!
//! A [`FaultSchedule`] is a time-sorted script of [`Fault`]s. Scripts can
//! be written by hand (scripted chaos, planned maintenance) or generated
//! from a seed with [`FaultSchedule::storm`], which draws every choice
//! from stream-split [`SimRng`] children so the same seed always yields
//! the same storm regardless of how other components consume randomness.

use distserve_simcore::SimRng;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The whole instance dies and restarts after `downtime_secs`
    /// (process crash, host reboot). In-flight work is lost.
    InstanceCrash {
        /// Index of the victim instance (position in the spec list).
        instance: usize,
        /// Seconds until the instance begins recovering.
        downtime_secs: f64,
    },
    /// A GPU backing the instance is lost for good (XID error, ECC
    /// fault). The instance never comes back; only replanning onto the
    /// shrunk cluster restores capacity.
    GpuLoss {
        /// Index of the victim instance.
        instance: usize,
    },
    /// The interconnect degrades: KV transfers slow by `factor` until
    /// `duration_secs` elapse.
    LinkDegradation {
        /// Multiplier applied to transfer times (`>= 1`).
        factor: f64,
        /// How long the degradation lasts.
        duration_secs: f64,
    },
    /// The instance keeps serving but every batch runs `factor` times
    /// slower for `duration_secs` (thermal throttling, noisy neighbor).
    Straggler {
        /// Index of the victim instance.
        instance: usize,
        /// Multiplier applied to batch times (`>= 1`).
        factor: f64,
        /// How long the slowdown lasts.
        duration_secs: f64,
    },
    /// The KV migration currently in flight *into* this decode instance
    /// fails and must be retried (dropped connection, buffer corruption).
    KvTransferFailure {
        /// Index of the pulling decode instance.
        instance: usize,
    },
    /// Planned maintenance: stop dispatching new work to the instance,
    /// let everything in flight complete, then take it down for
    /// `maintenance_secs` before recovery (drain-before-kill).
    Drain {
        /// Index of the instance under maintenance.
        instance: usize,
        /// Length of the maintenance window once drained.
        maintenance_secs: f64,
    },
}

impl FaultKind {
    /// The instance the fault targets, when it targets one.
    #[must_use]
    pub fn instance(&self) -> Option<usize> {
        match *self {
            FaultKind::InstanceCrash { instance, .. }
            | FaultKind::GpuLoss { instance }
            | FaultKind::Straggler { instance, .. }
            | FaultKind::KvTransferFailure { instance }
            | FaultKind::Drain { instance, .. } => Some(instance),
            FaultKind::LinkDegradation { .. } => None,
        }
    }

    /// Short stable name for reports and metrics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::InstanceCrash { .. } => "instance_crash",
            FaultKind::GpuLoss { .. } => "gpu_loss",
            FaultKind::LinkDegradation { .. } => "link_degradation",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::KvTransferFailure { .. } => "kv_transfer_failure",
            FaultKind::Drain { .. } => "drain",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Injection time, sim-clock seconds.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Knobs for [`FaultSchedule::storm`].
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Storm window: faults land uniformly in `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Number of faults to draw.
    pub count: usize,
    /// Number of instances faults may target.
    pub instances: usize,
    /// Mean crash downtime (uniform in `[0.5×, 1.5×]`).
    pub mean_downtime_secs: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            horizon_secs: 60.0,
            count: 6,
            instances: 2,
            mean_downtime_secs: 5.0,
        }
    }
}

/// A time-sorted script of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// An empty schedule (a healthy run).
    #[must_use]
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds one fault, keeping the script time-sorted (stable for equal
    /// times, so scripted order breaks ties deterministically).
    pub fn push(&mut self, at: f64, kind: FaultKind) -> &mut Self {
        let idx = self
            .faults
            .partition_point(|f| f.at <= at || (f.at.is_nan() && at.is_nan()));
        self.faults.insert(idx, Fault { at, kind });
        self
    }

    /// Builder-style [`FaultSchedule::push`].
    #[must_use]
    pub fn with(mut self, at: f64, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Generates a seeded storm: `cfg.count` faults with kinds, victims,
    /// times, and magnitudes all drawn from independent stream-split
    /// children of `seed`, so the storm is a pure function of
    /// `(seed, cfg)`.
    #[must_use]
    pub fn storm(seed: u64, cfg: &StormConfig) -> Self {
        let root = SimRng::seed(seed).split("fault-storm");
        let mut times = root.split("times");
        let mut kinds = root.split("kinds");
        let mut victims = root.split("victims");
        let mut magnitudes = root.split("magnitudes");
        let mut schedule = FaultSchedule::new();
        if cfg.instances == 0 || cfg.count == 0 {
            return schedule;
        }
        for _ in 0..cfg.count {
            let at = times.uniform() * cfg.horizon_secs;
            let instance = victims.below(cfg.instances as u64) as usize;
            let kind = match kinds.below(5) {
                0 => FaultKind::InstanceCrash {
                    instance,
                    downtime_secs: cfg.mean_downtime_secs * (0.5 + magnitudes.uniform()),
                },
                1 => FaultKind::Straggler {
                    instance,
                    factor: 1.5 + 2.0 * magnitudes.uniform(),
                    duration_secs: cfg.mean_downtime_secs * (0.5 + magnitudes.uniform()),
                },
                2 => FaultKind::LinkDegradation {
                    factor: 2.0 + 6.0 * magnitudes.uniform(),
                    duration_secs: cfg.mean_downtime_secs * (0.5 + magnitudes.uniform()),
                },
                3 => FaultKind::KvTransferFailure { instance },
                _ => FaultKind::Drain {
                    instance,
                    maintenance_secs: cfg.mean_downtime_secs * (0.5 + magnitudes.uniform()),
                },
            };
            schedule.push(at, kind);
        }
        schedule
    }

    /// The faults, ascending by injection time.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order() {
        let mut s = FaultSchedule::new();
        s.push(5.0, FaultKind::GpuLoss { instance: 0 });
        s.push(1.0, FaultKind::KvTransferFailure { instance: 1 });
        s.push(
            3.0,
            FaultKind::LinkDegradation {
                factor: 2.0,
                duration_secs: 1.0,
            },
        );
        let times: Vec<f64> = s.faults().iter().map(|f| f.at).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_times_keep_push_order() {
        let mut s = FaultSchedule::new();
        s.push(2.0, FaultKind::GpuLoss { instance: 0 });
        s.push(2.0, FaultKind::GpuLoss { instance: 1 });
        let victims: Vec<_> = s.faults().iter().map(|f| f.kind.instance()).collect();
        assert_eq!(victims, vec![Some(0), Some(1)]);
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let cfg = StormConfig::default();
        let a = FaultSchedule::storm(7, &cfg);
        let b = FaultSchedule::storm(7, &cfg);
        assert_eq!(a.faults(), b.faults());
        let c = FaultSchedule::storm(8, &cfg);
        assert_ne!(a.faults(), c.faults());
        assert_eq!(a.len(), cfg.count);
        for f in a.faults() {
            assert!(f.at >= 0.0 && f.at < cfg.horizon_secs);
            if let Some(i) = f.kind.instance() {
                assert!(i < cfg.instances);
            }
        }
    }

    #[test]
    fn empty_storm_configs_yield_empty_schedules() {
        let cfg = StormConfig {
            instances: 0,
            ..StormConfig::default()
        };
        assert!(FaultSchedule::storm(1, &cfg).is_empty());
    }
}
