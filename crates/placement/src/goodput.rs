//! Goodput measurement: binary search for the maximum rate meeting the
//! SLO attainment target.
//!
//! §4.1: "DistServe simply enumerates the placements via binary search and
//! finds the maximum rate that meets the SLO attainment target with
//! simulation trials." [`max_goodput`] is that search, generic over the
//! attainment probe (a phase simulator or the full-system simulator).

/// Number of requests a goodput probe at `rate` should simulate.
///
/// Short bursts overstate goodput: a whole small trace can fit in one
/// decoding batch, so queueing never reaches steady state. Probes
/// therefore cover at least [`PROBE_SECS`] of simulated arrivals (capped
/// to keep the search bounded), never fewer than `min_requests`.
#[must_use]
pub fn probe_count(rate: f64, min_requests: usize) -> usize {
    probe_count_with(rate, min_requests, PROBE_SECS)
}

/// [`probe_count`] with an explicit probe duration.
#[must_use]
pub fn probe_count_with(rate: f64, min_requests: usize, probe_secs: f64) -> usize {
    let by_duration = (rate * probe_secs) as usize;
    by_duration.clamp(min_requests, MAX_PROBE_REQUESTS)
}

/// Simulated seconds of arrivals per goodput probe.
pub const PROBE_SECS: f64 = 60.0;

/// Upper bound on requests per probe (keeps the search bounded even when
/// the doubling phase visits very high rates).
pub const MAX_PROBE_REQUESTS: usize = 8_000;

/// Finds the largest rate `r` (requests/second) with `probe(r) >= target`.
///
/// `probe` must be (approximately) non-increasing in the rate. The search
/// doubles upward from `hi_start` to bracket the knee, then bisects for
/// `iters` rounds. Returns `0.0` when even the smallest probed rate fails.
///
/// # Examples
///
/// ```
/// use distserve_placement::max_goodput;
///
/// // A synthetic system that degrades linearly and crosses 90% at 5 rps.
/// let probe = |r: f64| (1.0 - r / 50.0).max(0.0);
/// let g = max_goodput(probe, 0.9, 1.0, 20);
/// assert!((g - 5.0).abs() < 0.05, "goodput {g}");
/// ```
#[must_use]
pub fn max_goodput(
    mut probe: impl FnMut(f64) -> f64,
    target: f64,
    hi_start: f64,
    iters: u32,
) -> f64 {
    debug_assert!(target > 0.0 && target <= 1.0);
    let hi_start = hi_start.max(1e-3);

    // Bracket: find a passing lower bound and a failing upper bound.
    let mut lo;
    let mut hi = hi_start;
    if probe(hi) >= target {
        lo = hi;
        loop {
            hi *= 2.0;
            if hi > 65_536.0 {
                // Effectively unbounded for any realistic serving rate.
                return lo;
            }
            if probe(hi) < target {
                break;
            }
            lo = hi;
        }
    } else {
        // Even hi_start fails; search downward for any passing rate.
        lo = 0.0;
        let mut probe_rate = hi_start / 2.0;
        while probe_rate > hi_start / 1024.0 {
            if probe(probe_rate) >= target {
                lo = probe_rate;
                break;
            }
            hi = probe_rate;
            probe_rate /= 2.0;
        }
        if lo == 0.0 {
            return 0.0;
        }
    }

    // Bisection.
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if probe(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_step_knee() {
        // Hard step at 7.3 rps.
        let g = max_goodput(|r| if r <= 7.3 { 1.0 } else { 0.0 }, 0.9, 1.0, 24);
        assert!((g - 7.3).abs() < 0.01, "goodput {g}");
    }

    #[test]
    fn zero_when_always_failing() {
        assert_eq!(max_goodput(|_| 0.0, 0.9, 1.0, 16), 0.0);
    }

    #[test]
    fn caps_unbounded_probes() {
        let g = max_goodput(|_| 1.0, 0.9, 1.0, 16);
        assert!(g >= 32_768.0, "unbounded goodput {g}");
    }

    #[test]
    fn finds_knee_below_start() {
        // Knee at 0.2 rps, far below the 1.0 starting bracket.
        let g = max_goodput(|r| if r <= 0.2 { 1.0 } else { 0.5 }, 0.9, 1.0, 24);
        assert!((g - 0.2).abs() < 0.01, "goodput {g}");
    }

    #[test]
    fn probe_count_is_bounded() {
        let mut count = 0;
        let _ = max_goodput(
            |r| {
                count += 1;
                if r < 3.0 {
                    1.0
                } else {
                    0.0
                }
            },
            0.9,
            1.0,
            12,
        );
        assert!(count <= 20, "used {count} probes");
    }
}
