//! Service-level objective specifications.

use serde::{Deserialize, Serialize};

/// A latency SLO pair with an attainment target.
///
/// # Examples
///
/// ```
/// use distserve_placement::SloSpec;
///
/// // OPT-13B chatbot (Table 1): TTFT 0.2 s, TPOT 0.1 s, 90% attainment.
/// let slo = SloSpec::new(0.2, 0.1);
/// let tight = slo.scaled(0.5);
/// assert_eq!(tight.ttft, 0.1);
/// assert_eq!(tight.tpot, 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Time-to-first-token bound, seconds.
    pub ttft: f64,
    /// Time-per-output-token bound, seconds.
    pub tpot: f64,
    /// Required fraction of requests meeting both bounds (default 0.9).
    pub target: f64,
}

impl SloSpec {
    /// Creates an SLO with the paper's default 90% attainment target.
    ///
    /// # Panics
    ///
    /// Panics unless both bounds are strictly positive.
    #[must_use]
    pub fn new(ttft: f64, tpot: f64) -> Self {
        assert!(ttft > 0.0 && tpot > 0.0, "SLO bounds must be positive");
        SloSpec {
            ttft,
            tpot,
            target: 0.9,
        }
    }

    /// Overrides the attainment target.
    ///
    /// # Panics
    ///
    /// Panics unless `target` lies in `(0, 1]`.
    #[must_use]
    pub fn with_target(mut self, target: f64) -> Self {
        assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
        self.target = target;
        self
    }

    /// Scales both latency bounds by `scale` (Figure 8's *SLO Scale*
    /// sweep: smaller is more stringent).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is strictly positive.
    #[must_use]
    pub fn scaled(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "SLO scale must be positive");
        SloSpec {
            ttft: self.ttft * scale,
            tpot: self.tpot * scale,
            target: self.target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_scaling() {
        let slo = SloSpec::new(0.4, 0.1);
        assert_eq!(slo.target, 0.9);
        let loose = slo.scaled(2.0);
        assert_eq!(loose.ttft, 0.8);
        assert_eq!(loose.tpot, 0.2);
        assert_eq!(loose.target, 0.9);
    }

    #[test]
    fn target_override() {
        let slo = SloSpec::new(1.0, 1.0).with_target(0.99);
        assert_eq!(slo.target, 0.99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let _ = SloSpec::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn bad_target_rejected() {
        let _ = SloSpec::new(0.1, 0.1).with_target(1.5);
    }
}
