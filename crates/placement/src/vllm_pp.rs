//! "vLLM++" — parallelism search for the colocated baseline (§6.4).
//!
//! The ablation of Figure 11 asks whether vLLM's gap to DistServe is just
//! a badly chosen parallelism: vLLM++ enumerates the tensor-parallel
//! degrees the baseline supports (vLLM has no inter-op parallelism),
//! measures each candidate's goodput with the colocated simulator, and
//! keeps the per-GPU best. The paper finds vLLM++ ties plain vLLM on
//! OPT-13B — interference, not parallelism, is the bottleneck.

use crossbeam::thread;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use distserve_cluster::Cluster;
use distserve_engine::{InstanceRole, InstanceSpec, ServingSim, SimConfig};
use distserve_models::{CostModel, DType, ModelArch, ParallelismConfig};

use crate::alg1::SearchParams;
use crate::goodput::{max_goodput, probe_count_with};
use crate::slo::SloSpec;
use crate::source::TraceSource;

/// A colocated placement: one parallelism config, replicated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocPlacement {
    /// Parallelism of each colocated instance.
    pub par: ParallelismConfig,
    /// Goodput of one instance, requests/second.
    pub goodput: f64,
    /// Replicas to deploy.
    pub num_replicas: u32,
}

impl ColocPlacement {
    /// Total GPUs deployed.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.par.num_gpus() * self.num_replicas
    }

    /// Per-GPU goodput of one replica.
    #[must_use]
    pub fn per_gpu_goodput(&self) -> f64 {
        self.goodput / f64::from(self.par.num_gpus())
    }
}

/// Builds a single colocated instance spec on node 0 of `cluster`.
///
/// # Errors
///
/// Returns a message if the config does not fit one node per stage.
pub fn coloc_spec(cluster: &Cluster, par: ParallelismConfig) -> Result<InstanceSpec, String> {
    if par.tp > cluster.gpus_per_node() {
        return Err(format!(
            "tp={} exceeds node width {}",
            par.tp,
            cluster.gpus_per_node()
        ));
    }
    if par.pp > cluster.num_nodes() * (cluster.gpus_per_node() / par.tp) {
        return Err("not enough GPU groups for the pipeline stages".into());
    }
    // Pack stages node-major: each stage's TP group on one node.
    let per_node = cluster.gpus_per_node() / par.tp;
    let stages = (0..par.pp)
        .map(|s| {
            let node = s / per_node;
            let base = (s % per_node) * par.tp;
            (0..par.tp).map(|k| cluster.gpu(node, base + k)).collect()
        })
        .collect();
    InstanceSpec::new(InstanceRole::Colocated, par, stages)
}

/// Measures a colocated config's attainment at `rate`.
#[allow(clippy::too_many_arguments)]
fn coloc_attainment(
    cost: &dyn CostModel,
    cluster: &Cluster,
    arch: &ModelArch,
    dtype: DType,
    par: ParallelismConfig,
    source: &dyn TraceSource,
    slo: SloSpec,
    rate: f64,
    params: &SearchParams,
) -> f64 {
    let Ok(spec) = coloc_spec(cluster, par) else {
        return 0.0;
    };
    let mut cfg = SimConfig::new(arch.clone());
    cfg.dtype = dtype;
    cfg.seed = params.seed;
    let Ok(sim) = ServingSim::new(cfg, cost, cluster, vec![spec]) else {
        return 0.0;
    };
    let n = probe_count_with(rate, params.probe_requests, params.probe_secs);
    let trace = source.make_trace(rate, n, params.seed);
    sim.run(&trace).attainment(slo.ttft, slo.tpot)
}

/// Measures the goodput of a *fixed* colocated parallelism — this is
/// plain vLLM with the paper's default settings.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn vllm_goodput(
    cost: &dyn CostModel,
    cluster: &Cluster,
    arch: &ModelArch,
    dtype: DType,
    par: ParallelismConfig,
    source: &dyn TraceSource,
    slo: SloSpec,
    params: &SearchParams,
) -> f64 {
    max_goodput(
        |r| coloc_attainment(cost, cluster, arch, dtype, par, source, slo, r, params),
        slo.target,
        0.5,
        params.search_iters,
    )
}

/// Runs the vLLM++ search over tensor-parallel degrees.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn vllm_plus_plus(
    cost: &dyn CostModel,
    cluster: &Cluster,
    arch: &ModelArch,
    dtype: DType,
    source: &dyn TraceSource,
    slo: SloSpec,
    rate: f64,
    params: &SearchParams,
) -> Option<ColocPlacement> {
    // vLLM supports only intra-op parallelism (§6.1), so pp = 1.
    let candidates: Vec<ParallelismConfig> =
        ParallelismConfig::enumerate(arch, cluster.gpu_spec(), dtype, params.max_tp, 1);
    if candidates.is_empty() {
        return None;
    }
    let results: Mutex<Vec<(ParallelismConfig, f64)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    let workers = params.worker_count(candidates.len());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    let idx = *n;
                    *n += 1;
                    idx
                };
                if idx >= candidates.len() {
                    break;
                }
                let par = candidates[idx];
                let g = vllm_goodput(cost, cluster, arch, dtype, par, source, slo, params);
                results.lock().push((par, g));
            });
        }
    })
    .expect("search workers do not panic");

    let mut results = results.into_inner();
    results.sort_by_key(|(par, _)| (par.tp, par.pp));
    let (par, goodput) = results.into_iter().max_by(|a, b| {
        (a.1 / f64::from(a.0.num_gpus())).total_cmp(&(b.1 / f64::from(b.0.num_gpus())))
    })?;
    if goodput <= 0.0 {
        return None;
    }
    Some(ColocPlacement {
        par,
        goodput,
        num_replicas: (rate / goodput).ceil().max(1.0) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distserve_models::{OptModel, RooflineModel};
    use distserve_workload::datasets::FixedLengths;

    fn quick_params() -> SearchParams {
        SearchParams {
            max_tp: 4,
            max_pp: 1,
            probe_requests: 64,
            probe_secs: 12.0,
            search_iters: 4,
            threads: 4,
            seed: 0,
        }
    }

    fn source() -> FixedLengths {
        FixedLengths {
            input_len: 512,
            output_len: 64,
        }
    }

    #[test]
    fn coloc_spec_shapes() {
        let cluster = Cluster::paper_testbed();
        let spec = coloc_spec(&cluster, ParallelismConfig::new(4, 2)).unwrap();
        assert_eq!(spec.stages.len(), 2);
        assert_eq!(spec.stages[0].len(), 4);
        // Both stages fit on node 0 (two groups of four).
        assert!(spec.stages.iter().flatten().all(|g| g.node.0 == 0));
        assert!(coloc_spec(&cluster, ParallelismConfig::new(16, 1)).is_err());
    }

    #[test]
    fn vllm_plus_plus_finds_something_for_13b() {
        let cost = RooflineModel::a100();
        let cluster = Cluster::paper_testbed();
        let arch = OptModel::Opt13B.arch();
        let slo = SloSpec::new(0.25, 0.1);
        let plm = vllm_plus_plus(
            &cost,
            &cluster,
            &arch,
            DType::F16,
            &source(),
            slo,
            2.0,
            &quick_params(),
        )
        .expect("13B fits");
        assert!(plm.goodput > 0.0);
        assert!(plm.num_replicas >= 1);
        assert!(plm.per_gpu_goodput() > 0.0);
    }

    #[test]
    fn fixed_vllm_goodput_positive() {
        let cost = RooflineModel::a100();
        let cluster = Cluster::paper_testbed();
        let arch = OptModel::Opt13B.arch();
        let slo = SloSpec::new(0.25, 0.1);
        let g = vllm_goodput(
            &cost,
            &cluster,
            &arch,
            DType::F16,
            ParallelismConfig::SINGLE,
            &source(),
            slo,
            &quick_params(),
        );
        assert!(g > 0.0, "vLLM goodput {g}");
        // The colocated baseline is interference-bound well below the
        // prefill-only capacity (~1/0.08 ≈ 12 rps).
        assert!(g < 12.0, "vLLM goodput suspiciously high: {g}");
    }
}
