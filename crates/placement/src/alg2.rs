//! Algorithm 2 — placement for low node-affinity clusters (§4.2).
//!
//! When cross-node bandwidth is scarce (the paper's 25 Gbps testbed), KV
//! caches must ride NVLink. The planner therefore considers *units*: one
//! prefill instance and one decoding instance packed into a single node,
//! so every transfer path stays intra-node. For each candidate intra-node
//! division of the node's GPUs between the two instances, the *full*
//! serving simulator (interference-free but transfer-aware) estimates the
//! unit's goodput; the best per-GPU unit is replicated to meet the target
//! rate.
//!
//! This generalizes the paper's same-stage-segment formulation: any pair
//! of parallelism configs whose GPU totals fit one node keeps transfers
//! local, which is the actual constraint the algorithm enforces (and is
//! how the Appendix-B placements like prefill `tp4pp1` + decode `tp2pp2`
//! arise).

use crossbeam::thread;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use distserve_cluster::Cluster;
use distserve_engine::{InstanceRole, InstanceSpec, ServingSim, SimConfig};
use distserve_models::{CostModel, DType, ModelArch, ParallelismConfig};

use crate::alg1::SearchParams;
use crate::goodput::{max_goodput, probe_count_with};
use crate::slo::SloSpec;
use crate::source::TraceSource;

/// Algorithm 2's output: a replicated single-node unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LowPlacement {
    /// Prefill instance parallelism within the unit.
    pub prefill_par: ParallelismConfig,
    /// Decoding instance parallelism within the unit.
    pub decode_par: ParallelismConfig,
    /// Goodput of one unit, requests/second.
    pub unit_goodput: f64,
    /// Units to deploy (`⌈R / unit_goodput⌉`).
    pub num_units: u32,
}

impl LowPlacement {
    /// GPUs per unit.
    #[must_use]
    pub fn unit_gpus(&self) -> u32 {
        self.prefill_par.num_gpus() + self.decode_par.num_gpus()
    }

    /// Total GPUs deployed.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.unit_gpus() * self.num_units
    }

    /// Per-GPU goodput of one unit — Algorithm 2's objective.
    #[must_use]
    pub fn per_gpu_goodput(&self) -> f64 {
        self.unit_goodput / f64::from(self.unit_gpus())
    }
}

/// Whether a unit must be *segment-paired*: too large for one node, so
/// corresponding pipeline stages of the two instances share a node
/// instead (the paper's instance-segment arrangement for e.g. OPT-175B).
#[must_use]
pub fn unit_is_segment_paired(
    cluster: &Cluster,
    prefill_par: ParallelismConfig,
    decode_par: ParallelismConfig,
) -> bool {
    prefill_par.num_gpus() + decode_par.num_gpus() > cluster.gpus_per_node()
}

/// Builds the unit's instance specs on `cluster`, starting at `node`.
///
/// Two layouts keep every KV transfer on NVLink:
///
/// * **Single-node unit** — both whole instances fit one node.
/// * **Segment-paired unit** — the instances share a pipeline depth and
///   stage `s` of *both* lives on node `node + s` (§4.2's "colocating
///   prefill and decoding segments of the same stage within a single
///   node"). Required when the model is too large for a one-node pair.
///
/// # Errors
///
/// Returns a message if neither layout applies (per-node width exceeded,
/// mismatched pipeline depths for a segment-paired unit, or not enough
/// nodes).
pub fn unit_specs_on_node(
    cluster: &Cluster,
    node: u32,
    prefill_par: ParallelismConfig,
    decode_par: ParallelismConfig,
) -> Result<Vec<InstanceSpec>, String> {
    let m = cluster.gpus_per_node();
    if !unit_is_segment_paired(cluster, prefill_par, decode_par) {
        // Single-node layout: prefill GPUs first, then decode GPUs.
        let mut cursor = 0;
        let mut take = |par: ParallelismConfig| -> Vec<Vec<_>> {
            (0..par.pp)
                .map(|_| {
                    (0..par.tp)
                        .map(|_| {
                            let g = cluster.gpu(node, cursor);
                            cursor += 1;
                            g
                        })
                        .collect()
                })
                .collect()
        };
        let p_stages = take(prefill_par);
        let d_stages = take(decode_par);
        return Ok(vec![
            InstanceSpec::new(InstanceRole::Prefill, prefill_par, p_stages)?,
            InstanceSpec::new(InstanceRole::Decode, decode_par, d_stages)?,
        ]);
    }
    // Segment-paired layout.
    if prefill_par.pp != decode_par.pp {
        return Err(format!(
            "segment-paired unit needs equal pipeline depths, got {} vs {}",
            prefill_par.pp, decode_par.pp
        ));
    }
    if prefill_par.tp + decode_par.tp > m {
        return Err(format!(
            "segment pair {}+{} GPUs exceeds node width {m}",
            prefill_par.tp, decode_par.tp
        ));
    }
    if node + prefill_par.pp > cluster.num_nodes() {
        return Err(format!(
            "unit spans {} nodes from node {node}, cluster has {}",
            prefill_par.pp,
            cluster.num_nodes()
        ));
    }
    let p_stages = (0..prefill_par.pp)
        .map(|s| {
            (0..prefill_par.tp)
                .map(|k| cluster.gpu(node + s, k))
                .collect()
        })
        .collect();
    let d_stages = (0..decode_par.pp)
        .map(|s| {
            (0..decode_par.tp)
                .map(|k| cluster.gpu(node + s, prefill_par.tp + k))
                .collect()
        })
        .collect();
    Ok(vec![
        InstanceSpec::new(InstanceRole::Prefill, prefill_par, p_stages)?,
        InstanceSpec::new(InstanceRole::Decode, decode_par, d_stages)?,
    ])
}

/// Builds the unit's instance specs starting at node 0.
///
/// # Errors
///
/// See [`unit_specs_on_node`].
pub fn unit_specs(
    cluster: &Cluster,
    prefill_par: ParallelismConfig,
    decode_par: ParallelismConfig,
) -> Result<Vec<InstanceSpec>, String> {
    unit_specs_on_node(cluster, 0, prefill_par, decode_par)
}

/// Measures one unit's SLO attainment at `rate` with the full simulator.
#[allow(clippy::too_many_arguments)]
fn unit_attainment(
    cost: &dyn CostModel,
    cluster: &Cluster,
    arch: &ModelArch,
    dtype: DType,
    prefill_par: ParallelismConfig,
    decode_par: ParallelismConfig,
    source: &dyn TraceSource,
    slo: SloSpec,
    rate: f64,
    params: &SearchParams,
) -> f64 {
    let Ok(specs) = unit_specs(cluster, prefill_par, decode_par) else {
        return 0.0;
    };
    let mut cfg = SimConfig::new(arch.clone());
    cfg.dtype = dtype;
    cfg.seed = params.seed;
    let Ok(sim) = ServingSim::new(cfg, cost, cluster, specs) else {
        return 0.0;
    };
    let n = probe_count_with(rate, params.probe_requests, params.probe_secs);
    let trace = source.make_trace(rate, n, params.seed);
    let outcome = sim.run(&trace);
    outcome.attainment(slo.ttft, slo.tpot)
}

/// Runs Algorithm 2. Returns `None` if no unit configuration fits a node.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn low_affinity_placement(
    cost: &dyn CostModel,
    cluster: &Cluster,
    arch: &ModelArch,
    dtype: DType,
    source: &dyn TraceSource,
    slo: SloSpec,
    rate: f64,
    params: &SearchParams,
) -> Option<LowPlacement> {
    let m = cluster.gpus_per_node();
    // Enumerate unit divisions subject to NVLink-only transfers: either
    // both instances fit one node, or (for big models) the instances
    // share a pipeline depth and each stage pair shares a node.
    let singles =
        ParallelismConfig::enumerate(arch, cluster.gpu_spec(), dtype, m, cluster.num_nodes());
    let mut combos: Vec<(ParallelismConfig, ParallelismConfig)> = Vec::new();
    for &p in &singles {
        for &d in &singles {
            let single_node = p.num_gpus() + d.num_gpus() <= m && p.pp == 1 && d.pp == 1;
            let segment_paired =
                p.pp == d.pp && p.pp > 1 && p.tp + d.tp <= m && p.pp <= cluster.num_nodes();
            // Also allow small pipelined pairs inside one node.
            let small_pipelined = p.num_gpus() + d.num_gpus() <= m && (p.pp > 1 || d.pp > 1);
            if single_node || segment_paired || small_pipelined {
                combos.push((p, d));
            }
        }
    }
    combos.dedup();
    if combos.is_empty() {
        return None;
    }

    let results: Mutex<Vec<(ParallelismConfig, ParallelismConfig, f64)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    let workers = params.worker_count(combos.len());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    let idx = *n;
                    *n += 1;
                    idx
                };
                if idx >= combos.len() {
                    break;
                }
                let (p, d) = combos[idx];
                let goodput = max_goodput(
                    |r| unit_attainment(cost, cluster, arch, dtype, p, d, source, slo, r, params),
                    slo.target,
                    0.5,
                    params.search_iters,
                );
                results.lock().push((p, d, goodput));
            });
        }
    })
    .expect("search workers do not panic");

    let mut results = results.into_inner();
    results.sort_by_key(|(p, d, _)| (p.tp, p.pp, d.tp, d.pp));
    let (p, d, goodput) = results.into_iter().max_by(|a, b| {
        let ga = a.2 / f64::from(a.0.num_gpus() + a.1.num_gpus());
        let gb = b.2 / f64::from(b.0.num_gpus() + b.1.num_gpus());
        ga.total_cmp(&gb)
    })?;
    if goodput <= 0.0 {
        return None;
    }
    Some(LowPlacement {
        prefill_par: p,
        decode_par: d,
        unit_goodput: goodput,
        num_units: (rate / goodput).ceil().max(1.0) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distserve_models::{OptModel, RooflineModel};
    use distserve_workload::datasets::FixedLengths;

    fn quick_params() -> SearchParams {
        SearchParams {
            max_tp: 4,
            max_pp: 2,
            probe_requests: 64,
            probe_secs: 12.0,
            search_iters: 4,
            threads: 4,
            seed: 0,
        }
    }

    fn source() -> FixedLengths {
        FixedLengths {
            input_len: 512,
            output_len: 64,
        }
    }

    #[test]
    fn unit_specs_pack_one_node() {
        let cluster = Cluster::paper_testbed();
        let specs = unit_specs(
            &cluster,
            ParallelismConfig::new(4, 1),
            ParallelismConfig::new(2, 2),
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        let all: Vec<_> = specs
            .iter()
            .flat_map(|s| s.stages.iter().flatten())
            .collect();
        assert_eq!(all.len(), 8);
        assert!(all.iter().all(|g| g.node.0 == 0));
        // No GPU shared between the two instances.
        let mut unique = all.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn unit_too_large_rejected() {
        let cluster = Cluster::paper_testbed(); // 8 GPUs per node.
        assert!(unit_specs(
            &cluster,
            ParallelismConfig::new(8, 1),
            ParallelismConfig::new(1, 1),
        )
        .is_err());
    }

    #[test]
    fn finds_unit_for_13b_on_testbed() {
        let cost = RooflineModel::a100();
        let cluster = Cluster::paper_testbed();
        let arch = OptModel::Opt13B.arch();
        let slo = SloSpec::new(0.25, 0.1);
        let plm = low_affinity_placement(
            &cost,
            &cluster,
            &arch,
            DType::F16,
            &source(),
            slo,
            8.0,
            &quick_params(),
        )
        .expect("13B fits");
        assert!(plm.unit_goodput > 0.0);
        assert!(plm.unit_gpus() <= 8);
        assert!(plm.num_units >= 1);
        assert!(
            plm.unit_goodput * f64::from(plm.num_units) >= 8.0 * 0.9,
            "replication misses rate"
        );
    }

    #[test]
    fn segment_paired_unit_shape() {
        // OPT-175B style: stage pairs across nodes, prefill tp3 + decode
        // tp4, pp = 3 — the Appendix-B 175B placement.
        let cluster = Cluster::paper_testbed();
        let p = ParallelismConfig::new(3, 3);
        let d = ParallelismConfig::new(4, 3);
        assert!(unit_is_segment_paired(&cluster, p, d));
        let specs = unit_specs(&cluster, p, d).unwrap();
        assert_eq!(specs.len(), 2);
        for s in 0..3usize {
            let pn = specs[0].stages[s][0].node;
            let dn = specs[1].stages[s][0].node;
            // Corresponding stages share a node (NVLink transfers only).
            assert_eq!(pn, dn, "stage {s} split across nodes");
            assert!(specs[0].stages[s].iter().all(|g| g.node == pn));
            assert!(specs[1].stages[s].iter().all(|g| g.node == dn));
        }
        // Mismatched depths are rejected for oversized units.
        assert!(unit_specs(
            &cluster,
            ParallelismConfig::new(3, 3),
            ParallelismConfig::new(4, 1),
        )
        .is_err());
    }

    #[test]
    fn finds_unit_for_175b_via_segments() {
        let cost = RooflineModel::a100();
        let cluster = Cluster::paper_testbed();
        let arch = OptModel::Opt175B.arch();
        let slo = SloSpec::new(4.0, 0.2); // Table 1's 175B chatbot SLO.
        let params = SearchParams {
            max_tp: 8,
            max_pp: 4,
            probe_requests: 64,
            probe_secs: 10.0,
            search_iters: 3,
            threads: 0,
            seed: 0,
        };
        let plm = low_affinity_placement(
            &cost,
            &cluster,
            &arch,
            DType::F16,
            &source(),
            slo,
            1.0,
            &params,
        )
        .expect("175B places via segment pairing");
        assert!(plm.unit_goodput > 0.0);
        // The unit cannot fit one node: it must be segment-paired.
        assert!(plm.unit_gpus() > cluster.gpus_per_node());
        assert_eq!(plm.prefill_par.pp, plm.decode_par.pp);
    }

    #[test]
    fn per_gpu_accounting() {
        let plm = LowPlacement {
            prefill_par: ParallelismConfig::new(2, 1),
            decode_par: ParallelismConfig::new(1, 1),
            unit_goodput: 6.0,
            num_units: 3,
        };
        assert_eq!(plm.unit_gpus(), 3);
        assert_eq!(plm.total_gpus(), 9);
        assert!((plm.per_gpu_goodput() - 2.0).abs() < 1e-12);
    }
}
