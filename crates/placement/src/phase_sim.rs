//! Single-phase simulators: the paper's `simu_prefill` and `simu_decode`.
//!
//! Algorithm 1 evaluates candidate parallelism configurations for each
//! phase *in isolation*: the prefill simulator measures TTFT attainment of
//! a prefill-only instance under Poisson arrivals; the decoding simulator
//! measures TPOT attainment of a decoding-only instance that receives KV
//! caches for free (the other phase is assumed elsewhere and ideal). Both
//! reuse the engine's pipeline-occupancy model and batching policies, so
//! phase-level estimates are consistent with the full-system simulator.

use std::collections::VecDeque;

use distserve_engine::batching::{PrefillItem, PrefillQueue};
use distserve_engine::pipeline::Pipeline;
use distserve_engine::KvBlockManager;
use distserve_models::{
    CostModel, DType, DecodeBatch, GpuSpec, ModelArch, ParallelismConfig, PrefillBatch,
};
use distserve_simcore::{EventQueue, SimTime, Summary};
use distserve_telemetry::{metrics, Event, LifecycleEvent, Slice, TelemetrySink, NOOP};
use distserve_workload::{RequestId, Trace};

/// Emits one request lifecycle event into `sink` at sim time `t`.
fn emit(sink: &dyn TelemetrySink, id: RequestId, t: SimTime, kind: LifecycleEvent) {
    sink.event(Event {
        request: id.0,
        tenant: 0,
        time_s: t.as_secs(),
        kind,
    });
}

/// Shared knobs for the phase simulators.
#[derive(Debug, Clone)]
pub struct PhaseSimConfig {
    /// Model served.
    pub arch: ModelArch,
    /// Precision.
    pub dtype: DType,
    /// GPU description (memory sizing for the decode simulator).
    pub gpu: GpuSpec,
    /// Prefill batching token budget `L_m`.
    pub l_m: u32,
    /// Fraction of GPU memory reserved beyond weights.
    pub mem_margin: f64,
    /// PagedAttention block size.
    pub block_size: u32,
    /// Maximum decoding batch per micro-batch group.
    pub max_decode_batch: usize,
}

impl PhaseSimConfig {
    /// Defaults matching the engine's [`distserve_engine::SimConfig`].
    #[must_use]
    pub fn new(arch: ModelArch, gpu: GpuSpec) -> Self {
        PhaseSimConfig {
            arch,
            dtype: DType::F16,
            gpu,
            l_m: 512,
            mem_margin: 0.10,
            block_size: 16,
            max_decode_batch: 256,
        }
    }
}

/// Fraction of requests in `trace` meeting `ttft_slo` when served by one
/// prefill-only instance with parallelism `par` (the paper's
/// `simu_prefill`).
#[must_use]
pub fn prefill_attainment(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
    ttft_slo: f64,
) -> f64 {
    let s = prefill_ttfts(cost, cfg, par, trace);
    if s.is_empty() {
        return 0.0;
    }
    s.fraction_at_most(ttft_slo)
}

/// Per-request TTFTs of a prefill-only instance (the figure harnesses
/// plot percentiles of this).
#[must_use]
pub fn prefill_ttfts(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
) -> Summary {
    prefill_ttfts_with_sink(cost, cfg, par, trace, &NOOP)
}

/// [`prefill_ttfts`] with telemetry routed into `sink`: lifecycle events
/// per request and one `"prefill"` slice per batch on track 0.
#[must_use]
pub fn prefill_ttfts_with_sink(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
    sink: &dyn TelemetrySink,
) -> Summary {
    let mut out = Summary::new();
    if sink.enabled() {
        sink.declare_track(0, &format!("phase-sim prefill {par}"));
    }
    if trace.is_empty() {
        return out;
    }
    #[derive(Debug)]
    enum Ev {
        Arrive(usize),
        Free,
        Done(Vec<(RequestId, SimTime)>),
    }
    let mut queue = PrefillQueue::new(cfg.l_m);
    let mut pipeline = Pipeline::new(par.pp);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut arrivals: Vec<SimTime> = Vec::with_capacity(trace.len());
    for (i, r) in trace.requests().iter().enumerate() {
        events.push(r.arrival, Ev::Arrive(i));
        arrivals.push(r.arrival);
    }
    let mut done = 0usize;
    while done < trace.len() {
        let Some((now, ev)) = events.pop() else {
            unreachable!("prefill simulation cannot stall");
        };
        match ev {
            Ev::Arrive(i) => {
                let r = &trace.requests()[i];
                emit(sink, r.id, now, LifecycleEvent::Arrived);
                emit(sink, r.id, now, LifecycleEvent::PrefillQueued);
                queue.push(PrefillItem {
                    id: r.id,
                    input_len: r.input_len,
                });
                queue.emit_depth(sink, 0);
            }
            Ev::Free | Ev::Done(_) => {}
        }
        if let Ev::Done(members) = ev {
            for (id, arrival) in members {
                done += 1;
                emit(sink, id, now, LifecycleEvent::PrefillEnd);
                emit(sink, id, now, LifecycleEvent::Finished);
                out.record(now.since(arrival));
            }
        }
        // Launch as long as stage 0 is free and work is queued.
        while pipeline.stage0_free_at(now) {
            let Some(batch) = queue.form_batch(|_| true) else {
                break;
            };
            let lens: Vec<u32> = batch.iter().map(|b| b.input_len).collect();
            let batch_tokens: u64 = lens.iter().map(|&l| u64::from(l)).sum();
            let stage_time = cost
                .prefill_stage_time(&cfg.arch, par, &PrefillBatch::new(lens))
                .total();
            let commit = pipeline.commit(now, stage_time);
            let members: Vec<(RequestId, SimTime)> = batch
                .iter()
                .map(|b| (b.id, arrivals[b.id.0 as usize]))
                .collect();
            for (id, _) in &members {
                emit(sink, *id, commit.start, LifecycleEvent::PrefillStart);
            }
            sink.slice(Slice {
                track: 0,
                name: "prefill",
                start_s: commit.start.as_secs(),
                end_s: commit.done.as_secs(),
                batch: u32::try_from(members.len()).unwrap_or(u32::MAX),
                tokens: u32::try_from(batch_tokens).unwrap_or(u32::MAX),
            });
            sink.counter_add(metrics::PREFILL_BATCHES, 0, 1);
            sink.counter_add(metrics::PREFILL_TOKENS, 0, batch_tokens);
            sink.observe(metrics::BATCH_SIZE, 0, members.len() as f64);
            // Re-publish depth after the batch drained the queue so the
            // exported gauge can fall back to zero, not just rise.
            queue.emit_depth(sink, 0);
            events.push(commit.done, Ev::Done(members));
            events.push(commit.stage0_free, Ev::Free);
        }
    }
    out
}

/// Fraction of requests in `trace` meeting `tpot_slo` when decoded by one
/// decoding-only instance with parallelism `par`, KV caches arriving for
/// free at the request's arrival instant (the paper's `simu_decode`).
///
/// Single-token requests never reach a decoding instance and are counted
/// as trivially meeting the SLO (TPOT zero).
#[must_use]
pub fn decode_attainment(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
    tpot_slo: f64,
) -> f64 {
    let s = decode_tpots(cost, cfg, par, trace);
    if s.is_empty() {
        return 0.0;
    }
    s.fraction_at_most(tpot_slo)
}

/// Per-request TPOTs of a decoding-only instance. A configuration whose
/// weight shard does not fit returns an empty summary. Single-token
/// requests record a TPOT of zero.
#[must_use]
pub fn decode_tpots(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
) -> Summary {
    decode_tpots_with_sink(cost, cfg, par, trace, &NOOP)
}

/// [`decode_tpots`] with telemetry routed into `sink`: lifecycle events
/// per decoded request and one `"decode"` slice per iteration on track 0.
#[must_use]
pub fn decode_tpots_with_sink(
    cost: &dyn CostModel,
    cfg: &PhaseSimConfig,
    par: ParallelismConfig,
    trace: &Trace,
    sink: &dyn TelemetrySink,
) -> Summary {
    let mut out = Summary::new();
    if trace.is_empty() {
        return out;
    }
    if sink.enabled() {
        sink.declare_track(0, &format!("phase-sim decode {par}"));
    }
    #[derive(Debug)]
    enum Ev {
        Arrive(usize),
        Free,
        Done(usize, Vec<usize>),
    }
    struct Slot {
        arrival: SimTime,
        input_len: u32,
        output_len: u32,
        generated: u32,
    }
    // KV pool sized like the engine does for an instance.
    let shard = par.shard_weight_bytes(&cfg.arch, cfg.dtype);
    let margin = (cfg.gpu.mem_capacity as f64 * cfg.mem_margin) as u64;
    let per_gpu = cfg.gpu.mem_capacity.saturating_sub(shard + margin);
    let pool = per_gpu * u64::from(par.num_gpus());
    if pool == 0 {
        return out;
    }
    let mut kv =
        KvBlockManager::from_bytes(pool, cfg.arch.kv_bytes_per_token(cfg.dtype), cfg.block_size);

    let mut slots: Vec<Slot> = trace
        .requests()
        .iter()
        .map(|r| Slot {
            arrival: r.arrival,
            input_len: r.input_len,
            output_len: r.output_len,
            generated: 1,
        })
        .collect();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); par.pp as usize];
    let mut busy = vec![false; par.pp as usize];
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut pipeline = Pipeline::new(par.pp);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut done = 0usize;
    let mut next_group = 0usize;

    for (i, r) in trace.requests().iter().enumerate() {
        if r.output_len <= 1 {
            // Never decoded: trivially meets TPOT.
            out.record(0.0);
            done += 1;
        } else {
            events.push(r.arrival, Ev::Arrive(i));
        }
    }

    let admit = |kv: &mut KvBlockManager,
                 groups: &mut Vec<Vec<usize>>,
                 slots: &[Slot],
                 i: usize,
                 max_batch: usize|
     -> bool {
        let total = slots[i].input_len + slots[i].output_len;
        let smallest = groups
            .iter_mut()
            .filter(|g| g.len() < max_batch)
            .min_by_key(|g| g.len());
        let Some(group) = smallest else { return false };
        if kv.alloc(RequestId(i as u64), total).is_err() {
            return false;
        }
        group.push(i);
        true
    };

    while done < trace.len() {
        let Some((now, ev)) = events.pop() else {
            unreachable!("decode simulation cannot stall");
        };
        match ev {
            Ev::Arrive(i) => {
                emit(sink, RequestId(i as u64), now, LifecycleEvent::Arrived);
                // FCFS admission: join only behind earlier waiters.
                if waiting.is_empty()
                    && admit(&mut kv, &mut groups, &slots, i, cfg.max_decode_batch)
                {
                    emit(sink, RequestId(i as u64), now, LifecycleEvent::DecodeQueued);
                } else {
                    waiting.push_back(i);
                }
            }
            Ev::Free => {}
            Ev::Done(g, members) => {
                busy[g] = false;
                for &i in &members {
                    slots[i].generated += 1;
                    emit(
                        sink,
                        RequestId(i as u64),
                        now,
                        LifecycleEvent::DecodeStep {
                            generated: slots[i].generated,
                        },
                    );
                    if slots[i].generated >= slots[i].output_len {
                        kv.free(RequestId(i as u64)).expect("allocated");
                        groups[g].retain(|m| *m != i);
                        done += 1;
                        emit(sink, RequestId(i as u64), now, LifecycleEvent::Finished);
                        sink.counter_add(metrics::REQUESTS_FINISHED, 0, 1);
                        let span = now.since(slots[i].arrival);
                        out.record(span / f64::from(slots[i].output_len - 1));
                    }
                }
                sink.counter_add(metrics::DECODE_TOKENS, 0, members.len() as u64);
                sink.gauge_set(metrics::KV_UTILIZATION, 0, kv.utilization());
                // Drain waiters into freed capacity, FCFS.
                while let Some(&head) = waiting.front() {
                    if admit(&mut kv, &mut groups, &slots, head, cfg.max_decode_batch) {
                        emit(
                            sink,
                            RequestId(head as u64),
                            now,
                            LifecycleEvent::DecodeQueued,
                        );
                        waiting.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
        // Launch ready groups while stage 0 is free.
        while pipeline.stage0_free_at(now) {
            let n = groups.len();
            let mut chosen = None;
            for off in 0..n {
                let g = (next_group + off) % n;
                if !busy[g] && !groups[g].is_empty() {
                    chosen = Some(g);
                    break;
                }
            }
            let Some(g) = chosen else { break };
            next_group = (g + 1) % n;
            busy[g] = true;
            let members = groups[g].clone();
            let contexts: Vec<u32> = members
                .iter()
                .map(|&i| slots[i].input_len + slots[i].generated)
                .collect();
            let stage_time = cost
                .decode_stage_time(&cfg.arch, par, &DecodeBatch::new(contexts))
                .total();
            let commit = pipeline.commit(now, stage_time);
            sink.slice(Slice {
                track: 0,
                name: "decode",
                start_s: commit.start.as_secs(),
                end_s: commit.done.as_secs(),
                batch: u32::try_from(members.len()).unwrap_or(u32::MAX),
                tokens: u32::try_from(members.len()).unwrap_or(u32::MAX),
            });
            sink.counter_add(metrics::DECODE_BATCHES, 0, 1);
            sink.observe(metrics::BATCH_SIZE, 0, members.len() as f64);
            events.push(commit.done, Ev::Done(g, members));
            events.push(commit.stage0_free, Ev::Free);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;
    use distserve_models::{OptModel, RooflineModel};
    use distserve_workload::datasets::FixedLengths;

    fn cfg13b() -> PhaseSimConfig {
        PhaseSimConfig::new(OptModel::Opt13B.arch(), GpuSpec::a100_80g())
    }

    fn fixed() -> FixedLengths {
        FixedLengths {
            input_len: 512,
            output_len: 64,
        }
    }

    #[test]
    fn prefill_attainment_decreases_with_rate() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let par = ParallelismConfig::SINGLE;
        let low = fixed().make_trace(2.0, 200, 1);
        let high = fixed().make_trace(14.0, 200, 1);
        let a_low = prefill_attainment(&cost, &cfg, par, &low, 0.2);
        let a_high = prefill_attainment(&cost, &cfg, par, &high, 0.2);
        assert!(a_low > 0.9, "low-rate attainment {a_low}");
        assert!(a_high < 0.5, "overloaded attainment {a_high}");
    }

    #[test]
    fn prefill_tp_helps_tight_slo() {
        // §3.1: intra-op parallelism reduces execution time, meeting
        // tighter TTFT SLOs at the same rate.
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let trace = fixed().make_trace(6.0, 200, 2);
        let tight = 0.1;
        let a1 = prefill_attainment(&cost, &cfg, ParallelismConfig::new(1, 1), &trace, tight);
        let a2 = prefill_attainment(&cost, &cfg, ParallelismConfig::new(2, 1), &trace, tight);
        assert!(a2 > a1, "tp2 {a2} should beat tp1 {a1}");
    }

    #[test]
    fn decode_attainment_high_at_moderate_rate() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let trace = fixed().make_trace(8.0, 200, 3);
        let a = decode_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &trace, 0.1);
        assert!(a > 0.9, "decode attainment {a}");
    }

    #[test]
    fn decode_attainment_fails_impossible_slo() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let trace = fixed().make_trace(1.0, 50, 4);
        // A 13B decoding step takes ≥ 15 ms; 1 ms TPOT is unattainable.
        let a = decode_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &trace, 0.001);
        assert!(a < 0.05, "impossible SLO attained {a}");
    }

    #[test]
    fn decode_oversized_model_scores_zero() {
        let cost = RooflineModel::a100();
        let cfg = PhaseSimConfig::new(OptModel::Opt175B.arch(), GpuSpec::a100_80g());
        let trace = fixed().make_trace(1.0, 20, 5);
        let a = decode_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &trace, 1.0);
        assert_eq!(a, 0.0);
    }

    #[test]
    fn single_token_requests_trivially_met() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let single = FixedLengths {
            input_len: 128,
            output_len: 1,
        };
        let trace = single.make_trace(5.0, 50, 6);
        let a = decode_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &trace, 1e-9);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn phase_sims_emit_valid_telemetry() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let par = ParallelismConfig::SINGLE;
        let trace = fixed().make_trace(4.0, 40, 7);

        let rec = distserve_telemetry::Recorder::new();
        let plain = prefill_ttfts(&cost, &cfg, par, &trace);
        let recorded = prefill_ttfts_with_sink(&cost, &cfg, par, &trace, &rec);
        assert_eq!(plain.samples(), recorded.samples());
        let snap = rec.snapshot();
        assert_eq!(snap.lifecycles().len(), 40);
        for lc in snap.lifecycles().values() {
            lc.validate().unwrap();
        }
        assert!(snap.slices.iter().all(|s| s.name == "prefill"));
        assert_eq!(
            snap.metrics
                .counter(distserve_telemetry::metrics::PREFILL_TOKENS, 0),
            40 * 512
        );

        let rec = distserve_telemetry::Recorder::new();
        let plain = decode_tpots(&cost, &cfg, par, &trace);
        let recorded = decode_tpots_with_sink(&cost, &cfg, par, &trace, &rec);
        assert_eq!(plain.samples(), recorded.samples());
        let snap = rec.snapshot();
        for lc in snap.lifecycles().values() {
            lc.validate().unwrap();
        }
        assert!(snap.slices.iter().all(|s| s.name == "decode"));
        assert_eq!(
            snap.metrics
                .counter(distserve_telemetry::metrics::REQUESTS_FINISHED, 0),
            40
        );
    }

    #[test]
    fn empty_trace_scores_zero() {
        let cost = RooflineModel::a100();
        let cfg = cfg13b();
        let empty = Trace::default();
        assert_eq!(
            prefill_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &empty, 1.0),
            0.0
        );
        assert_eq!(
            decode_attainment(&cost, &cfg, ParallelismConfig::SINGLE, &empty, 1.0),
            0.0
        );
    }
}
