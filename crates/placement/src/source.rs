//! Trace sources for the placement simulator.
//!
//! The planner needs to synthesize traces at arbitrary candidate rates
//! (§4: DistServe "resamples new traces from the distribution as the
//! input workload to the simulator"). [`TraceSource`] abstracts over
//! where the length distribution comes from: a synthetic dataset, an
//! empirical refit from the workload profiler, or fixed lengths for
//! controlled experiments.

use distserve_simcore::SimRng;
use distserve_workload::datasets::FixedLengths;
use distserve_workload::{Dataset, EmpiricalLengths, Trace, TraceBuilder};

/// Synthesizes traces at a requested rate.
pub trait TraceSource: Sync {
    /// Builds a trace of `n` requests arriving Poisson at `rate`.
    fn make_trace(&self, rate: f64, n: usize, seed: u64) -> Trace;

    /// Human-readable name for reports.
    fn label(&self) -> String;
}

impl TraceSource for Dataset {
    fn make_trace(&self, rate: f64, n: usize, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed).split("placement-trace");
        TraceBuilder::new(self.sampler())
            .rate(rate)
            .num_requests(n)
            .build(&mut rng)
    }

    fn label(&self) -> String {
        self.name().to_string()
    }
}

impl TraceSource for EmpiricalLengths {
    fn make_trace(&self, rate: f64, n: usize, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed).split("placement-trace");
        TraceBuilder::new(Box::new(self.clone()))
            .rate(rate)
            .num_requests(n)
            .build(&mut rng)
    }

    fn label(&self) -> String {
        "empirical".to_string()
    }
}

impl TraceSource for FixedLengths {
    fn make_trace(&self, rate: f64, n: usize, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed).split("placement-trace");
        TraceBuilder::new(Box::new(*self))
            .rate(rate)
            .num_requests(n)
            .build(&mut rng)
    }

    fn label(&self) -> String {
        format!("fixed({}, {})", self.input_len, self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_source() {
        let t = Dataset::ShareGpt.make_trace(5.0, 100, 1);
        assert_eq!(t.len(), 100);
        assert!((t.observed_rate() - 5.0).abs() < 2.0);
        assert_eq!(Dataset::ShareGpt.label(), "ShareGPT");
    }

    #[test]
    fn sources_are_deterministic() {
        let a = Dataset::LongBench.make_trace(2.0, 50, 9);
        let b = Dataset::LongBench.make_trace(2.0, 50, 9);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn fixed_source() {
        let f = FixedLengths {
            input_len: 512,
            output_len: 64,
        };
        let t = f.make_trace(1.0, 10, 0);
        assert!(t.requests().iter().all(|r| r.input_len == 512));
        assert_eq!(f.label(), "fixed(512, 64)");
    }

    #[test]
    fn empirical_source() {
        let e = EmpiricalLengths::from_pairs(vec![(100, 10), (200, 20)]).unwrap();
        let t = e.make_trace(1.0, 30, 3);
        assert!(t
            .requests()
            .iter()
            .all(|r| r.input_len == 100 || r.input_len == 200));
    }
}
