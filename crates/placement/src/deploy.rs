//! Materializing placements onto physical GPUs.
//!
//! A placement names parallelism configs and replica counts; this module
//! turns it into concrete [`InstanceSpec`]s with GPU assignments, using
//! the cluster allocator. High-affinity placements allocate instances
//! wherever GPUs are free (stages may span nodes); low-affinity
//! placements allocate each unit wholly inside one node, preserving the
//! NVLink-only transfer property the search assumed.

use distserve_cluster::{Cluster, GpuAllocator};
use distserve_engine::{InstanceRole, InstanceSpec};

use crate::alg1::HighPlacement;
use crate::alg2::LowPlacement;
use crate::vllm_pp::ColocPlacement;

/// A placement of any kind, ready to materialize.
#[derive(Debug, Clone)]
pub enum Deployment {
    /// Algorithm 1's output.
    High(HighPlacement),
    /// Algorithm 2's output.
    Low(LowPlacement),
    /// A colocated (vLLM / vLLM++) placement.
    Coloc(ColocPlacement),
}

impl Deployment {
    /// GPUs the placement occupies once materialized.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        match self {
            Deployment::High(p) => p.total_gpus(),
            Deployment::Low(p) => p.total_gpus(),
            Deployment::Coloc(p) => p.total_gpus(),
        }
    }
}

/// Materializes `deployment` onto `cluster`, returning instance specs.
///
/// # Errors
///
/// Returns a message when the cluster lacks the GPUs the placement needs.
pub fn materialize(
    cluster: &Cluster,
    deployment: &Deployment,
) -> Result<Vec<InstanceSpec>, String> {
    let mut alloc = GpuAllocator::new(cluster);
    let mut specs = Vec::new();
    match deployment {
        Deployment::High(p) => {
            for _ in 0..p.num_prefill {
                let stages = alloc
                    .allocate_instance(p.prefill.par.tp, p.prefill.par.pp)
                    .map_err(|e| format!("prefill instance: {e}"))?;
                specs.push(InstanceSpec::new(
                    InstanceRole::Prefill,
                    p.prefill.par,
                    stages,
                )?);
            }
            for _ in 0..p.num_decode {
                let stages = alloc
                    .allocate_instance(p.decode.par.tp, p.decode.par.pp)
                    .map_err(|e| format!("decode instance: {e}"))?;
                specs.push(InstanceSpec::new(
                    InstanceRole::Decode,
                    p.decode.par,
                    stages,
                )?);
            }
        }
        Deployment::Low(p) => {
            let segment_paired = p.unit_gpus() > cluster.gpus_per_node();
            for _ in 0..p.num_units {
                let (p_stages, d_stages) = if segment_paired {
                    // One stage *pair* per node: stage s of both instances
                    // shares a node, so transfers stay on NVLink (§4.2).
                    if p.prefill_par.pp != p.decode_par.pp {
                        return Err(format!(
                            "segment-paired unit needs equal pipeline depths, got {} vs {}",
                            p.prefill_par.pp, p.decode_par.pp
                        ));
                    }
                    let mut p_stages = Vec::new();
                    let mut d_stages = Vec::new();
                    for _ in 0..p.prefill_par.pp {
                        let pair = alloc
                            .allocate_on_one_node(p.prefill_par.tp + p.decode_par.tp)
                            .map_err(|e| format!("unit segment: {e}"))?;
                        let (pg, dg) = pair.split_at(p.prefill_par.tp as usize);
                        p_stages.push(pg.to_vec());
                        d_stages.push(dg.to_vec());
                    }
                    (p_stages, d_stages)
                } else {
                    // The whole unit comes from one node.
                    let gpus = alloc
                        .allocate_on_one_node(p.unit_gpus())
                        .map_err(|e| format!("unit: {e}"))?;
                    let mut cursor = gpus.into_iter();
                    let mut take = |tp: u32, pp: u32| -> Vec<Vec<_>> {
                        (0..pp)
                            .map(|_| (0..tp).map(|_| cursor.next().expect("sized")).collect())
                            .collect()
                    };
                    let p_stages = take(p.prefill_par.tp, p.prefill_par.pp);
                    let d_stages = take(p.decode_par.tp, p.decode_par.pp);
                    (p_stages, d_stages)
                };
                specs.push(InstanceSpec::new(
                    InstanceRole::Prefill,
                    p.prefill_par,
                    p_stages,
                )?);
                specs.push(InstanceSpec::new(
                    InstanceRole::Decode,
                    p.decode_par,
                    d_stages,
                )?);
            }
        }
        Deployment::Coloc(p) => {
            for _ in 0..p.num_replicas {
                let stages = alloc
                    .allocate_instance(p.par.tp, p.par.pp)
                    .map_err(|e| format!("colocated instance: {e}"))?;
                specs.push(InstanceSpec::new(InstanceRole::Colocated, p.par, stages)?);
            }
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::PhaseChoice;
    use distserve_models::ParallelismConfig;

    #[test]
    fn high_placement_materializes() {
        let cluster = Cluster::paper_testbed();
        let p = HighPlacement {
            prefill: PhaseChoice {
                par: ParallelismConfig::new(2, 1),
                goodput: 4.0,
            },
            decode: PhaseChoice {
                par: ParallelismConfig::new(1, 2),
                goodput: 10.0,
            },
            num_prefill: 3,
            num_decode: 2,
        };
        let specs = materialize(&cluster, &Deployment::High(p)).unwrap();
        assert_eq!(specs.len(), 5);
        assert_eq!(
            specs
                .iter()
                .filter(|s| s.role == InstanceRole::Prefill)
                .count(),
            3
        );
        let gpus: usize = specs.iter().map(|s| s.num_gpus() as usize).sum();
        assert_eq!(gpus, 3 * 2 + 2 * 2);
    }

    #[test]
    fn low_placement_units_stay_on_one_node() {
        let cluster = Cluster::paper_testbed();
        let p = LowPlacement {
            prefill_par: ParallelismConfig::new(4, 1),
            decode_par: ParallelismConfig::new(2, 2),
            unit_goodput: 5.0,
            num_units: 4,
        };
        let specs = materialize(&cluster, &Deployment::Low(p)).unwrap();
        assert_eq!(specs.len(), 8);
        // Each consecutive (prefill, decode) pair shares one node.
        for pair in specs.chunks(2) {
            let nodes: Vec<_> = pair
                .iter()
                .flat_map(|s| s.stages.iter().flatten().map(|g| g.node))
                .collect();
            assert!(nodes.iter().all(|n| *n == nodes[0]), "unit spans nodes");
        }
    }

    #[test]
    fn segment_paired_low_placement_materializes() {
        let cluster = Cluster::paper_testbed();
        let p = LowPlacement {
            prefill_par: ParallelismConfig::new(3, 3),
            decode_par: ParallelismConfig::new(4, 3),
            unit_goodput: 2.0,
            num_units: 1,
        };
        let specs = materialize(&cluster, &Deployment::Low(p)).unwrap();
        assert_eq!(specs.len(), 2);
        // Stage s of prefill and decode share node s.
        for s in 0..3usize {
            assert_eq!(specs[0].stages[s][0].node, specs[1].stages[s][0].node);
        }
        // 21 GPUs total: a second unit exceeds the 32-GPU cluster.
        let p2 = LowPlacement {
            prefill_par: ParallelismConfig::new(3, 3),
            decode_par: ParallelismConfig::new(4, 3),
            unit_goodput: 2.0,
            num_units: 2,
        };
        assert!(materialize(&cluster, &Deployment::Low(p2)).is_err());
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let cluster = Cluster::single_node(4);
        let p = ColocPlacement {
            par: ParallelismConfig::new(4, 1),
            goodput: 1.0,
            num_replicas: 2,
        };
        let err = materialize(&cluster, &Deployment::Coloc(p)).unwrap_err();
        assert!(err.contains("colocated instance"), "{err}");
    }

    #[test]
    fn coloc_materializes_replicas() {
        let cluster = Cluster::paper_testbed();
        let p = ColocPlacement {
            par: ParallelismConfig::new(4, 1),
            goodput: 1.0,
            num_replicas: 8,
        };
        let specs = materialize(&cluster, &Deployment::Coloc(p)).unwrap();
        assert_eq!(specs.len(), 8);
        assert!(specs.iter().all(|s| s.role == InstanceRole::Colocated));
    }
}
