//! Algorithm 1 — placement for high node-affinity clusters (§4.1).
//!
//! With fast cross-node interconnect, KV transfers are cheap anywhere, so
//! the two phases are planned *independently*: enumerate every legal
//! `(tp, pp)` for a prefill instance and for a decoding instance, estimate
//! each candidate's goodput with the phase simulators, keep the per-GPU
//! best of each, then replicate both until the target traffic rate is met.
//!
//! Candidate evaluations are independent, so the search fans out over
//! threads (the paper notes the algorithm parallelizes almost linearly —
//! Figure 12).

use crossbeam::thread;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use distserve_models::{CostModel, DType, GpuSpec, ModelArch, ParallelismConfig};

use crate::goodput::{max_goodput, probe_count_with};
use crate::phase_sim::{decode_attainment, prefill_attainment, PhaseSimConfig};
use crate::slo::SloSpec;
use crate::source::TraceSource;

/// Knobs of the placement search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchParams {
    /// Maximum tensor-parallel degree (GPUs per node, `M`).
    pub max_tp: u32,
    /// Maximum pipeline-parallel degree (node limit per instance, `N`,
    /// times nothing — stages may span nodes on high-affinity clusters).
    pub max_pp: u32,
    /// Minimum requests per simulation probe.
    pub probe_requests: usize,
    /// Simulated seconds of arrivals per probe (probes cover at least
    /// this duration so queueing reaches steady state).
    pub probe_secs: f64,
    /// Bisection rounds per goodput search.
    pub search_iters: u32,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Probe seed (fixed for determinism).
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            max_tp: 8,
            max_pp: 4,
            // Probes must be long enough to expose steady-state queueing:
            // short bursts overstate decoding goodput because the whole
            // trace fits one large batch.
            probe_requests: 512,
            probe_secs: 60.0,
            search_iters: 8,
            threads: 0,
            seed: 0,
        }
    }
}

impl SearchParams {
    /// Worker threads to spawn for `jobs` independent evaluations.
    pub(crate) fn worker_count(&self, jobs: usize) -> usize {
        let avail = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        };
        avail.min(jobs).max(1)
    }
}

/// One phase's chosen configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseChoice {
    /// Parallelism of each instance of this phase.
    pub par: ParallelismConfig,
    /// Goodput of a single instance, requests/second.
    pub goodput: f64,
}

impl PhaseChoice {
    /// Per-GPU goodput — Algorithm 1's objective.
    #[must_use]
    pub fn per_gpu_goodput(&self) -> f64 {
        self.goodput / f64::from(self.par.num_gpus())
    }
}

/// Algorithm 1's output: independent phase configs plus replica counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighPlacement {
    /// Prefill phase configuration.
    pub prefill: PhaseChoice,
    /// Decoding phase configuration.
    pub decode: PhaseChoice,
    /// Prefill instances to deploy (`⌈R / prefill.goodput⌉`).
    pub num_prefill: u32,
    /// Decoding instances to deploy (`⌈R / decode.goodput⌉`).
    pub num_decode: u32,
}

impl HighPlacement {
    /// Total GPUs the placement occupies.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.num_prefill * self.prefill.par.num_gpus()
            + self.num_decode * self.decode.par.num_gpus()
    }

    /// System goodput per GPU at the planned rate, requests/second.
    #[must_use]
    pub fn per_gpu_goodput(&self) -> f64 {
        let system = (self.prefill.goodput * f64::from(self.num_prefill))
            .min(self.decode.goodput * f64::from(self.num_decode));
        system / f64::from(self.total_gpus())
    }
}

/// Runs Algorithm 1. Returns `None` if no legal configuration exists
/// (e.g. the model does not fit the GPU budget at all).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn high_affinity_placement(
    cost: &dyn CostModel,
    gpu: &GpuSpec,
    arch: &ModelArch,
    dtype: DType,
    source: &dyn TraceSource,
    slo: SloSpec,
    rate: f64,
    params: &SearchParams,
) -> Option<HighPlacement> {
    let configs = ParallelismConfig::enumerate(arch, gpu, dtype, params.max_tp, params.max_pp);
    if configs.is_empty() {
        return None;
    }
    let results: Mutex<Vec<(ParallelismConfig, f64, f64)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    let workers = params.worker_count(configs.len());

    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    let idx = *n;
                    *n += 1;
                    idx
                };
                if idx >= configs.len() {
                    break;
                }
                let par = configs[idx];
                let cfg = PhaseSimConfig::new(arch.clone(), gpu.clone());
                let pf = max_goodput(
                    |r| {
                        let n = probe_count_with(r, params.probe_requests, params.probe_secs);
                        let trace = source.make_trace(r, n, params.seed);
                        prefill_attainment(cost, &cfg, par, &trace, slo.ttft)
                    },
                    slo.target,
                    1.0,
                    params.search_iters,
                );
                let dc = max_goodput(
                    |r| {
                        let n = probe_count_with(r, params.probe_requests, params.probe_secs);
                        let trace = source.make_trace(r, n, params.seed);
                        decode_attainment(cost, &cfg, par, &trace, slo.tpot)
                    },
                    slo.target,
                    1.0,
                    params.search_iters,
                );
                results.lock().push((par, pf, dc));
            });
        }
    })
    .expect("search workers do not panic");

    let mut results = results.into_inner();
    // Deterministic selection regardless of thread completion order.
    results.sort_by_key(|(par, _, _)| (par.tp, par.pp));

    let best = |select: &dyn Fn(&(ParallelismConfig, f64, f64)) -> f64| {
        results
            .iter()
            .max_by(|a, b| {
                let ga = select(a) / f64::from(a.0.num_gpus());
                let gb = select(b) / f64::from(b.0.num_gpus());
                ga.total_cmp(&gb)
            })
            .copied()
    };
    let (p_par, p_good, _) = best(&|r| r.1)?;
    let (d_par, _, d_good) = best(&|r| r.2)?;
    if p_good <= 0.0 || d_good <= 0.0 {
        return None;
    }
    Some(HighPlacement {
        prefill: PhaseChoice {
            par: p_par,
            goodput: p_good,
        },
        decode: PhaseChoice {
            par: d_par,
            goodput: d_good,
        },
        num_prefill: (rate / p_good).ceil().max(1.0) as u32,
        num_decode: (rate / d_good).ceil().max(1.0) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distserve_models::{OptModel, RooflineModel};
    use distserve_workload::datasets::FixedLengths;

    fn quick_params() -> SearchParams {
        SearchParams {
            max_tp: 4,
            max_pp: 2,
            probe_requests: 96,
            probe_secs: 12.0,
            search_iters: 5,
            threads: 2,
            seed: 0,
        }
    }

    fn source() -> FixedLengths {
        FixedLengths {
            input_len: 512,
            output_len: 64,
        }
    }

    #[test]
    fn finds_a_placement_for_13b() {
        let cost = RooflineModel::a100();
        let gpu = GpuSpec::a100_80g();
        let arch = OptModel::Opt13B.arch();
        let slo = SloSpec::new(0.25, 0.1);
        let plm = high_affinity_placement(
            &cost,
            &gpu,
            &arch,
            DType::F16,
            &source(),
            slo,
            6.0,
            &quick_params(),
        )
        .expect("13B fits easily");
        assert!(plm.prefill.goodput > 0.0);
        assert!(plm.decode.goodput > 0.0);
        assert!(plm.num_prefill >= 1 && plm.num_decode >= 1);
        // Enough replicas to carry 6 rps.
        assert!(plm.prefill.goodput * f64::from(plm.num_prefill) >= 6.0 * 0.95);
        assert!(plm.decode.goodput * f64::from(plm.num_decode) >= 6.0 * 0.95);
        // Decoding sustains far higher per-GPU rates than prefill on this
        // short-output workload — the asymmetry disaggregation exploits.
        assert!(
            plm.decode.per_gpu_goodput() > plm.prefill.per_gpu_goodput(),
            "decode {:.2}/GPU vs prefill {:.2}/GPU",
            plm.decode.per_gpu_goodput(),
            plm.prefill.per_gpu_goodput()
        );
    }

    #[test]
    fn oversized_model_yields_none() {
        let cost = RooflineModel::a100();
        let gpu = GpuSpec::a100_80g();
        let arch = OptModel::Opt175B.arch();
        // 175B cannot fit in 2 GPUs no matter the split.
        let params = SearchParams {
            max_tp: 2,
            max_pp: 1,
            ..quick_params()
        };
        let plm = high_affinity_placement(
            &cost,
            &gpu,
            &arch,
            DType::F16,
            &source(),
            SloSpec::new(4.0, 0.2),
            1.0,
            &params,
        );
        assert!(plm.is_none());
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let cost = RooflineModel::a100();
        let gpu = GpuSpec::a100_80g();
        let arch = OptModel::Opt13B.arch();
        let slo = SloSpec::new(0.25, 0.1);
        let mut p1 = quick_params();
        p1.threads = 1;
        let mut p4 = quick_params();
        p4.threads = 4;
        let a = high_affinity_placement(&cost, &gpu, &arch, DType::F16, &source(), slo, 4.0, &p1)
            .unwrap();
        let b = high_affinity_placement(&cost, &gpu, &arch, DType::F16, &source(), slo, 4.0, &p4)
            .unwrap();
        assert_eq!(a.prefill.par, b.prefill.par);
        assert_eq!(a.decode.par, b.decode.par);
        assert_eq!(a.num_prefill, b.num_prefill);
    }

    #[test]
    fn tighter_ttft_prefers_more_prefill_parallelism() {
        // Figure 4 / §3.1: a stringent TTFT SLO favors intra-op
        // parallelism for the prefill phase.
        let cost = RooflineModel::a100();
        let gpu = GpuSpec::a100_80g();
        let arch = OptModel::Opt13B.arch();
        let loose = high_affinity_placement(
            &cost,
            &gpu,
            &arch,
            DType::F16,
            &source(),
            SloSpec::new(0.8, 0.1),
            4.0,
            &quick_params(),
        )
        .unwrap();
        let tight = high_affinity_placement(
            &cost,
            &gpu,
            &arch,
            DType::F16,
            &source(),
            SloSpec::new(0.12, 0.1),
            4.0,
            &quick_params(),
        )
        .unwrap();
        assert!(
            tight.prefill.par.tp >= loose.prefill.par.tp,
            "tight {} vs loose {}",
            tight.prefill.par,
            loose.prefill.par
        );
    }

    #[test]
    fn per_gpu_goodput_accounting() {
        let plm = HighPlacement {
            prefill: PhaseChoice {
                par: ParallelismConfig::new(2, 1),
                goodput: 4.0,
            },
            decode: PhaseChoice {
                par: ParallelismConfig::new(1, 1),
                goodput: 10.0,
            },
            num_prefill: 2,
            num_decode: 1,
        };
        assert_eq!(plm.total_gpus(), 5);
        // System rate = min(8, 10) = 8 over 5 GPUs.
        assert!((plm.per_gpu_goodput() - 1.6).abs() < 1e-12);
        assert!((plm.prefill.per_gpu_goodput() - 2.0).abs() < 1e-12);
    }
}
