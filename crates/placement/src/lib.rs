//! Placement search: the planning half of DistServe (paper §4).
//!
//! Given the model, the cluster, the workload's length distribution, the
//! latency SLOs, and a traffic rate, the planner decides the parallelism
//! of prefill and decoding instances, how many of each to run, and where
//! they sit — maximizing *per-GPU goodput*, the maximum request rate
//! served within the SLO attainment target per GPU provisioned.
//!
//! * [`slo`] — TTFT/TPOT SLO specifications (Table 1 presets live in
//!   `distserve-core`).
//! * [`source`] — trace sources: anything that can synthesize a trace at
//!   a given rate (datasets, empirical refits, fixed lengths).
//! * [`phase_sim`] — the paper's `simu_prefill` / `simu_decode`:
//!   single-phase simulators estimating SLO attainment for one candidate
//!   configuration.
//! * [`goodput`] — binary search for the maximum rate meeting the
//!   attainment target (the paper's "enumerates the placements via binary
//!   search ... with simulation trials").
//! * [`alg1`] — Algorithm 1, high node-affinity clusters: optimize each
//!   phase independently, then replicate.
//! * [`alg2`] — Algorithm 2, low node-affinity clusters: colocate
//!   corresponding prefill/decoding segments per node so KV transfers
//!   ride NVLink.
//! * [`vllm_pp`] — the "vLLM++" ablation: parallelism search for the
//!   colocated baseline (Figure 11).
//! * [`deploy`] — materialize a chosen placement onto physical GPUs.

pub mod alg1;
pub mod alg2;
pub mod deploy;
pub mod goodput;
pub mod phase_sim;
pub mod slo;
pub mod source;
pub mod vllm_pp;

pub use alg1::{high_affinity_placement, HighPlacement};
pub use alg2::{low_affinity_placement, LowPlacement};
pub use deploy::materialize;
pub use goodput::max_goodput;
pub use slo::SloSpec;
pub use source::TraceSource;
pub use vllm_pp::{vllm_plus_plus, ColocPlacement};
