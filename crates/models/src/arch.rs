//! Transformer architecture descriptors.
//!
//! Serving performance depends only on the *shape* of a model — layer
//! count, hidden size, head geometry, FFN width — never on its weights.
//! [`ModelArch`] captures that shape and derives the quantities the latency
//! model and the memory ledger need: FLOP counts, weight bytes, and
//! KV-cache bytes per token.

use serde::{Deserialize, Serialize};

/// Numeric precision of weights and KV cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 16-bit IEEE float (the paper's precision for all experiments).
    F16,
    /// bfloat16.
    BF16,
    /// 8-bit integer quantization.
    Int8,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::Int8 => 1,
        }
    }
}

/// The shape of a decoder-only transformer.
///
/// # Examples
///
/// ```
/// use distserve_models::{ModelArch, DType, OptModel};
///
/// let opt13b = OptModel::Opt13B.arch();
/// let params = opt13b.param_count();
/// assert!((12.0e9..14.0e9).contains(&(params as f64)));
/// // Weight bytes at fp16 ≈ 26 GB, matching Table 1.
/// let gb = opt13b.weight_bytes(DType::F16) as f64 / 1e9;
/// assert!((24.0..28.0).contains(&gb));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelArch {
    /// Human-readable name, e.g. `"OPT-13B"`.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden size `h`.
    pub hidden: u32,
    /// Number of attention (query) heads `n`.
    pub num_heads: u32,
    /// Number of key/value heads: equals `num_heads` for classic
    /// multi-head attention, fewer under grouped-query attention (GQA \[9\]
    /// in the paper — §3.2 notes it lets the decoding batch grow by
    /// shrinking the KV cache).
    pub kv_heads: u32,
    /// Per-head dimension `s` (`h = n * s`).
    pub head_dim: u32,
    /// FFN intermediate size `m`.
    pub ffn: u32,
    /// Whether the FFN is gated (LLaMA-style three-matrix SwiGLU) rather
    /// than OPT's two-matrix ReLU MLP.
    pub gated_ffn: bool,
    /// Vocabulary size.
    pub vocab: u32,
    /// Maximum supported sequence length.
    pub max_seq_len: u32,
}

impl ModelArch {
    /// Creates an architecture, checking internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error string if `hidden != num_heads * head_dim` or any
    /// dimension is zero.
    pub fn new(
        name: impl Into<String>,
        num_layers: u32,
        hidden: u32,
        num_heads: u32,
        ffn: u32,
        vocab: u32,
        max_seq_len: u32,
    ) -> Result<Self, String> {
        if num_layers == 0 || hidden == 0 || num_heads == 0 || ffn == 0 {
            return Err("all architecture dimensions must be non-zero".into());
        }
        if !hidden.is_multiple_of(num_heads) {
            return Err(format!(
                "hidden size {hidden} not divisible by {num_heads} heads"
            ));
        }
        Ok(ModelArch {
            name: name.into(),
            num_layers,
            hidden,
            num_heads,
            kv_heads: num_heads,
            head_dim: hidden / num_heads,
            ffn,
            gated_ffn: false,
            vocab,
            max_seq_len,
        })
    }

    /// Switches the architecture to grouped-query attention with
    /// `kv_heads` key/value heads.
    ///
    /// # Errors
    ///
    /// Returns an error string unless `kv_heads` divides `num_heads`.
    pub fn with_gqa(mut self, kv_heads: u32) -> Result<Self, String> {
        if kv_heads == 0 || !self.num_heads.is_multiple_of(kv_heads) {
            return Err(format!(
                "{} query heads not divisible by {kv_heads} KV heads",
                self.num_heads
            ));
        }
        self.kv_heads = kv_heads;
        Ok(self)
    }

    /// Switches the FFN to a gated (SwiGLU) three-matrix block.
    #[must_use]
    pub fn with_gated_ffn(mut self) -> Self {
        self.gated_ffn = true;
        self
    }

    /// Combined K/V projection width: `kv_heads * head_dim`.
    #[must_use]
    pub fn kv_dim(&self) -> u32 {
        self.kv_heads * self.head_dim
    }

    /// MACs of the dense projections for one token in one layer:
    /// Q (`h×h`), K and V (`h×kv_dim` each), output (`h×h`), and the FFN
    /// (two or three `h×m` matrices). Appendix A's `4h² + 2hm` is the
    /// multi-head, non-gated special case.
    #[must_use]
    pub fn dense_macs_per_token(&self) -> u64 {
        let h = u64::from(self.hidden);
        let kv = u64::from(self.kv_dim());
        let m = u64::from(self.ffn);
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        2 * h * h + 2 * h * kv + ffn_mats * h * m
    }

    /// Bytes of dense weights per layer at `dtype`.
    #[must_use]
    pub fn dense_weight_bytes_per_layer(&self, dtype: DType) -> u64 {
        self.dense_macs_per_token() * dtype.bytes()
    }

    /// Approximate parameter count: dense projections plus biases and
    /// norms, embeddings, and positions.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = u64::from(self.hidden);
        let m = u64::from(self.ffn);
        let l = u64::from(self.num_layers);
        let per_layer = self.dense_macs_per_token()
            + 4 * h + m + h // Projection and FFN biases (absent in LLaMA but negligible).
            + 4 * h; // Two layer norms (scale + bias).
        let embeddings = u64::from(self.vocab) * h + u64::from(self.max_seq_len) * h;
        let final_norm = 2 * h;
        l * per_layer + embeddings + final_norm
    }

    /// Total bytes of model weights at the given precision.
    #[must_use]
    pub fn weight_bytes(&self, dtype: DType) -> u64 {
        self.param_count() * dtype.bytes()
    }

    /// Bytes of KV cache for **one token position** across all layers:
    /// `2 (K and V) * layers * kv_dim * element_size`. Under GQA this is
    /// `kv_heads / num_heads` of the multi-head figure — the memory
    /// saving §3.2 credits for larger decoding batches.
    #[must_use]
    pub fn kv_bytes_per_token(&self, dtype: DType) -> u64 {
        2 * u64::from(self.num_layers) * u64::from(self.kv_dim()) * dtype.bytes()
    }

    /// FLOPs for a prefill pass over `t` new tokens of a single request
    /// (dense GEMMs plus attention), across all layers.
    #[must_use]
    pub fn prefill_flops(&self, t: u64) -> u64 {
        let h = u64::from(self.hidden);
        let l = u64::from(self.num_layers);
        // Dense GEMMs at 2 FLOPs per MAC, plus attention score+value:
        // 2 * 2 * t² * h (queries attend at full head count).
        l * (2 * t * self.dense_macs_per_token() + 4 * t * t * h)
    }

    /// FLOPs for a single decoding step of one request with context length
    /// `ctx`, across all layers.
    #[must_use]
    pub fn decode_flops(&self, ctx: u64) -> u64 {
        let h = u64::from(self.hidden);
        let l = u64::from(self.num_layers);
        l * (2 * self.dense_macs_per_token() + 4 * ctx * h)
    }
}

/// The OPT model family used throughout the paper's evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptModel {
    /// OPT-1.3B.
    Opt1_3B,
    /// OPT-2.7B.
    Opt2_7B,
    /// OPT-6.7B.
    Opt6_7B,
    /// OPT-13B — Figure 1/2/3/5, chatbot Table 1 row 1.
    Opt13B,
    /// OPT-30B.
    Opt30B,
    /// OPT-66B — Figure 4, chatbot/code/summarization rows.
    Opt66B,
    /// OPT-175B — chatbot row 3, Figure 10.
    Opt175B,
}

impl OptModel {
    /// All family members, smallest to largest.
    pub const ALL: [OptModel; 7] = [
        OptModel::Opt1_3B,
        OptModel::Opt2_7B,
        OptModel::Opt6_7B,
        OptModel::Opt13B,
        OptModel::Opt30B,
        OptModel::Opt66B,
        OptModel::Opt175B,
    ];

    /// Returns the architecture descriptor (dimensions from the OPT paper).
    #[must_use]
    pub fn arch(self) -> ModelArch {
        let (name, layers, hidden, heads, max_seq) = match self {
            OptModel::Opt1_3B => ("OPT-1.3B", 24, 2048, 32, 2048),
            OptModel::Opt2_7B => ("OPT-2.7B", 32, 2560, 32, 2048),
            OptModel::Opt6_7B => ("OPT-6.7B", 32, 4096, 32, 2048),
            OptModel::Opt13B => ("OPT-13B", 40, 5120, 40, 2048),
            OptModel::Opt30B => ("OPT-30B", 48, 7168, 56, 2048),
            OptModel::Opt66B => ("OPT-66B", 64, 9216, 72, 2048),
            OptModel::Opt175B => ("OPT-175B", 96, 12288, 96, 2048),
        };
        // OPT uses an FFN expansion factor of 4 and a 50272-token vocab.
        ModelArch::new(name, layers, hidden, heads, hidden * 4, 50_272, max_seq)
            .expect("OPT presets are internally consistent")
    }
}

/// The LLaMA-2 family — the open-source models §5 lists as supported,
/// with LLaMA-2-70B exercising GQA (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlamaModel {
    /// LLaMA-2-7B (multi-head attention, gated FFN).
    Llama2_7B,
    /// LLaMA-2-13B.
    Llama2_13B,
    /// LLaMA-2-70B (grouped-query attention: 8 KV heads).
    Llama2_70B,
}

impl LlamaModel {
    /// All family members.
    pub const ALL: [LlamaModel; 3] = [
        LlamaModel::Llama2_7B,
        LlamaModel::Llama2_13B,
        LlamaModel::Llama2_70B,
    ];

    /// Returns the architecture descriptor (dimensions from the LLaMA-2
    /// paper).
    #[must_use]
    pub fn arch(self) -> ModelArch {
        let (name, layers, hidden, heads, kv_heads, ffn) = match self {
            LlamaModel::Llama2_7B => ("LLaMA-2-7B", 32, 4096, 32, 32, 11_008),
            LlamaModel::Llama2_13B => ("LLaMA-2-13B", 40, 5120, 40, 40, 13_824),
            LlamaModel::Llama2_70B => ("LLaMA-2-70B", 80, 8192, 64, 8, 28_672),
        };
        ModelArch::new(name, layers, hidden, heads, ffn, 32_000, 4096)
            .expect("LLaMA presets are internally consistent")
            .with_gqa(kv_heads)
            .expect("KV head counts divide query head counts")
            .with_gated_ffn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published parameter counts for the OPT family, in billions.
    const PUBLISHED: [(OptModel, f64); 7] = [
        (OptModel::Opt1_3B, 1.3),
        (OptModel::Opt2_7B, 2.7),
        (OptModel::Opt6_7B, 6.7),
        (OptModel::Opt13B, 13.0),
        (OptModel::Opt30B, 30.0),
        (OptModel::Opt66B, 66.0),
        (OptModel::Opt175B, 175.0),
    ];

    #[test]
    fn opt_param_counts_match_published() {
        for (model, billions) in PUBLISHED {
            let params = model.arch().param_count() as f64 / 1e9;
            let rel = (params - billions).abs() / billions;
            assert!(
                rel < 0.06,
                "{:?}: computed {params:.2}B vs published {billions}B ({:.1}% off)",
                model,
                rel * 100.0
            );
        }
    }

    #[test]
    fn table1_weight_sizes() {
        // Table 1: OPT-13B = 26 GB, OPT-66B = 132 GB, OPT-175B = 350 GB.
        let gb = |m: OptModel| m.arch().weight_bytes(DType::F16) as f64 / 1e9;
        assert!((gb(OptModel::Opt13B) - 26.0).abs() < 2.0);
        assert!((gb(OptModel::Opt66B) - 132.0).abs() < 5.0);
        assert!((gb(OptModel::Opt175B) - 350.0).abs() < 10.0);
    }

    #[test]
    fn kv_bytes_match_paper_example() {
        // §3.3: "the KV cache size of a single 512-token request on OPT-66B
        // is approximately 1.13GB".
        let arch = OptModel::Opt66B.arch();
        let gb = (arch.kv_bytes_per_token(DType::F16) * 512) as f64 / 1e9;
        assert!(
            (1.0..1.35).contains(&gb),
            "512-token OPT-66B KV = {gb:.3} GB, expected ≈1.13 GB"
        );
    }

    #[test]
    fn head_dim_derived() {
        let arch = OptModel::Opt66B.arch();
        assert_eq!(arch.head_dim * arch.num_heads, arch.hidden);
        assert_eq!(arch.head_dim, 128);
    }

    #[test]
    fn invalid_arch_rejected() {
        assert!(ModelArch::new("bad", 2, 100, 3, 400, 1000, 128).is_err());
        assert!(ModelArch::new("zero", 0, 128, 4, 512, 1000, 128).is_err());
    }

    #[test]
    fn prefill_flops_scale_superlinearly() {
        let arch = OptModel::Opt13B.arch();
        let f1 = arch.prefill_flops(512) as f64;
        let f2 = arch.prefill_flops(1024) as f64;
        // Attention's quadratic term makes doubling tokens more than double
        // the FLOPs.
        assert!(f2 > 2.0 * f1);
        // Dense part dominates at these lengths: ≈ 2 * params * t.
        let approx = 2.0 * arch.param_count() as f64 * 512.0;
        assert!((f1 / approx - 1.0).abs() < 0.15, "ratio {}", f1 / approx);
    }

    #[test]
    fn decode_flops_grow_with_context() {
        let arch = OptModel::Opt13B.arch();
        assert!(arch.decode_flops(2048) > arch.decode_flops(16));
    }

    #[test]
    fn llama_param_counts_match_published() {
        for (model, billions) in [
            (LlamaModel::Llama2_7B, 6.7),
            (LlamaModel::Llama2_13B, 13.0),
            (LlamaModel::Llama2_70B, 69.0),
        ] {
            let params = model.arch().param_count() as f64 / 1e9;
            let rel = (params - billions).abs() / billions;
            assert!(
                rel < 0.06,
                "{model:?}: computed {params:.2}B vs published {billions}B"
            );
        }
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        // LLaMA-2-70B has 8 of 64 heads as KV heads: the cache per token
        // is 1/8th of the equivalent multi-head figure (§3.2's GQA note).
        let gqa = LlamaModel::Llama2_70B.arch();
        let mha = ModelArch::new("mha-70b", 80, 8192, 64, 28_672, 32_000, 4096).unwrap();
        assert_eq!(
            gqa.kv_bytes_per_token(DType::F16) * 8,
            mha.kv_bytes_per_token(DType::F16)
        );
        assert_eq!(gqa.kv_dim(), 1024);
    }

    #[test]
    fn gqa_validation() {
        let arch = OptModel::Opt13B.arch(); // 40 heads.
        assert!(arch.clone().with_gqa(8).is_ok());
        assert!(arch.clone().with_gqa(7).is_err());
        assert!(arch.with_gqa(0).is_err());
    }

    #[test]
    fn gated_ffn_increases_dense_macs() {
        let plain = OptModel::Opt13B.arch();
        let gated = OptModel::Opt13B.arch().with_gated_ffn();
        assert!(gated.dense_macs_per_token() > plain.dense_macs_per_token());
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::BF16.bytes(), 2);
        assert_eq!(DType::Int8.bytes(), 1);
    }
}
