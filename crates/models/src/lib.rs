//! LLM architecture descriptors, parallelism configurations, and the
//! analytical latency model of DistServe (Appendix A of the paper).
//!
//! The crate answers three questions every other layer asks:
//!
//! 1. *What is the model?* — [`arch::ModelArch`] describes a transformer
//!    (layers, hidden size, heads, FFN width) and derives parameter counts,
//!    weight bytes, and KV-cache bytes per token.
//! 2. *How is it partitioned?* — [`parallel::ParallelismConfig`] captures
//!    tensor (intra-operator) and pipeline (inter-operator) parallelism and
//!    validates a configuration against an architecture and GPU memory.
//! 3. *How long does a batch take?* — [`latency::RooflineModel`] predicts
//!    prefill and decoding step times from hardware characteristics using a
//!    roofline (max of compute time and memory time) per operator, matching
//!    the paper's Appendix-A formulation; [`appendix_a::AppendixAModel`] is
//!    the paper's literal `C1..C5` linear form, fitted from profile points
//!    with [`fit::LeastSquares`].
//!
//! [`queueing`] provides the closed-form M/D/1 results (Eqs. 1–3) used in
//! §3.1 of the paper to explain parallelism preferences of the prefill
//! phase.

pub mod appendix_a;
pub mod arch;
pub mod batch;
pub mod fit;
pub mod hardware;
pub mod latency;
pub mod parallel;
pub mod queueing;

pub use arch::{DType, LlamaModel, ModelArch, OptModel};
pub use batch::{DecodeBatch, PrefillBatch};
pub use hardware::{GpuSpec, LinkSpec};
pub use latency::{CostModel, PhaseTiming, RooflineModel};
pub use parallel::ParallelismConfig;
