//! GPU and interconnect hardware characteristics.
//!
//! The latency model is parameterized by a [`GpuSpec`] (peak compute,
//! memory bandwidth, capacity, and achievable-efficiency factors) and
//! [`LinkSpec`]s for tensor-parallel all-reduce and KV-cache transfer
//! paths. Presets match the paper's testbed: NVIDIA A100-80GB SXM with
//! NVLink inside a node and a 25 Gbps cross-node network (§6.1).

use serde::{Deserialize, Serialize};

/// Compute and memory characteristics of one GPU.
///
/// # Examples
///
/// ```
/// use distserve_models::GpuSpec;
///
/// let a100 = GpuSpec::a100_80g();
/// assert_eq!(a100.mem_capacity, 80 * (1 << 30));
/// assert!(a100.effective_flops() < a100.peak_flops);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-80G-SXM"`.
    pub name: String,
    /// Peak dense fp16 tensor-core throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak HBM bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity, bytes.
    pub mem_capacity: u64,
    /// Fraction of peak FLOP/s large GEMMs achieve in practice.
    pub gemm_efficiency: f64,
    /// Fraction of peak memory bandwidth streaming kernels achieve.
    pub mem_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80GB SXM: 312 TFLOP/s dense fp16, 2039 GB/s HBM2e.
    #[must_use]
    pub fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G-SXM".into(),
            peak_flops: 312e12,
            mem_bandwidth: 2039e9,
            mem_capacity: 80 * (1 << 30),
            gemm_efficiency: 0.52,
            mem_efficiency: 0.80,
        }
    }

    /// NVIDIA A100-40GB SXM.
    #[must_use]
    pub fn a100_40g() -> Self {
        GpuSpec {
            name: "A100-40G-SXM".into(),
            peak_flops: 312e12,
            mem_bandwidth: 1555e9,
            mem_capacity: 40 * (1 << 30),
            gemm_efficiency: 0.52,
            mem_efficiency: 0.80,
        }
    }

    /// NVIDIA H100 SXM: 989 TFLOP/s dense fp16, 3.35 TB/s HBM3.
    #[must_use]
    pub fn h100_80g() -> Self {
        GpuSpec {
            name: "H100-80G-SXM".into(),
            peak_flops: 989e12,
            mem_bandwidth: 3350e9,
            mem_capacity: 80 * (1 << 30),
            gemm_efficiency: 0.50,
            mem_efficiency: 0.78,
        }
    }

    /// Achievable GEMM throughput, FLOP/s.
    #[must_use]
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.gemm_efficiency
    }

    /// Achievable streaming bandwidth, bytes/s.
    #[must_use]
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.mem_efficiency
    }
}

/// A communication link between GPUs (or nodes).
///
/// # Examples
///
/// ```
/// use distserve_models::LinkSpec;
///
/// let nv = LinkSpec::nvlink();
/// // Transferring 600 GB over 600 GB/s NVLink takes about a second
/// // (plus launch latency, divided by efficiency).
/// let t = nv.transfer_time(600e9 as u64);
/// assert!((0.9..2.0).contains(&t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Peak unidirectional bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-transfer launch latency, seconds.
    pub latency: f64,
    /// Achievable fraction of peak bandwidth.
    pub efficiency: f64,
}

impl LinkSpec {
    /// NVLink 3.0 between A100s: 600 GB/s aggregate (§3.3).
    #[must_use]
    pub fn nvlink() -> Self {
        LinkSpec {
            bandwidth: 600e9,
            latency: 5e-6,
            efficiency: 0.75,
        }
    }

    /// 25 Gbps cross-node Ethernet — the paper's testbed (§6.1).
    #[must_use]
    pub fn ethernet_25g() -> Self {
        LinkSpec {
            bandwidth: 25e9 / 8.0,
            latency: 30e-6,
            efficiency: 0.85,
        }
    }

    /// 800 Gbps InfiniBand — the high node-affinity cluster of §4.1.
    #[must_use]
    pub fn infiniband_800g() -> Self {
        LinkSpec {
            bandwidth: 800e9 / 8.0,
            latency: 10e-6,
            efficiency: 0.90,
        }
    }

    /// PCIe 4.0 x16.
    #[must_use]
    pub fn pcie_gen4() -> Self {
        LinkSpec {
            bandwidth: 32e9,
            latency: 10e-6,
            efficiency: 0.80,
        }
    }

    /// Time to move `bytes` across the link, seconds.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / (self.bandwidth * self.efficiency)
    }

    /// Time for a ring all-reduce of `bytes` among `world` participants.
    ///
    /// Ring all-reduce moves `2 * (world-1)/world * bytes` per participant
    /// and pays the launch latency once per ring step.
    #[must_use]
    pub fn allreduce_time(&self, bytes: u64, world: u32) -> f64 {
        if world <= 1 {
            return 0.0;
        }
        let w = f64::from(world);
        let volume = 2.0 * (w - 1.0) / w * bytes as f64;
        2.0 * (w - 1.0) * self.latency + volume / (self.bandwidth * self.efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_datasheet() {
        let g = GpuSpec::a100_80g();
        assert_eq!(g.peak_flops, 312e12);
        assert_eq!(g.mem_bandwidth, 2039e9);
        assert_eq!(g.mem_capacity, 80 * (1 << 30));
    }

    #[test]
    fn effective_rates_below_peak() {
        for g in [
            GpuSpec::a100_80g(),
            GpuSpec::a100_40g(),
            GpuSpec::h100_80g(),
        ] {
            assert!(g.effective_flops() < g.peak_flops);
            assert!(g.effective_bandwidth() < g.mem_bandwidth);
            assert!(g.effective_flops() > 0.0);
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let l = LinkSpec::ethernet_25g();
        assert!(l.transfer_time(2_000_000) > l.transfer_time(1_000_000));
        // Zero bytes still pays launch latency.
        assert!(l.transfer_time(0) >= l.latency);
    }

    #[test]
    fn paper_kv_transfer_example() {
        // §3.3: 1.13 GB per 512-token OPT-66B request; over NVLink the
        // transfer should be a few milliseconds — "negligible".
        let t = LinkSpec::nvlink().transfer_time(1_130_000_000);
        assert!(t < 0.01, "NVLink transfer took {t}s");
        // Over the 25 Gbps cross-node link it is hundreds of milliseconds —
        // which is why the low node-affinity algorithm exists.
        let t = LinkSpec::ethernet_25g().transfer_time(1_130_000_000);
        assert!(t > 0.1, "cross-node transfer took only {t}s");
    }

    #[test]
    fn allreduce_time_properties() {
        let l = LinkSpec::nvlink();
        assert_eq!(l.allreduce_time(1 << 20, 1), 0.0);
        let t2 = l.allreduce_time(1 << 20, 2);
        let t4 = l.allreduce_time(1 << 20, 4);
        assert!(t2 > 0.0);
        // More participants move more total volume per byte reduced.
        assert!(t4 > t2);
    }
}
