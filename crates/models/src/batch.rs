//! Batch descriptors consumed by the latency model.
//!
//! Appendix A characterizes a batch by `B` (batch size), `t` (total new
//! tokens), and `t₂` (squared sum of per-request lengths). These small
//! value types carry exactly that information from the engines to the cost
//! model. [`PrefillBatch`] additionally supports *chunked* prefill
//! (SARATHI-style \[8\]): an entry may process `new` tokens against `prior`
//! already-prefilled context tokens, generalizing the attention weight
//! from `l²` to `new · (prior + new)`.

use serde::{Deserialize, Serialize};

/// One prefill work item: `new` prompt tokens processed against `prior`
/// context tokens already in the KV cache (zero for whole-prompt prefill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillChunk {
    /// Tokens processed this step.
    pub new: u32,
    /// Context tokens already prefilled in earlier chunks.
    pub prior: u32,
}

/// A prefill batch: each entry is one request's (possibly chunked) prefill
/// work for this step.
///
/// # Examples
///
/// ```
/// use distserve_models::PrefillBatch;
///
/// let b = PrefillBatch::new(vec![512, 128]);
/// assert_eq!(b.total_tokens(), 640);
/// assert_eq!(b.attention_weight(), 512 * 512 + 128 * 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillBatch {
    chunks: Vec<PrefillChunk>,
}

impl PrefillBatch {
    /// Creates a whole-prompt batch from per-request prompt lengths.
    #[must_use]
    pub fn new(input_lens: Vec<u32>) -> Self {
        debug_assert!(
            input_lens.iter().all(|&l| l > 0),
            "prefill lengths must be positive"
        );
        PrefillBatch {
            chunks: input_lens
                .into_iter()
                .map(|l| PrefillChunk { new: l, prior: 0 })
                .collect(),
        }
    }

    /// Creates an empty batch.
    #[must_use]
    pub fn empty() -> Self {
        PrefillBatch { chunks: Vec::new() }
    }

    /// A batch holding a single whole-prompt request of length `len`.
    #[must_use]
    pub fn single(len: u32) -> Self {
        PrefillBatch::new(vec![len])
    }

    /// Creates a batch from explicit chunks (chunked prefill).
    #[must_use]
    pub fn from_chunks(chunks: Vec<PrefillChunk>) -> Self {
        PrefillBatch { chunks }
    }

    /// Appends one chunk.
    pub fn push_chunk(&mut self, new: u32, prior: u32) {
        self.chunks.push(PrefillChunk { new, prior });
    }

    /// Number of requests `B`.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.chunks.len()
    }

    /// Total new tokens `t = Σ newᵢ`.
    #[must_use]
    pub fn total_tokens(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.new)).sum()
    }

    /// Attention weight `Σ newᵢ · (priorᵢ + newᵢ)`, which reduces to the
    /// paper's `t₂ = Σ lᵢ²` for whole-prompt prefill.
    #[must_use]
    pub fn attention_weight(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| u64::from(c.new) * (u64::from(c.prior) + u64::from(c.new)))
            .sum()
    }

    /// The chunks of the batch.
    #[must_use]
    pub fn chunks(&self) -> &[PrefillChunk] {
        &self.chunks
    }

    /// Whether the batch holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

/// A decoding batch: each entry is the current context length (prompt plus
/// generated-so-far) of one request; each request contributes one new token.
///
/// # Examples
///
/// ```
/// use distserve_models::DecodeBatch;
///
/// let b = DecodeBatch::new(vec![512, 600]);
/// assert_eq!(b.batch_size(), 2);
/// assert_eq!(b.total_context(), 1112);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeBatch {
    context_lens: Vec<u32>,
}

impl DecodeBatch {
    /// Creates a batch from per-request context lengths.
    #[must_use]
    pub fn new(context_lens: Vec<u32>) -> Self {
        DecodeBatch { context_lens }
    }

    /// Creates an empty batch.
    #[must_use]
    pub fn empty() -> Self {
        DecodeBatch {
            context_lens: Vec::new(),
        }
    }

    /// A uniform batch of `batch_size` requests at context length `ctx`
    /// (used by Figures 2, 3, and 5).
    #[must_use]
    pub fn uniform(batch_size: usize, ctx: u32) -> Self {
        DecodeBatch::new(vec![ctx; batch_size])
    }

    /// Number of requests `B` (= new tokens this step).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.context_lens.len()
    }

    /// Total context tokens `t = Σ lᵢ` whose KV entries are read.
    #[must_use]
    pub fn total_context(&self) -> u64 {
        self.context_lens.iter().map(|&l| u64::from(l)).sum()
    }

    /// Per-request context lengths.
    #[must_use]
    pub fn lens(&self) -> &[u32] {
        &self.context_lens
    }

    /// Whether the batch holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.context_lens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_aggregates() {
        let b = PrefillBatch::new(vec![100, 200, 300]);
        assert_eq!(b.batch_size(), 3);
        assert_eq!(b.total_tokens(), 600);
        assert_eq!(b.attention_weight(), 10_000 + 40_000 + 90_000);
        assert!(!b.is_empty());
    }

    #[test]
    fn prefill_single() {
        let b = PrefillBatch::single(512);
        assert_eq!(b.batch_size(), 1);
        assert_eq!(b.total_tokens(), 512);
    }

    #[test]
    fn chunked_attention_weight() {
        // Second chunk of 256 tokens after 512 already prefilled:
        // attention touches 256 × (512 + 256).
        let mut b = PrefillBatch::empty();
        b.push_chunk(256, 512);
        assert_eq!(b.total_tokens(), 256);
        assert_eq!(b.attention_weight(), 256 * 768);
    }

    #[test]
    fn chunks_sum_to_whole_prefill_linear_term() {
        // Splitting a 512-token prefill into two 256-token chunks keeps
        // the linear token count and *reduces* nothing on attention:
        // 256·256 + 256·512... chunked total attention equals the
        // whole-prompt t² when summed over chunks.
        let whole = PrefillBatch::single(512);
        let mut chunked_total = 0u64;
        for (new, prior) in [(256u32, 0u32), (256, 256)] {
            let b = PrefillBatch::from_chunks(vec![PrefillChunk { new, prior }]);
            chunked_total += b.attention_weight();
        }
        // 256·256 + 256·512 = 196608 < 512² = 262144: FlashAttention's
        // causal structure means chunking revisits only the KV reads, so
        // the chunked sum is smaller by the off-diagonal half. The cost
        // model charges the full rectangle `new · (prior + new)`, which
        // is the correct per-step KV traffic.
        assert_eq!(chunked_total, 256 * 256 + 256 * 512);
        assert!(chunked_total < whole.attention_weight());
    }

    #[test]
    fn decode_aggregates() {
        let b = DecodeBatch::uniform(128, 256);
        assert_eq!(b.batch_size(), 128);
        assert_eq!(b.total_context(), 128 * 256);
    }

    #[test]
    fn empty_batches() {
        assert!(PrefillBatch::empty().is_empty());
        assert!(DecodeBatch::empty().is_empty());
        assert_eq!(DecodeBatch::empty().total_context(), 0);
        assert_eq!(PrefillBatch::empty().attention_weight(), 0);
    }

    #[test]
    fn attention_weight_overflow_headroom() {
        // 1024 requests of 2048 tokens each stays well inside u64.
        let b = PrefillBatch::new(vec![2048; 1024]);
        assert_eq!(b.attention_weight(), 1024 * 2048 * 2048);
    }
}
