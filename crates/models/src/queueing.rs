//! Closed-form M/D/1 queueing results (paper §3.1, Eqs. 1–3).
//!
//! After disaggregation, a prefill instance serving uniform-length prompts
//! FCFS without batching behaves as an M/D/1 queue. The paper uses three
//! closed forms to explain the parallelism preference of the prefill phase;
//! they are reproduced here and used to (a) drive Figure 4(b) and (b)
//! validate the discrete-event engine against theory.

/// `x > lo` spelled via `partial_cmp` so NaN (incomparable) is rejected
/// explicitly instead of falling through a negated comparison.
fn exceeds(x: f64, lo: f64) -> bool {
    x.partial_cmp(&lo) == Some(core::cmp::Ordering::Greater)
}

/// Average waiting time (excluding service) in an M/D/1 queue with arrival
/// rate `rate` and deterministic service time `d`: `R·D² / (2(1 − R·D))`.
///
/// Returns `None` when the queue is unstable (`rate * d >= 1`) or the
/// parameters are not positive.
#[must_use]
pub fn md1_avg_wait(rate: f64, d: f64) -> Option<f64> {
    if !exceeds(rate, 0.0) || !exceeds(d, 0.0) || rate * d >= 1.0 {
        return None;
    }
    Some(rate * d * d / (2.0 * (1.0 - rate * d)))
}

/// Eq. 1 — average TTFT on a single device: `D + R·D² / (2(1 − R·D))`.
#[must_use]
pub fn eq1_avg_ttft(rate: f64, d: f64) -> Option<f64> {
    Some(d + md1_avg_wait(rate, d)?)
}

/// Eq. 2 — average TTFT under 2-way inter-op (pipeline) parallelism.
///
/// With `D ≈ D_s ≈ 2·D_m`, the queue drains at the slowest-stage rate:
/// `D + R·D² / (4(2 − R·D))`.
#[must_use]
pub fn eq2_avg_ttft_inter(rate: f64, d: f64) -> Option<f64> {
    if !exceeds(rate, 0.0) || !exceeds(d, 0.0) || rate * d >= 2.0 {
        return None;
    }
    Some(d + rate * d * d / (4.0 * (2.0 - rate * d)))
}

/// Eq. 3 — average TTFT under 2-way intra-op (tensor) parallelism with
/// speedup coefficient `k ∈ (1, 2]`: `D/K + R·D² / (2K(K − R·D))`.
#[must_use]
pub fn eq3_avg_ttft_intra(rate: f64, d: f64, k: f64) -> Option<f64> {
    if !exceeds(rate, 0.0) || !exceeds(d, 0.0) || !exceeds(k, 1.0) || rate * d >= k {
        return None;
    }
    Some(d / k + rate * d * d / (2.0 * k * (k - rate * d)))
}

/// The arrival rate at which intra-op (Eq. 3) and inter-op (Eq. 2) yield
/// equal average TTFT, found by bisection; below it intra-op wins, above
/// it inter-op wins (Figure 4's crossover).
///
/// Returns `None` if intra-op dominates over the whole stable range
/// (possible when `k` is close to 2).
#[must_use]
pub fn intra_inter_crossover(d: f64, k: f64) -> Option<f64> {
    if !exceeds(d, 0.0) || !exceeds(k, 1.0) {
        return None;
    }
    let diff =
        |r: f64| -> Option<f64> { Some(eq3_avg_ttft_intra(r, d, k)? - eq2_avg_ttft_inter(r, d)?) };
    // Scan for a sign change over the jointly stable range (0, k/d).
    let hi_limit = (k / d).min(2.0 / d) * 0.999;
    let steps = 4096;
    let mut prev_r = hi_limit / f64::from(steps);
    let mut prev = diff(prev_r)?;
    for i in 2..=steps {
        let r = hi_limit * f64::from(i) / f64::from(steps);
        let Some(cur) = diff(r) else { break };
        if prev <= 0.0 && cur > 0.0 {
            // Bisect between prev_r and r.
            let (mut lo, mut hi) = (prev_r, r);
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                match diff(mid) {
                    Some(v) if v > 0.0 => hi = mid,
                    Some(_) => lo = mid,
                    None => break,
                }
            }
            return Some(0.5 * (lo + hi));
        }
        prev = cur;
        prev_r = r;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_wait_grows_with_utilization() {
        let d = 0.1;
        let w1 = md1_avg_wait(1.0, d).unwrap();
        let w5 = md1_avg_wait(5.0, d).unwrap();
        let w9 = md1_avg_wait(9.0, d).unwrap();
        assert!(w1 < w5 && w5 < w9);
    }

    #[test]
    fn md1_unstable_rejected() {
        assert_eq!(md1_avg_wait(10.0, 0.1), None);
        assert_eq!(md1_avg_wait(11.0, 0.1), None);
        assert_eq!(md1_avg_wait(-1.0, 0.1), None);
        assert_eq!(md1_avg_wait(1.0, 0.0), None);
    }

    #[test]
    fn known_md1_value() {
        // ρ = 0.5: wait = R·D²/(2·(1−ρ)) = 5·0.01/1 = 0.05... with R=5, D=0.1:
        // 5·0.01/(2·0.5) = 0.05.
        let w = md1_avg_wait(5.0, 0.1).unwrap();
        assert!((w - 0.05).abs() < 1e-12);
    }

    #[test]
    fn eq1_is_service_plus_wait() {
        let t = eq1_avg_ttft(5.0, 0.1).unwrap();
        assert!((t - 0.15).abs() < 1e-12);
    }

    #[test]
    fn low_rate_intra_beats_inter() {
        // §3.1: at lower rates execution time dominates, so intra-op's
        // shorter execution wins.
        let d = 0.1;
        let k = 1.7;
        let r = 0.5;
        let intra = eq3_avg_ttft_intra(r, d, k).unwrap();
        let inter = eq2_avg_ttft_inter(r, d).unwrap();
        assert!(intra < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn high_rate_inter_beats_intra() {
        // As the rate approaches intra-op's stability limit K/D, its
        // queueing delay blows up while inter-op (limit 2/D) stays calm.
        let d = 0.1;
        let k = 1.7;
        let r = 16.5; // Close to K/D = 17.
        let intra = eq3_avg_ttft_intra(r, d, k).unwrap();
        let inter = eq2_avg_ttft_inter(r, d).unwrap();
        assert!(inter < intra, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn crossover_moves_right_with_k() {
        // A better speedup coefficient keeps intra-op competitive to
        // higher rates (Figure 4b).
        let d = 0.1;
        let c15 = intra_inter_crossover(d, 1.5).unwrap();
        let c18 = intra_inter_crossover(d, 1.8).unwrap();
        assert!(c18 > c15, "c(K=1.8) = {c18} <= c(K=1.5) = {c15}");
        // Both crossovers sit inside the stable region.
        assert!(c15 > 0.0 && c15 < 2.0 / d);
    }

    #[test]
    fn crossover_consistent_with_formulas() {
        let d = 0.08;
        let k = 1.6;
        let r = intra_inter_crossover(d, k).unwrap();
        let intra = eq3_avg_ttft_intra(r, d, k).unwrap();
        let inter = eq2_avg_ttft_inter(r, d).unwrap();
        assert!(
            (intra - inter).abs() < 1e-6,
            "at crossover {r}: intra {intra} != inter {inter}"
        );
    }

    #[test]
    fn eq3_rejects_k_at_most_one() {
        assert_eq!(eq3_avg_ttft_intra(1.0, 0.1, 1.0), None);
        assert_eq!(eq3_avg_ttft_intra(1.0, 0.1, 0.5), None);
    }
}
