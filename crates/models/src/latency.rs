//! The analytical execution-time model (paper Appendix A).
//!
//! Both engines — DistServe's disaggregated instances and the colocated
//! vLLM-style baseline — obtain batch execution times from a [`CostModel`].
//! The reference implementation, [`RooflineModel`], prices each operator as
//! the *maximum* of its compute time and its memory time on the target GPU
//! (a roofline), which subsumes the paper's piecewise formulation:
//!
//! * Dense GEMMs are compute-bound for large token counts (prefill) and
//!   memory-bound for small ones (decoding) — the roofline switches regime
//!   automatically, reproducing the paper's `C1` (compute) and `C4`
//!   (weight-read) terms at the extremes.
//! * FlashAttention prefill attention is memory-bound with arithmetic
//!   intensity `2b/3` (paper A.2): the `3·h·t₂/b` byte count is used
//!   directly.
//! * Decoding attention reads the KV cache: `3·h·t` bytes (paper A.3).
//!
//! Tensor parallelism divides per-GPU work by `tp` and adds two ring
//! all-reduces of the activation per layer; pipeline parallelism divides
//! layers into `pp` stages and adds inter-stage activation transfers. These
//! communication terms are what make the intra-op speedup coefficient
//! `K < tp` (paper §3.1).
//!
//! A *mixed* batch (prefill requests plus decoding requests in one step,
//! the continuous-batching case of Figure 2) is priced by the same
//! formulas with the token aggregates summed — this is how the colocated
//! baseline experiences prefill-decoding interference.

use serde::{Deserialize, Serialize};

use crate::arch::{DType, ModelArch};
use crate::batch::{DecodeBatch, PrefillBatch};
use crate::hardware::{GpuSpec, LinkSpec};
use crate::parallel::ParallelismConfig;

/// Execution-time breakdown for one batch on one instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// GEMM plus attention time (roofline of compute and memory), seconds.
    pub execution: f64,
    /// Tensor-parallel all-reduce and pipeline point-to-point time, seconds.
    pub communication: f64,
    /// Kernel launch and scheduler overhead, seconds.
    pub overhead: f64,
}

impl PhaseTiming {
    /// Total wall-clock seconds.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.execution + self.communication + self.overhead
    }
}

/// Prices batch execution for an architecture under a parallelism config.
///
/// `*_stage_time` is how long one pipeline stage is *occupied* (bounds
/// throughput: a stage admits a new batch every `stage_time` seconds).
/// `*_latency` is how long one batch takes to traverse *all* stages
/// (bounds TTFT / TPOT).
pub trait CostModel: Send + Sync {
    /// Stage-occupancy time for a mixed batch of prefill and decode work.
    fn mixed_stage_time(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> PhaseTiming;

    /// End-to-end pipeline latency for a mixed batch.
    fn mixed_latency(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> PhaseTiming;

    /// Stage-occupancy time for a pure prefill batch.
    fn prefill_stage_time(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        batch: &PrefillBatch,
    ) -> PhaseTiming {
        self.mixed_stage_time(arch, par, batch, &DecodeBatch::empty())
    }

    /// End-to-end latency for a pure prefill batch (TTFT's execution part).
    fn prefill_latency(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        batch: &PrefillBatch,
    ) -> PhaseTiming {
        self.mixed_latency(arch, par, batch, &DecodeBatch::empty())
    }

    /// Stage-occupancy time for a pure decoding step.
    fn decode_stage_time(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        batch: &DecodeBatch,
    ) -> PhaseTiming {
        self.mixed_stage_time(arch, par, &PrefillBatch::empty(), batch)
    }

    /// End-to-end latency for a pure decoding step (one token interval).
    fn decode_latency(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        batch: &DecodeBatch,
    ) -> PhaseTiming {
        self.mixed_latency(arch, par, &PrefillBatch::empty(), batch)
    }
}

/// Roofline-based cost model parameterized by GPU and link hardware.
///
/// # Examples
///
/// ```
/// use distserve_models::{
///     CostModel, DType, OptModel, ParallelismConfig, PrefillBatch, RooflineModel,
/// };
///
/// let model = RooflineModel::a100();
/// let arch = OptModel::Opt13B.arch();
/// let batch = PrefillBatch::single(512);
/// let t = model
///     .prefill_latency(&arch, ParallelismConfig::SINGLE, &batch)
///     .total();
/// // A 512-token prefill of a 13B model takes tens of milliseconds on an
/// // A100 — the regime Figure 1 operates in.
/// assert!((0.03..0.2).contains(&t), "got {t}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineModel {
    /// GPU hardware characteristics.
    pub gpu: GpuSpec,
    /// Link used for tensor-parallel all-reduce (NVLink inside a node).
    pub tp_link: LinkSpec,
    /// Link used for pipeline stage-to-stage activation transfer.
    pub pp_link: LinkSpec,
    /// Weight and KV precision.
    pub dtype: DType,
    /// FlashAttention block size `b` (paper A.2; 16 or 32).
    pub flash_block: u32,
    /// Fixed kernel-launch cost per transformer layer, seconds.
    pub layer_overhead: f64,
    /// Fixed scheduler/runtime cost per executed batch per stage, seconds.
    pub step_overhead: f64,
    /// Per-GPU efficiency loss under tensor parallelism: execution time is
    /// scaled by `1 + penalty·(tp − 1)·(5120 / hidden)`, modeling the
    /// utilization drop of smaller per-GPU GEMM shards — sharding a small
    /// model hurts much more than sharding a large one. This is the main
    /// determinant of the intra-op speedup coefficient `K` (§3.1):
    /// penalty 0.25 yields K(2) ≈ 1.6 for a 13B model and K(2) ≈ 1.75 for
    /// a 66B model, matching the paper's Figure 4 regime.
    pub tp_penalty: f64,
}

impl RooflineModel {
    /// A100-80G with NVLink, driven by a *modern* highly-optimized engine
    /// (fused kernels, CUDA graphs): ~52% GEMM MFU, ~80% of HBM bandwidth,
    /// ~1 ms scheduler overhead per step.
    #[must_use]
    pub fn a100() -> Self {
        RooflineModel {
            gpu: GpuSpec::a100_80g(),
            tp_link: LinkSpec::nvlink(),
            pp_link: LinkSpec::nvlink(),
            dtype: DType::F16,
            flash_block: 32,
            layer_overhead: 15e-6,
            step_overhead: 1.0e-3,
            tp_penalty: 0.08,
        }
    }

    /// A100-80G driven by a 2023-era serving engine — the regime the
    /// paper's testbed numbers come from (its C++/CUDA engine plus a
    /// Python orchestration layer). Roughly 40% GEMM MFU, ~45% of HBM
    /// bandwidth on the scattered reads of decoding, and several
    /// milliseconds of per-step scheduler overhead.
    ///
    /// Calibrated against the paper's observable operating points: a
    /// 512-token OPT-13B prefill lands near 105 ms (consistent with
    /// Figure 1's prefill-only goodput of ~5.6 rps under a 0.2 s P90
    /// TTFT), and a batch-128 OPT-13B decoding step lands near 40 ms
    /// (consistent with Figure 5's latency range). Paper-figure
    /// reproductions use this profile; [`RooflineModel::a100`] shows how
    /// the picture shifts with a modern engine.
    #[must_use]
    pub fn a100_conservative() -> Self {
        RooflineModel {
            gpu: GpuSpec {
                gemm_efficiency: 0.40,
                mem_efficiency: 0.45,
                ..GpuSpec::a100_80g()
            },
            tp_link: LinkSpec::nvlink(),
            pp_link: LinkSpec::nvlink(),
            dtype: DType::F16,
            flash_block: 32,
            layer_overhead: 25e-6,
            step_overhead: 5.0e-3,
            tp_penalty: 0.25,
        }
    }

    /// Per-layer execution and communication time for a mixed batch on one
    /// GPU of a `tp`-way tensor-parallel group.
    fn per_layer(
        &self,
        arch: &ModelArch,
        tp: u32,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> (f64, f64) {
        let h = f64::from(arch.hidden);
        let m = f64::from(arch.ffn);
        let tp_f = f64::from(tp);
        let elem = self.dtype.bytes() as f64;
        // Sharding shrinks per-GPU GEMMs, costing utilization; the hit
        // shrinks with hidden size (bigger shards stay efficient).
        const REF_HIDDEN: f64 = 5120.0;
        let tp_discount = 1.0 + self.tp_penalty * (tp_f - 1.0) * (REF_HIDDEN / h).min(1.0);
        let flops = self.gpu.effective_flops() / tp_discount;
        let bw = self.gpu.effective_bandwidth() / tp_discount;

        // New tokens processed this step: all prefill tokens plus one per
        // decoding request.
        let t_new = prefill.total_tokens() as f64 + decode.batch_size() as f64;
        if t_new == 0.0 {
            return (0.0, 0.0);
        }

        // Dense GEMMs: Q/K/V, attention output, FFN matrices (GQA and
        // gated FFNs handled by the architecture's MAC count).
        let dense_macs = arch.dense_macs_per_token() as f64;
        let gemm_compute = 2.0 * t_new * dense_macs / tp_f / flops;
        let weight_bytes = elem * dense_macs / tp_f;
        let act_bytes = elem * t_new * (8.0 * h + 2.0 * m) / tp_f;
        let gemm_memory = (weight_bytes + act_bytes) / bw;
        let gemm = gemm_compute.max(gemm_memory);

        // Attention traffic is 1/3 query-side (full head count) and 2/3
        // KV-side (shrunk under GQA): Appendix A's `3h` becomes
        // `h + 2·kv_dim`.
        let h_attn = h + 2.0 * f64::from(arch.kv_dim());

        // Prefill attention (FlashAttention): AI = 2b/3, memory-bound on
        // A100-class hardware (paper A.2).
        let t2 = prefill.attention_weight() as f64;
        let pf_attn = if t2 > 0.0 {
            let compute = 4.0 * t2 * h / tp_f / flops;
            let memory = elem * h_attn * t2 / f64::from(self.flash_block) / tp_f / bw;
            compute.max(memory)
        } else {
            0.0
        };

        // Decoding attention: reads the whole KV cache of every request
        // (paper A.3: 3·h·t bytes-equivalent elements for multi-head).
        let ctx = decode.total_context() as f64;
        let dc_attn = if ctx > 0.0 {
            let compute = 4.0 * ctx * h / tp_f / flops;
            let memory = elem * h_attn * ctx / tp_f / bw;
            compute.max(memory)
        } else {
            0.0
        };

        // Tensor parallelism pays two all-reduces of the full activation
        // per layer (after attention and after the FFN).
        let comm = if tp > 1 {
            let bytes = (t_new * h * elem) as u64;
            2.0 * self.tp_link.allreduce_time(bytes, tp)
        } else {
            0.0
        };

        (gemm + pf_attn + dc_attn + self.layer_overhead, comm)
    }

    /// Activation bytes crossing a pipeline-stage boundary for this batch.
    fn pp_boundary_bytes(
        &self,
        arch: &ModelArch,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> u64 {
        let t_new = prefill.total_tokens() + decode.batch_size() as u64;
        t_new * u64::from(arch.hidden) * self.dtype.bytes()
    }

    /// Smallest prompt length at which the prefill GEMMs become
    /// compute-bound on this hardware — the `L_m` threshold of §3.1 / §4.3
    /// used by the prefill batching policy.
    #[must_use]
    pub fn prefill_saturation_tokens(&self, arch: &ModelArch, tp: u32) -> u32 {
        let mut lo = 1u32;
        let mut hi = arch.max_seq_len.max(2);
        // Binary search the crossover of compute and memory time.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let batch = PrefillBatch::single(mid);
            let h = f64::from(arch.hidden);
            let m = f64::from(arch.ffn);
            let elem = self.dtype.bytes() as f64;
            let t = batch.total_tokens() as f64;
            let dense_macs = arch.dense_macs_per_token() as f64;
            let compute = 2.0 * t * dense_macs / f64::from(tp) / self.gpu.effective_flops();
            let memory = (elem * dense_macs / f64::from(tp)
                + elem * t * (8.0 * h + 2.0 * m) / f64::from(tp))
                / self.gpu.effective_bandwidth();
            if compute >= memory {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // The knee is soft in practice: the GPU only approaches peak GEMM
        // efficiency a few multiples past the roofline crossover, which is
        // why the paper profiles L_m at ~512 for a 13B model.
        (lo * 5).min(arch.max_seq_len)
    }
}

impl CostModel for RooflineModel {
    fn mixed_stage_time(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> PhaseTiming {
        if prefill.is_empty() && decode.is_empty() {
            return PhaseTiming::default();
        }
        let (exec, comm) = self.per_layer(arch, par.tp, prefill, decode);
        let layers = f64::from(par.layers_per_stage(arch));
        let mut communication = comm * layers;
        if par.pp > 1 {
            communication += self
                .pp_link
                .transfer_time(self.pp_boundary_bytes(arch, prefill, decode));
        }
        PhaseTiming {
            execution: (exec - self.layer_overhead) * layers,
            communication,
            overhead: self.layer_overhead * layers + self.step_overhead,
        }
    }

    fn mixed_latency(
        &self,
        arch: &ModelArch,
        par: ParallelismConfig,
        prefill: &PrefillBatch,
        decode: &DecodeBatch,
    ) -> PhaseTiming {
        if prefill.is_empty() && decode.is_empty() {
            return PhaseTiming::default();
        }
        let (exec, comm) = self.per_layer(arch, par.tp, prefill, decode);
        let layers = f64::from(arch.num_layers);
        let mut communication = comm * layers;
        if par.pp > 1 {
            communication += f64::from(par.pp - 1)
                * self
                    .pp_link
                    .transfer_time(self.pp_boundary_bytes(arch, prefill, decode));
        }
        PhaseTiming {
            execution: (exec - self.layer_overhead) * layers,
            communication,
            overhead: self.layer_overhead * layers + self.step_overhead * f64::from(par.pp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::OptModel;

    fn model() -> RooflineModel {
        RooflineModel::a100()
    }

    fn p1() -> ParallelismConfig {
        ParallelismConfig::SINGLE
    }

    #[test]
    fn decode_step_near_weight_read_time() {
        // A small-batch decoding step is bounded by reading the weights
        // once: ≈ 26 GB / effective bandwidth ≈ 16 ms for OPT-13B.
        let arch = OptModel::Opt13B.arch();
        let t = model()
            .decode_latency(&arch, p1(), &DecodeBatch::uniform(1, 512))
            .total();
        let weight_read = arch.weight_bytes(DType::F16) as f64 / model().gpu.effective_bandwidth();
        assert!(
            t > weight_read && t < weight_read * 1.8,
            "step {t}s vs weight read {weight_read}s"
        );
    }

    #[test]
    fn prefill_compute_bound_at_512() {
        // 13B × 512 tokens: execution should be within 2x of the pure
        // FLOPs bound — i.e. compute-bound (paper §2.1).
        let arch = OptModel::Opt13B.arch();
        let timing = model().prefill_latency(&arch, p1(), &PrefillBatch::single(512));
        let flop_time = arch.prefill_flops(512) as f64 / model().gpu.effective_flops();
        assert!(timing.execution >= flop_time * 0.9);
        assert!(timing.execution <= flop_time * 1.5);
    }

    #[test]
    fn prefill_time_scales_superlinearly_past_saturation() {
        let arch = OptModel::Opt13B.arch();
        let m = model();
        let t512 = m
            .prefill_latency(&arch, p1(), &PrefillBatch::single(512))
            .total();
        let t1024 = m
            .prefill_latency(&arch, p1(), &PrefillBatch::single(1024))
            .total();
        assert!(t1024 > 1.8 * t512, "1024: {t1024}, 512: {t512}");
    }

    #[test]
    fn batching_prefill_past_saturation_is_proportional() {
        // Once compute-bound, doubling the batch doubles the time
        // (Figure 3a flattens): throughput gains vanish.
        let arch = OptModel::Opt13B.arch();
        let m = model();
        let one = m
            .prefill_stage_time(&arch, p1(), &PrefillBatch::new(vec![1024]))
            .total();
        let two = m
            .prefill_stage_time(&arch, p1(), &PrefillBatch::new(vec![1024, 1024]))
            .total();
        let ratio = two / one;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn adding_prefill_to_decode_batch_inflates_step() {
        // Figure 2: one prefill request added to a decoding batch slows
        // the whole step down by an order of magnitude.
        let arch = OptModel::Opt13B.arch();
        let m = model();
        let decode = DecodeBatch::uniform(32, 512);
        let pure = m.decode_stage_time(&arch, p1(), &decode).total();
        let mixed = m
            .mixed_stage_time(&arch, p1(), &PrefillBatch::single(512), &decode)
            .total();
        assert!(mixed > pure * 2.5, "pure {pure}, mixed {mixed}");
    }

    #[test]
    fn tensor_parallel_speedup_below_linear() {
        // §3.1: the intra-op speedup coefficient K satisfies 1 < K < tp.
        let arch = OptModel::Opt66B.arch();
        let m = model();
        let batch = PrefillBatch::single(512);
        let d1 = m
            .prefill_latency(&arch, ParallelismConfig::new(1, 1), &batch)
            .total();
        let d2 = m
            .prefill_latency(&arch, ParallelismConfig::new(2, 1), &batch)
            .total();
        let k = d1 / d2;
        assert!(k > 1.5 && k < 2.0, "K = {k}");
    }

    #[test]
    fn pipeline_latency_close_to_single_device() {
        // §3.1: D_s ≈ D for 2-way inter-op (negligible inter-layer
        // activation communication over NVLink).
        let arch = OptModel::Opt66B.arch();
        let m = model();
        let batch = PrefillBatch::single(512);
        let d = m
            .prefill_latency(&arch, ParallelismConfig::new(1, 1), &batch)
            .total();
        let ds = m
            .prefill_latency(&arch, ParallelismConfig::new(1, 2), &batch)
            .total();
        assert!((ds / d - 1.0).abs() < 0.05, "D={d}, Ds={ds}");
        // But the stage time is roughly halved, doubling throughput.
        let stage = m
            .prefill_stage_time(&arch, ParallelismConfig::new(1, 2), &batch)
            .total();
        assert!((stage / (d / 2.0) - 1.0).abs() < 0.1, "stage={stage}");
    }

    #[test]
    fn decode_intra_op_diminishing_returns() {
        // Figure 5: intra-op reduces decoding latency with diminishing
        // returns.
        let arch = OptModel::Opt13B.arch();
        let m = model();
        let batch = DecodeBatch::uniform(128, 256);
        let l1 = m
            .decode_latency(&arch, ParallelismConfig::new(1, 1), &batch)
            .total();
        let l2 = m
            .decode_latency(&arch, ParallelismConfig::new(2, 1), &batch)
            .total();
        let l4 = m
            .decode_latency(&arch, ParallelismConfig::new(4, 1), &batch)
            .total();
        let s2 = l1 / l2;
        let s4 = l1 / l4;
        assert!(s2 > 1.2 && s2 < 2.0, "s2 = {s2}");
        assert!(s4 > s2, "s4 = {s4} not above s2 = {s2}");
        assert!(s4 < 4.0, "s4 = {s4} should be sublinear");
        // And the marginal benefit shrinks: 2→4 gains less than 1→2.
        assert!(s4 / s2 < s2, "no diminishing returns: s2={s2}, s4={s4}");
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let arch = OptModel::Opt13B.arch();
        let t =
            model().mixed_stage_time(&arch, p1(), &PrefillBatch::empty(), &DecodeBatch::empty());
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn saturation_tokens_in_plausible_range() {
        // The paper profiles L_m ≈ 512 for a 13B model on A100.
        let arch = OptModel::Opt13B.arch();
        let lm = model().prefill_saturation_tokens(&arch, 1);
        assert!(
            (128..=1024).contains(&lm),
            "L_m = {lm} outside plausible range"
        );
        // With TP the per-GPU work halves but so do the weight reads; the
        // threshold stays in the same ballpark.
        let lm2 = model().prefill_saturation_tokens(&arch, 2);
        assert!((64..=1024).contains(&lm2));
    }

    #[test]
    fn timing_components_non_negative() {
        let arch = OptModel::Opt66B.arch();
        let m = model();
        for (tp, pp) in [(1, 1), (2, 1), (1, 2), (4, 2), (8, 4)] {
            let par = ParallelismConfig::new(tp, pp);
            let t = m.mixed_stage_time(
                &arch,
                par,
                &PrefillBatch::new(vec![256, 512]),
                &DecodeBatch::uniform(16, 300),
            );
            assert!(t.execution > 0.0);
            assert!(t.communication >= 0.0);
            assert!(t.overhead > 0.0);
            if tp > 1 {
                assert!(t.communication > 0.0, "tp={tp} should communicate");
            }
        }
    }
}
