//! Ordinary least-squares fitting.
//!
//! The paper determines its latency-model constants `C1..C5` by "profiling
//! and interpolation" (Appendix A). [`LeastSquares`] is the interpolation
//! half: it fits linear coefficients from observed `(features, time)`
//! samples by solving the normal equations with Gaussian elimination. The
//! systems involved are tiny (2–3 unknowns), so a dense direct solve is
//! the right tool.

/// Accumulates samples and solves `argmin_β ‖Xβ − y‖²`.
///
/// # Examples
///
/// ```
/// use distserve_models::fit::LeastSquares;
///
/// // Recover y = 2·a + 3·b + 1 from exact samples.
/// let mut ls = LeastSquares::new(3);
/// for (a, b) in [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (2.0, 5.0)] {
///     ls.add(&[a, b, 1.0], 2.0 * a + 3.0 * b + 1.0);
/// }
/// let beta = ls.solve().unwrap();
/// assert!((beta[0] - 2.0).abs() < 1e-9);
/// assert!((beta[1] - 3.0).abs() < 1e-9);
/// assert!((beta[2] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LeastSquares {
    dims: usize,
    /// Normal matrix `XᵀX`, row-major.
    xtx: Vec<f64>,
    /// Right-hand side `Xᵀy`.
    xty: Vec<f64>,
    samples: usize,
}

/// Errors from the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than unknowns.
    Underdetermined,
    /// The normal matrix is singular (features are collinear).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Underdetermined => write!(f, "fewer samples than unknowns"),
            FitError::Singular => write!(f, "normal matrix is singular"),
        }
    }
}

impl std::error::Error for FitError {}

impl LeastSquares {
    /// Creates a fitter for `dims` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "need at least one coefficient");
        LeastSquares {
            dims,
            xtx: vec![0.0; dims * dims],
            xty: vec![0.0; dims],
            samples: 0,
        }
    }

    /// Adds one observation: feature vector `x` with response `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dims`.
    pub fn add(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dims, "feature vector length mismatch");
        for i in 0..self.dims {
            for j in 0..self.dims {
                self.xtx[i * self.dims + j] += x[i] * x[j];
            }
            self.xty[i] += x[i] * y;
        }
        self.samples += 1;
    }

    /// Number of observations added so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Solves for the coefficient vector.
    ///
    /// # Errors
    ///
    /// [`FitError::Underdetermined`] with fewer samples than unknowns,
    /// [`FitError::Singular`] when features are linearly dependent.
    pub fn solve(&self) -> Result<Vec<f64>, FitError> {
        if self.samples < self.dims {
            return Err(FitError::Underdetermined);
        }
        let n = self.dims;
        let mut a = self.xtx.clone();
        let mut b = self.xty.clone();

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-30 {
                return Err(FitError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                b[row] -= factor * b[col];
            }
        }

        // Back substitution.
        let mut beta = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= a[row * n + k] * beta[k];
            }
            beta[row] = acc / a[row * n + row];
        }
        Ok(beta)
    }

    /// Root-mean-square error of a coefficient vector over fresh samples.
    #[must_use]
    pub fn rmse(beta: &[f64], samples: &[(Vec<f64>, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let sse: f64 = samples
            .iter()
            .map(|(x, y)| {
                let pred: f64 = x.iter().zip(beta).map(|(xi, bi)| xi * bi).sum();
                (pred - y) * (pred - y)
            })
            .sum();
        (sse / samples.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_one_dim() {
        let mut ls = LeastSquares::new(1);
        for x in 1..=5 {
            ls.add(&[f64::from(x)], 4.0 * f64::from(x));
        }
        let beta = ls.solve().unwrap();
        assert!((beta[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_recovery_converges() {
        // Deterministic pseudo-noise; the fit should land near truth.
        let mut ls = LeastSquares::new(2);
        for i in 0..200 {
            let x = f64::from(i) / 10.0;
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            ls.add(&[x, 1.0], 5.0 * x + 2.0 + noise);
        }
        let beta = ls.solve().unwrap();
        assert!((beta[0] - 5.0).abs() < 0.01);
        assert!((beta[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn underdetermined_rejected() {
        let mut ls = LeastSquares::new(3);
        ls.add(&[1.0, 2.0, 3.0], 6.0);
        assert_eq!(ls.solve(), Err(FitError::Underdetermined));
    }

    #[test]
    fn singular_rejected() {
        let mut ls = LeastSquares::new(2);
        // Second feature is always twice the first: collinear.
        for i in 1..=5 {
            let x = f64::from(i);
            ls.add(&[x, 2.0 * x], 3.0 * x);
        }
        assert_eq!(ls.solve(), Err(FitError::Singular));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First sample makes xtx[0][0] small relative to others.
        let mut ls = LeastSquares::new(2);
        ls.add(&[0.0, 1.0], 3.0);
        ls.add(&[1.0, 0.0], 2.0);
        ls.add(&[1.0, 1.0], 5.0);
        let beta = ls.solve().unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_zero_on_exact_fit() {
        let beta = vec![2.0, 1.0];
        let samples = vec![(vec![1.0, 1.0], 3.0), (vec![2.0, 1.0], 5.0)];
        assert!(LeastSquares::rmse(&beta, &samples) < 1e-12);
        assert_eq!(LeastSquares::rmse(&beta, &[]), 0.0);
    }
}
