//! Model parallelism configurations.
//!
//! DistServe searches over tensor (intra-operator) and pipeline
//! (inter-operator) parallelism per phase. A [`ParallelismConfig`] is one
//! point in that space; [`ParallelismConfig::enumerate`] yields all legal
//! points for a given architecture and GPU budget, which is exactly the
//! loop structure of Algorithm 1.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::arch::{DType, ModelArch};
use crate::hardware::GpuSpec;

/// A (tensor-parallel, pipeline-parallel) configuration for one instance.
///
/// # Examples
///
/// ```
/// use distserve_models::{OptModel, ParallelismConfig};
///
/// let arch = OptModel::Opt66B.arch();
/// let cfg = ParallelismConfig::new(4, 2);
/// assert!(cfg.validate(&arch).is_ok());
/// assert_eq!(cfg.num_gpus(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor (intra-operator) parallel degree.
    pub tp: u32,
    /// Pipeline (inter-operator) parallel degree.
    pub pp: u32,
}

/// Why a parallelism configuration is invalid for an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelismError {
    /// Degrees must be at least 1.
    ZeroDegree,
    /// `num_heads` must be divisible by the tensor-parallel degree.
    HeadsNotDivisible {
        /// Attention heads in the model.
        heads: u32,
        /// Requested tensor-parallel degree.
        tp: u32,
    },
    /// `num_layers` must be divisible by the pipeline-parallel degree.
    LayersNotDivisible {
        /// Layers in the model.
        layers: u32,
        /// Requested pipeline-parallel degree.
        pp: u32,
    },
    /// The per-GPU weight shard exceeds GPU memory.
    ShardTooLarge {
        /// Bytes required per GPU for the weight shard.
        shard_bytes: u64,
        /// Bytes available on the GPU.
        capacity: u64,
    },
}

impl fmt::Display for ParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelismError::ZeroDegree => write!(f, "parallel degrees must be >= 1"),
            ParallelismError::HeadsNotDivisible { heads, tp } => {
                write!(f, "{heads} heads not divisible by tp={tp}")
            }
            ParallelismError::LayersNotDivisible { layers, pp } => {
                write!(f, "{layers} layers not divisible by pp={pp}")
            }
            ParallelismError::ShardTooLarge {
                shard_bytes,
                capacity,
            } => write!(
                f,
                "weight shard of {shard_bytes} bytes exceeds GPU capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ParallelismError {}

impl ParallelismConfig {
    /// No parallelism: a single GPU holds the whole model.
    pub const SINGLE: ParallelismConfig = ParallelismConfig { tp: 1, pp: 1 };

    /// Creates a configuration. Degrees are taken as given; call
    /// [`validate`](Self::validate) to check against an architecture.
    #[must_use]
    pub fn new(tp: u32, pp: u32) -> Self {
        ParallelismConfig { tp, pp }
    }

    /// Total GPUs this instance occupies.
    #[must_use]
    pub fn num_gpus(&self) -> u32 {
        self.tp * self.pp
    }

    /// Checks divisibility constraints against `arch`.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ParallelismError`] violated.
    pub fn validate(&self, arch: &ModelArch) -> Result<(), ParallelismError> {
        if self.tp == 0 || self.pp == 0 {
            return Err(ParallelismError::ZeroDegree);
        }
        if !arch.num_heads.is_multiple_of(self.tp) {
            return Err(ParallelismError::HeadsNotDivisible {
                heads: arch.num_heads,
                tp: self.tp,
            });
        }
        // Under GQA the K/V heads must also split evenly across the
        // tensor-parallel group.
        if !arch.kv_heads.is_multiple_of(self.tp) {
            return Err(ParallelismError::HeadsNotDivisible {
                heads: arch.kv_heads,
                tp: self.tp,
            });
        }
        if !arch.num_layers.is_multiple_of(self.pp) {
            return Err(ParallelismError::LayersNotDivisible {
                layers: arch.num_layers,
                pp: self.pp,
            });
        }
        Ok(())
    }

    /// Checks both divisibility and that the per-GPU weight shard (plus a
    /// working margin) fits in `gpu` memory.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ParallelismError`] violated.
    pub fn validate_memory(
        &self,
        arch: &ModelArch,
        gpu: &GpuSpec,
        dtype: DType,
    ) -> Result<(), ParallelismError> {
        self.validate(arch)?;
        let shard = self.shard_weight_bytes(arch, dtype);
        // Reserve 10% of capacity for activations and CUDA context.
        let usable = gpu.mem_capacity - gpu.mem_capacity / 10;
        if shard > usable {
            return Err(ParallelismError::ShardTooLarge {
                shard_bytes: shard,
                capacity: usable,
            });
        }
        Ok(())
    }

    /// Bytes of model weights held by each GPU.
    #[must_use]
    pub fn shard_weight_bytes(&self, arch: &ModelArch, dtype: DType) -> u64 {
        arch.weight_bytes(dtype) / u64::from(self.num_gpus())
    }

    /// Bytes of KV cache per token position held by each GPU of one
    /// pipeline stage (KV is sharded over both tp and pp).
    #[must_use]
    pub fn shard_kv_bytes_per_token(&self, arch: &ModelArch, dtype: DType) -> u64 {
        arch.kv_bytes_per_token(dtype) / u64::from(self.num_gpus())
    }

    /// Layers per pipeline stage.
    #[must_use]
    pub fn layers_per_stage(&self, arch: &ModelArch) -> u32 {
        arch.num_layers / self.pp
    }

    /// Enumerates all legal configurations with `tp <= max_tp`,
    /// `pp <= max_pp`, and a weight shard fitting `gpu` memory — the search
    /// space walked by Algorithms 1 and 2.
    #[must_use]
    pub fn enumerate(
        arch: &ModelArch,
        gpu: &GpuSpec,
        dtype: DType,
        max_tp: u32,
        max_pp: u32,
    ) -> Vec<ParallelismConfig> {
        let mut out = Vec::new();
        for tp in 1..=max_tp {
            for pp in 1..=max_pp {
                let cfg = ParallelismConfig::new(tp, pp);
                if cfg.validate_memory(arch, gpu, dtype).is_ok() {
                    out.push(cfg);
                }
            }
        }
        out
    }
}

impl fmt::Display for ParallelismConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tp{}pp{}", self.tp, self.pp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::OptModel;

    #[test]
    fn gpu_counts() {
        assert_eq!(ParallelismConfig::new(4, 2).num_gpus(), 8);
        assert_eq!(ParallelismConfig::SINGLE.num_gpus(), 1);
    }

    #[test]
    fn divisibility_checks() {
        let arch = OptModel::Opt13B.arch(); // 40 heads, 40 layers.
        assert!(ParallelismConfig::new(8, 1).validate(&arch).is_ok());
        assert!(ParallelismConfig::new(5, 4).validate(&arch).is_ok());
        assert!(matches!(
            ParallelismConfig::new(3, 1).validate(&arch),
            Err(ParallelismError::HeadsNotDivisible { .. })
        ));
        assert!(matches!(
            ParallelismConfig::new(1, 3).validate(&arch),
            Err(ParallelismError::LayersNotDivisible { .. })
        ));
        assert!(matches!(
            ParallelismConfig::new(0, 1).validate(&arch),
            Err(ParallelismError::ZeroDegree)
        ));
    }

    #[test]
    fn memory_check_rejects_oversized_shards() {
        // OPT-175B is 350 GB at fp16: it cannot fit on fewer than 5 A100s.
        let arch = OptModel::Opt175B.arch();
        let gpu = GpuSpec::a100_80g();
        assert!(matches!(
            ParallelismConfig::new(2, 2).validate_memory(&arch, &gpu, DType::F16),
            Err(ParallelismError::ShardTooLarge { .. })
        ));
        assert!(ParallelismConfig::new(4, 2)
            .validate_memory(&arch, &gpu, DType::F16)
            .is_ok());
    }

    #[test]
    fn shard_sizes_divide_evenly() {
        let arch = OptModel::Opt66B.arch();
        let cfg = ParallelismConfig::new(2, 2);
        assert_eq!(
            cfg.shard_weight_bytes(&arch, DType::F16),
            arch.weight_bytes(DType::F16) / 4
        );
        assert_eq!(
            cfg.shard_kv_bytes_per_token(&arch, DType::F16),
            arch.kv_bytes_per_token(DType::F16) / 4
        );
        assert_eq!(cfg.layers_per_stage(&arch), 32);
    }

    #[test]
    fn enumerate_respects_all_constraints() {
        let arch = OptModel::Opt66B.arch(); // 72 heads, 64 layers, 132 GB.
        let gpu = GpuSpec::a100_80g();
        let configs = ParallelismConfig::enumerate(&arch, &gpu, DType::F16, 8, 4);
        assert!(!configs.is_empty());
        for cfg in &configs {
            assert!(cfg.validate_memory(&arch, &gpu, DType::F16).is_ok());
            assert!(cfg.tp <= 8 && cfg.pp <= 4);
        }
        // tp=1, pp=1 puts 132 GB on one 80 GB GPU: must be excluded.
        assert!(!configs.contains(&ParallelismConfig::SINGLE));
        // tp=2, pp=1 gives 66 GB per GPU: within the 90% usable budget.
        assert!(configs.contains(&ParallelismConfig::new(2, 1)));
        // tp=5 does not divide 72 heads: excluded even though memory fits.
        assert!(!configs.iter().any(|c| c.tp == 5));
    }

    #[test]
    fn gqa_constrains_tensor_parallelism() {
        use crate::arch::LlamaModel;
        // LLaMA-2-70B: 64 query heads but only 8 KV heads — tp=16 splits
        // queries but not KV.
        let arch = LlamaModel::Llama2_70B.arch();
        assert!(ParallelismConfig::new(8, 1).validate(&arch).is_ok());
        assert!(matches!(
            ParallelismConfig::new(16, 1).validate(&arch),
            Err(ParallelismError::HeadsNotDivisible { heads: 8, tp: 16 })
        ));
    }

    #[test]
    fn display_format() {
        assert_eq!(ParallelismConfig::new(4, 3).to_string(), "tp4pp3");
    }
}
