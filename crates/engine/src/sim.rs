//! The serving simulator: event loop, dispatch, and instance logic.
//!
//! One simulator runs either a **disaggregated** deployment (≥1 prefill
//! instance and ≥1 decoding instance, DistServe's architecture from
//! Figure 6) or a **colocated** deployment (≥1 vLLM-style instance). The
//! controller dispatches arrivals to the prefill instance with the
//! shortest queue and, at prefill completion, assigns the request to the
//! least-loaded decoding instance (§4.3); KV caches move via pull-based
//! transfers with the prefill instance's memory as the queueing buffer.
//!
//! Execution times come from the [`CostModel`]; the pipeline occupancy
//! recurrence in [`crate::pipeline`] turns per-batch stage times into
//! throughput, latency, and bubbles. All scheduling is deterministic
//! given the configuration seed.

use std::collections::VecDeque;

use distserve_cluster::{Cluster, KvTransferModel};
use distserve_faults::{Fault, FaultKind, FaultSchedule, InstanceHealth, RetryPolicy};
use distserve_models::{CostModel, DecodeBatch, PrefillBatch};
use distserve_router::{
    Decision, DecisionRecord, ReplicaId, ReplicaRole, ReplicaSnapshot, RequestFeatures,
    RouterPolicy, ShedReason,
};
use distserve_simcore::{EventQueue, FastHashMap, SimRng, SimTime, Summary};
use distserve_telemetry::{metrics, Event, LifecycleEvent, Slice, TelemetrySink, TrackId, NOOP};
use distserve_workload::{RequestId, Trace};

use crate::batching::{PrefillItem, PrefillQueue};
use crate::kvcache::KvBlockManager;
use crate::pipeline::Pipeline;
use crate::request::{RequestPhase, RequestRecord, RequestState, StageBreakdown};
use crate::routing::RouterCtl;
use crate::spec::{InstanceRole, InstanceSpec, SimConfig};

/// Simulator events.
#[derive(Debug, Clone)]
enum Ev {
    /// Trace request with this index arrives at the controller.
    Arrive(usize),
    /// A prefill pipeline's stage 0 freed; try launching more batches.
    PrefillFree(usize),
    /// A prefill batch exited the pipeline.
    PrefillDone(usize, u64),
    /// A KV pull into a decoding instance completed. Carries the pull
    /// generation: completions of transfers that failed or were
    /// invalidated by a crash arrive stale and are ignored.
    TransferDone(usize, RequestId, u64),
    /// A decoding pipeline's stage 0 freed; try launching iterations.
    DecodeFree(usize),
    /// A decoding iteration exited the pipeline.
    DecodeDone(usize, u64),
    /// A colocated step finished.
    ColocDone(usize, u64),
    /// A scheduled fault (index into the fault list) fires.
    Fault(usize),
    /// A downed instance finished its outage and begins warming up.
    InstanceRecovering(usize, u64),
    /// A recovering instance is warm and takes traffic again. The
    /// generation guards against stale recoveries after a re-crash.
    InstanceUp(usize, u64),
    /// A transient straggler episode ends.
    StragglerEnd(usize),
    /// Cross-instance link degradation ends.
    LinkRestore,
    /// Retry a failed KV pull after backoff.
    RetryPull(usize, RequestId, u64),
    /// Routed mode: a queued arrival (trace index) re-consults the
    /// router after its bounded-wait delay.
    RouterRetry(usize),
}

/// One decoding micro-batch group (pipeline-parallel interleaving).
#[derive(Debug, Clone, Default)]
struct DecodeGroup {
    members: Vec<RequestId>,
    busy: bool,
}

/// What a colocated step was doing.
#[derive(Debug, Clone)]
enum ColocStep {
    Prefill(Vec<RequestId>),
    Decode(Vec<RequestId>),
    Mixed {
        /// `(request, new tokens, finished prefilling)` chunk parts.
        chunks: Vec<(RequestId, u32, bool)>,
        decodes: Vec<RequestId>,
    },
}

/// Runtime state of one instance.
struct Instance {
    spec: InstanceSpec,
    pipeline: Pipeline,
    kv: KvBlockManager,
    prefill_queue: PrefillQueue,
    // Disaggregated decoding state.
    groups: Vec<DecodeGroup>,
    overflow: VecDeque<RequestId>,
    pull_queue: VecDeque<RequestId>,
    /// The request being pulled plus its pull generation; `None` when the
    /// pull channel is free.
    pulling: Option<(RequestId, u64)>,
    pull_gen: u64,
    next_group: usize,
    // Failure state machine (`Up → Degraded → Down → Recovering`).
    health: InstanceHealth,
    /// Bumped on every transition to Down; stale recovery events carry an
    /// older generation and are dropped.
    up_gen: u64,
    /// Whether an `InstanceUp` event is in flight for this instance, so
    /// the dispatcher knows whether parking work is worthwhile.
    recover_scheduled: bool,
    down_since: Option<SimTime>,
    downtime_secs: f64,
    /// Maintenance window length once a drain completes.
    drain_secs: f64,
    /// Prompt tokens launched into the prefill pipeline but not finished
    /// (part of the dispatch load metric: a queue-only metric would see
    /// an empty queue on a busy instance).
    inflight_prefill_tokens: u64,
    // Colocated state.
    running: Vec<RequestId>,
    coloc_busy: bool,
    chunk_progress: FastHashMap<RequestId, u32>,
    // In-flight batch registries.
    prefill_inflight: FastHashMap<u64, Vec<RequestId>>,
    decode_inflight: FastHashMap<u64, (usize, Vec<RequestId>)>,
    coloc_inflight: FastHashMap<u64, ColocStep>,
    // Statistics.
    kv_peak: f64,
    tokens_out: u64,
}

impl Instance {
    fn decode_load(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum::<usize>()
            + self.overflow.len()
            + self.pull_queue.len()
    }

    fn note_kv(&mut self) {
        self.kv_peak = self.kv_peak.max(self.kv.utilization());
    }
}

/// Per-instance statistics reported by [`SimOutcome`].
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// Role of the instance.
    pub role: InstanceRole,
    /// GPUs occupied.
    pub num_gpus: u32,
    /// Cumulative stage-0 busy seconds.
    pub busy_secs: f64,
    /// Batches executed.
    pub batches: u64,
    /// Peak KV pool utilization observed.
    pub kv_peak_utilization: f64,
    /// Output tokens produced on this instance.
    pub tokens_out: u64,
    /// Seconds spent Down or Recovering (unavailability windows; windows
    /// still open at the end of the run are closed at the makespan).
    pub downtime_secs: f64,
}

/// Result of one serving simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Completed-request records, in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests rejected by admission control, in rejection order. Each
    /// counts as an SLO miss in the attainment figures below.
    pub rejected: Vec<RequestId>,
    /// Requests that exhausted their retry budget (or had no surviving
    /// instance to run on) after injected faults, in failure order. Like
    /// rejections, each counts as an SLO miss. Empty without faults.
    pub failed: Vec<RequestId>,
    /// Time the last request completed.
    pub makespan: SimTime,
    /// Per-instance statistics.
    pub instances: Vec<InstanceStats>,
}

impl SimOutcome {
    /// Requests offered to the system: completed, rejected, and failed.
    fn offered(&self) -> usize {
        self.records.len() + self.rejected.len() + self.failed.len()
    }

    /// Fraction of requests meeting both the TTFT and TPOT SLOs.
    /// Rejected requests count in the denominator as misses.
    #[must_use]
    pub fn attainment(&self, ttft_slo: f64, tpot_slo: f64) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.ttft() <= ttft_slo && r.tpot() <= tpot_slo)
            .count();
        ok as f64 / self.offered() as f64
    }

    /// Fraction meeting only the TTFT SLO (the paper's dotted lines).
    #[must_use]
    pub fn ttft_attainment(&self, ttft_slo: f64) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        let ok = self.records.iter().filter(|r| r.ttft() <= ttft_slo).count();
        ok as f64 / self.offered() as f64
    }

    /// Fraction meeting only the TPOT SLO (the paper's dashed lines).
    #[must_use]
    pub fn tpot_attainment(&self, tpot_slo: f64) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        let ok = self.records.iter().filter(|r| r.tpot() <= tpot_slo).count();
        ok as f64 / self.offered() as f64
    }

    /// Summary of TTFT samples, seconds.
    #[must_use]
    pub fn ttft_summary(&self) -> Summary {
        let mut s = Summary::new();
        for r in &self.records {
            s.record(r.ttft());
        }
        s
    }

    /// Summary of TPOT samples, seconds (multi-token requests only).
    #[must_use]
    pub fn tpot_summary(&self) -> Summary {
        let mut s = Summary::new();
        for r in &self.records {
            if r.output_len > 1 {
                s.record(r.tpot());
            }
        }
        s
    }

    /// Aggregate five-stage breakdown over all requests (Figure 10a).
    #[must_use]
    pub fn breakdown_totals(&self) -> StageBreakdown {
        let mut acc = StageBreakdown::default();
        for r in &self.records {
            acc.accumulate(&r.breakdown());
        }
        acc
    }

    /// Total GPUs across instances.
    #[must_use]
    pub fn total_gpus(&self) -> u32 {
        self.instances.iter().map(|i| i.num_gpus).sum()
    }
}

/// Instance index → telemetry track id.
fn track_id(i: usize) -> TrackId {
    TrackId::try_from(i).expect("instance count fits a track id")
}

/// The serving simulator. See the module documentation.
pub struct ServingSim<'a> {
    cfg: SimConfig,
    cost: &'a dyn CostModel,
    cluster: &'a Cluster,
    transfer: KvTransferModel,
    instances: Vec<Instance>,
    prefill_ids: Vec<usize>,
    decode_ids: Vec<usize>,
    coloc_ids: Vec<usize>,
    states: FastHashMap<RequestId, RequestState>,
    kv_home: FastHashMap<RequestId, usize>,
    events: EventQueue<Ev>,
    rng: SimRng,
    records: Vec<RequestRecord>,
    rejected: Vec<RequestId>,
    failed: Vec<RequestId>,
    next_batch: u64,
    remaining: usize,
    sink: &'a dyn TelemetrySink,
    // Fault injection (empty and inert unless `with_faults` is called).
    faults: Vec<Fault>,
    retry_policy: RetryPolicy,
    /// Requests with nowhere to go right now but a recovery scheduled:
    /// re-dispatched when an instance comes back up.
    parked_prefill: VecDeque<RequestId>,
    parked_pull: VecDeque<RequestId>,
    /// Multiplier on KV-transfer wire time (≥ 1; link degradation).
    link_slowdown: f64,
    faults_injected: u64,
    /// Cluster router attachment; `None` runs the built-in
    /// shortest-queue dispatch.
    router: Option<RouterCtl>,
}

impl<'a> ServingSim<'a> {
    /// Builds a simulator over `instances` placed on `cluster`.
    ///
    /// # Errors
    ///
    /// Returns a message when the deployment is neither purely colocated
    /// nor a complete disaggregated pair, or when an instance cannot hold
    /// its weight shard.
    pub fn new(
        cfg: SimConfig,
        cost: &'a dyn CostModel,
        cluster: &'a Cluster,
        specs: Vec<InstanceSpec>,
    ) -> Result<Self, String> {
        let sim = Self::build(cfg, cost, cluster, specs)?;
        let disagg = !sim.prefill_ids.is_empty() && !sim.decode_ids.is_empty();
        let coloc = !sim.coloc_ids.is_empty();
        if disagg == coloc {
            return Err(
                "deployment must be either disaggregated (prefill + decode instances) \
                 or colocated, and not empty"
                    .into(),
            );
        }
        Ok(sim)
    }

    /// Builds a **routed** simulator: every arrival (and fault-driven
    /// re-dispatch) is decided by the pure `distserve_router::route`
    /// core under `policy`, and the run records a replayable decision
    /// log (see [`ServingSim::run_logged`]). Unlike [`ServingSim::new`],
    /// a routed deployment may mix the split prefill/decode path with
    /// colocated instances — the router picks per request.
    ///
    /// # Errors
    ///
    /// Returns a message when no complete execution path exists (a
    /// prefill instance without a decode peer or vice versa, or an empty
    /// fleet), or on any [`ServingSim::new`] validation failure.
    pub fn new_routed(
        cfg: SimConfig,
        cost: &'a dyn CostModel,
        cluster: &'a Cluster,
        specs: Vec<InstanceSpec>,
        policy: RouterPolicy,
    ) -> Result<Self, String> {
        let mut sim = Self::build(cfg, cost, cluster, specs)?;
        sim.validate_routed_topology()?;
        let seed = sim.cfg.seed;
        let initial = sim.replica_snapshots().collect();
        sim.router = Some(RouterCtl::live(initial, policy, seed));
        Ok(sim)
    }

    /// Builds a routed simulator that replays `log` instead of
    /// consulting the decision core: the run reproduces the logged run
    /// exactly (asserted by the replay harness in `tests/`).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed log records or any
    /// [`ServingSim::new_routed`] validation failure.
    pub fn new_replayed(
        cfg: SimConfig,
        cost: &'a dyn CostModel,
        cluster: &'a Cluster,
        specs: Vec<InstanceSpec>,
        log: &[DecisionRecord],
    ) -> Result<Self, String> {
        let mut sim = Self::build(cfg, cost, cluster, specs)?;
        sim.validate_routed_topology()?;
        sim.router = Some(RouterCtl::replay(log)?);
        Ok(sim)
    }

    /// Routed deployments need at least one complete path and no
    /// half-built split pair.
    fn validate_routed_topology(&self) -> Result<(), String> {
        let split = !self.prefill_ids.is_empty() && !self.decode_ids.is_empty();
        let half_split = self.prefill_ids.is_empty() != self.decode_ids.is_empty();
        if half_split {
            return Err(
                "routed deployment has prefill instances without decode peers (or vice versa)"
                    .into(),
            );
        }
        if !split && self.coloc_ids.is_empty() {
            return Err("routed deployment has no execution path".into());
        }
        Ok(())
    }

    fn build(
        cfg: SimConfig,
        cost: &'a dyn CostModel,
        cluster: &'a Cluster,
        specs: Vec<InstanceSpec>,
    ) -> Result<Self, String> {
        let mut instances = Vec::new();
        let mut prefill_ids = Vec::new();
        let mut decode_ids = Vec::new();
        let mut coloc_ids = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            spec.par
                .validate(&cfg.arch)
                .map_err(|e| format!("instance {i}: {e}"))?;
            let pool = spec.kv_pool_bytes(&cfg.arch, cluster.gpu_spec(), cfg.dtype, cfg.mem_margin);
            if pool == 0 {
                return Err(format!(
                    "instance {i} ({}) cannot hold its weight shard",
                    spec.par
                ));
            }
            let kv = KvBlockManager::from_bytes(
                pool,
                cfg.arch.kv_bytes_per_token(cfg.dtype),
                cfg.block_size,
            );
            let budget = match spec.role {
                InstanceRole::Colocated => spec.policy.prefill_token_budget,
                _ => cfg.l_m,
            };
            match spec.role {
                InstanceRole::Prefill => prefill_ids.push(i),
                InstanceRole::Decode => decode_ids.push(i),
                InstanceRole::Colocated => coloc_ids.push(i),
            }
            let groups = (0..spec.par.pp).map(|_| DecodeGroup::default()).collect();
            instances.push(Instance {
                pipeline: Pipeline::new(spec.par.pp),
                kv,
                prefill_queue: PrefillQueue::new(budget).with_discipline(cfg.prefill_discipline),
                groups,
                overflow: VecDeque::new(),
                pull_queue: VecDeque::new(),
                pulling: None,
                pull_gen: 0,
                next_group: 0,
                health: InstanceHealth::Up,
                up_gen: 0,
                recover_scheduled: false,
                down_since: None,
                downtime_secs: 0.0,
                drain_secs: 0.0,
                inflight_prefill_tokens: 0,
                running: Vec::new(),
                coloc_busy: false,
                chunk_progress: FastHashMap::default(),
                prefill_inflight: FastHashMap::default(),
                decode_inflight: FastHashMap::default(),
                coloc_inflight: FastHashMap::default(),
                kv_peak: 0.0,
                tokens_out: 0,
                spec,
            });
        }
        let transfer = KvTransferModel::new(cfg.arch.clone(), cfg.dtype);
        let rng = SimRng::seed(cfg.seed).split("serving-sim");
        Ok(ServingSim {
            cfg,
            cost,
            cluster,
            transfer,
            instances,
            prefill_ids,
            decode_ids,
            coloc_ids,
            states: FastHashMap::default(),
            kv_home: FastHashMap::default(),
            events: EventQueue::new(),
            rng,
            records: Vec::new(),
            rejected: Vec::new(),
            failed: Vec::new(),
            next_batch: 0,
            remaining: 0,
            sink: &NOOP,
            faults: Vec::new(),
            retry_policy: RetryPolicy::default(),
            parked_prefill: VecDeque::new(),
            parked_pull: VecDeque::new(),
            link_slowdown: 1.0,
            faults_injected: 0,
            router: None,
        })
    }

    /// Injects `schedule`'s faults during the run, recovering per
    /// `policy`. Without this call the simulator is fault-free and
    /// behaves identically to previous versions.
    #[must_use]
    pub fn with_faults(mut self, schedule: &FaultSchedule, policy: RetryPolicy) -> Self {
        self.faults = schedule.faults().to_vec();
        self.retry_policy = policy;
        self
    }

    /// Routes telemetry into `sink`: per-request lifecycle events
    /// ([`LifecycleEvent`]), per-batch execution slices on one track per
    /// instance, and queue/KV/throughput metrics. All timestamps are
    /// sim-clock seconds. Defaults to the no-op sink.
    #[must_use]
    pub fn with_sink(mut self, sink: &'a dyn TelemetrySink) -> Self {
        self.sink = sink;
        self
    }

    /// Emits one lifecycle event for `id` at sim time `t`, resolving the
    /// tenant from the live request state (only when the sink records —
    /// the no-op path skips the lookup). Callers emitting after the
    /// state is gone use [`Self::emit_tenant`] directly.
    fn emit(&self, id: RequestId, t: SimTime, kind: LifecycleEvent) {
        let tenant = if self.sink.enabled() {
            self.states.get(&id).map_or(0, |s| s.request.tenant)
        } else {
            0
        };
        self.emit_tenant(id, tenant, t, kind);
    }

    /// Emits one lifecycle event with an explicit tenant.
    fn emit_tenant(&self, id: RequestId, tenant: u32, t: SimTime, kind: LifecycleEvent) {
        self.sink.event(Event {
            request: id.0,
            tenant,
            time_s: t.as_secs(),
            kind,
        });
    }

    /// Emits one execution slice plus its batch counters on `track`.
    #[allow(clippy::too_many_arguments)]
    fn emit_batch(
        &self,
        track: usize,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        batch: usize,
        tokens: u64,
        batches_metric: &'static str,
        tokens_metric: &'static str,
    ) {
        let track = track_id(track);
        self.sink.slice(Slice {
            track,
            name,
            start_s: start.as_secs(),
            end_s: end.as_secs(),
            batch: u32::try_from(batch).unwrap_or(u32::MAX),
            tokens: u32::try_from(tokens).unwrap_or(u32::MAX),
        });
        self.sink.counter_add(batches_metric, track, 1);
        self.sink.counter_add(tokens_metric, track, tokens);
        self.sink.observe(metrics::BATCH_SIZE, track, batch as f64);
    }

    /// Publishes instance `i`'s KV occupancy gauge.
    fn emit_kv(&self, i: usize) {
        self.sink.gauge_set(
            metrics::KV_UTILIZATION,
            track_id(i),
            self.instances[i].kv.utilization(),
        );
    }

    /// Runs the trace to completion and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the event budget (100 million) is exceeded, which
    /// indicates a scheduling livelock rather than a slow workload.
    #[must_use]
    pub fn run(mut self, trace: &Trace) -> SimOutcome {
        self.run_core(trace);
        self.finish()
    }

    /// Like [`ServingSim::run`], but also returns the routing decision
    /// log (empty unless built with [`ServingSim::new_routed`] or
    /// [`ServingSim::new_replayed`]). Feeding the log into
    /// [`ServingSim::new_replayed`] with an otherwise identical
    /// configuration reproduces this run exactly.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exceeded (see [`ServingSim::run`]).
    #[must_use]
    pub fn run_logged(mut self, trace: &Trace) -> (SimOutcome, Vec<DecisionRecord>) {
        self.run_core(trace);
        let log = self
            .router
            .as_mut()
            .map(|r| std::mem::take(&mut r.log))
            .unwrap_or_default();
        (self.finish(), log)
    }

    fn run_core(&mut self, trace: &Trace) {
        let _prof = distserve_prof::scope("sim_run");
        if self.sink.enabled() {
            for (i, inst) in self.instances.iter().enumerate() {
                let role = match inst.spec.role {
                    InstanceRole::Prefill => "prefill",
                    InstanceRole::Decode => "decode",
                    InstanceRole::Colocated => "colocated",
                };
                self.sink
                    .declare_track(track_id(i), &format!("{role}[{i}] {}", inst.spec.par));
            }
        }
        self.states.reserve(trace.len());
        for (i, r) in trace.requests().iter().enumerate() {
            self.events.push(r.arrival, Ev::Arrive(i));
            let mut st = RequestState::new(r.clone());
            st.cached_tokens = self.draw_cached_tokens(r.id.0, r.input_len);
            self.states.insert(r.id, st);
        }
        let chaos = !self.faults.is_empty();
        if chaos {
            for (idx, f) in self.faults.iter().enumerate() {
                self.events.push(SimTime::from_secs(f.at), Ev::Fault(idx));
            }
            if self.sink.enabled() {
                for i in 0..self.instances.len() {
                    self.sink.gauge_set(metrics::INSTANCE_UP, track_id(i), 1.0);
                }
            }
        }
        self.remaining = trace.len();
        let mut processed: u64 = 0;
        while self.remaining > 0 {
            let Some((now, ev)) = self.events.pop() else {
                panic!(
                    "simulation stalled with {} requests outstanding",
                    self.remaining
                );
            };
            processed += 1;
            assert!(processed < 100_000_000, "event budget exceeded: livelock?");
            // One profiler scope per event kind: the simulator's
            // per-phase attribution. Handlers are heavyweight relative
            // to a scope (queue surgery, routing, commit bookkeeping),
            // so per-event granularity stays inside the <3% budget.
            match ev {
                Ev::Arrive(idx) => {
                    let _prof = distserve_prof::scope("ev_arrive");
                    self.on_arrive(trace, idx, now);
                }
                Ev::PrefillFree(i) => {
                    let _prof = distserve_prof::scope("ev_prefill_free");
                    self.try_prefill(i, now);
                }
                Ev::PrefillDone(i, b) => {
                    let _prof = distserve_prof::scope("ev_prefill_done");
                    self.on_prefill_done(i, b, now);
                }
                Ev::TransferDone(i, r, gen) => {
                    let _prof = distserve_prof::scope("ev_transfer_done");
                    self.on_transfer_done(i, r, gen, now);
                }
                Ev::DecodeFree(i) => {
                    let _prof = distserve_prof::scope("ev_decode_free");
                    self.try_decode(i, now);
                }
                Ev::DecodeDone(i, b) => {
                    let _prof = distserve_prof::scope("ev_decode_done");
                    self.on_decode_done(i, b, now);
                }
                Ev::ColocDone(i, b) => {
                    let _prof = distserve_prof::scope("ev_coloc_done");
                    self.on_coloc_done(i, b, now);
                }
                Ev::Fault(idx) => {
                    let _prof = distserve_prof::scope("ev_fault");
                    self.on_fault(idx, now);
                }
                Ev::InstanceRecovering(i, gen) => {
                    let _prof = distserve_prof::scope("ev_recovering");
                    self.on_instance_recovering(i, gen);
                }
                Ev::InstanceUp(i, gen) => {
                    let _prof = distserve_prof::scope("ev_instance_up");
                    self.on_instance_up(i, gen, now);
                }
                Ev::StragglerEnd(i) => {
                    let _prof = distserve_prof::scope("ev_straggler_end");
                    self.on_straggler_end(i);
                }
                Ev::LinkRestore => self.link_slowdown = 1.0,
                Ev::RetryPull(d, r, gen) => {
                    let _prof = distserve_prof::scope("ev_retry_pull");
                    self.on_retry_pull(d, r, gen, now);
                }
                Ev::RouterRetry(idx) => {
                    let _prof = distserve_prof::scope("ev_router_retry");
                    self.on_router_retry(trace, idx, now);
                }
            }
            if chaos {
                self.check_drains(now);
            }
        }
    }

    fn finish(self) -> SimOutcome {
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        let instances = self
            .instances
            .iter()
            .map(|inst| InstanceStats {
                role: inst.spec.role,
                num_gpus: inst.spec.num_gpus(),
                busy_secs: inst.pipeline.busy_secs(),
                batches: inst.pipeline.committed(),
                kv_peak_utilization: inst.kv_peak,
                tokens_out: inst.tokens_out,
                downtime_secs: inst.downtime_secs
                    + inst.down_since.map_or(0.0, |t| makespan.since(t).max(0.0)),
            })
            .collect();
        SimOutcome {
            records: self.records,
            rejected: self.rejected,
            failed: self.failed,
            makespan,
            instances,
        }
    }

    fn fresh_batch_id(&mut self) -> u64 {
        let id = self.next_batch;
        self.next_batch += 1;
        id
    }

    // ------------------------------------------------------------------
    // Arrival dispatch.
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, trace: &Trace, idx: usize, now: SimTime) {
        let req = &trace.requests()[idx];
        let item = PrefillItem {
            id: req.id,
            input_len: req.input_len,
        };
        self.emit(req.id, now, LifecycleEvent::Arrived);
        if self.router.is_some() {
            self.route_arrival(trace, idx, now);
            return;
        }
        if self.coloc_ids.is_empty() {
            // Dispatch to the prefill instance with the shortest queue
            // (by outstanding tokens — queued plus in-flight, a better
            // execution-time proxy than request count, per §4.3's token
            // heuristic). Down/draining instances take no new work.
            let target = self
                .prefill_ids
                .iter()
                .copied()
                .filter(|&i| self.instances[i].health.accepts_new_work())
                .min_by_key(|&i| {
                    let inst = &self.instances[i];
                    inst.prefill_queue.queued_tokens() + inst.inflight_prefill_tokens
                });
            let Some(target) = target else {
                self.park_or_fail_prefill(req.id, now);
                return;
            };
            if self.reject_if_over_cap(req.id, target, now) {
                return;
            }
            self.emit(req.id, now, LifecycleEvent::PrefillQueued);
            self.instances[target].prefill_queue.push(item);
            self.instances[target]
                .prefill_queue
                .emit_depth(self.sink, track_id(target));
            self.try_prefill(target, now);
        } else {
            let target = self
                .coloc_ids
                .iter()
                .copied()
                .filter(|&i| self.instances[i].health.accepts_new_work())
                .min_by_key(|&i| {
                    let inst = &self.instances[i];
                    inst.prefill_queue.queued_tokens() + inst.running.len() as u64
                });
            let Some(target) = target else {
                self.park_or_fail_prefill(req.id, now);
                return;
            };
            if self.reject_if_over_cap(req.id, target, now) {
                return;
            }
            self.emit(req.id, now, LifecycleEvent::PrefillQueued);
            self.instances[target].prefill_queue.push(item);
            self.instances[target]
                .prefill_queue
                .emit_depth(self.sink, track_id(target));
            self.try_coloc(target, now);
        }
    }

    // ------------------------------------------------------------------
    // Routed dispatch (cluster router attachment).
    // ------------------------------------------------------------------

    /// Router's view of one instance.
    fn snapshot_of(i: usize, inst: &Instance) -> ReplicaSnapshot {
        let role = match inst.spec.role {
            InstanceRole::Prefill => ReplicaRole::Prefill,
            InstanceRole::Decode => ReplicaRole::Decode,
            InstanceRole::Colocated => ReplicaRole::Colocated,
        };
        let active_decodes = match inst.spec.role {
            InstanceRole::Prefill => 0,
            InstanceRole::Decode => inst.decode_load() as u32,
            InstanceRole::Colocated => inst.running.len() as u32,
        };
        ReplicaSnapshot {
            id: ReplicaId(i as u32),
            role,
            health: inst.health,
            queue_depth: inst.prefill_queue.len() as u32,
            queued_tokens: inst.prefill_queue.queued_tokens(),
            inflight_tokens: inst.inflight_prefill_tokens,
            active_decodes,
            kv_utilization: inst.kv.utilization(),
        }
    }

    /// Current fleet view in instance order, as the router sees it.
    fn replica_snapshots(&self) -> impl Iterator<Item = ReplicaSnapshot> + '_ {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, inst)| Self::snapshot_of(i, inst))
    }

    /// Deterministic per-request draw from the analytic prefix hit model
    /// (§ [`crate::spec::PrefixHitModel`]): a splitmix64 hash of
    /// `seed ^ id` decides the Bernoulli hit, and the matched share is
    /// block-aligned and capped at prompt − 1 so the last prompt token's
    /// logits are always computed — mirroring `distserve_prefix`'s match
    /// cap. Independent of the jitter RNG, so enabling the model never
    /// perturbs fidelity draws.
    fn draw_cached_tokens(&self, req_id: u64, input_len: u32) -> u32 {
        let m = &self.cfg.prefix;
        if !m.enabled() || input_len < 2 {
            return 0;
        }
        let mut z = (self.cfg.seed ^ req_id).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        if u >= m.hit_prob {
            return 0;
        }
        let bs = self.cfg.block_size.max(1);
        let matched = (f64::from(input_len) * m.matched_frac) as u32;
        ((matched / bs) * bs).min(input_len - 1)
    }

    /// One router consultation: refresh the persistent state from the
    /// fleet (in place, no per-request allocation) and take — or replay
    /// — the verdict.
    fn consult_router(&mut self, features: &RequestFeatures) -> Decision {
        let instances = &self.instances;
        let router = self.router.as_mut().expect("routed mode");
        router.consult(
            instances
                .iter()
                .enumerate()
                .map(|(i, inst)| Self::snapshot_of(i, inst)),
            features,
        )
    }

    /// Routed arrival (or bounded-wait retry): consult the decision core
    /// and act on the verdict.
    fn route_arrival(&mut self, trace: &Trace, idx: usize, now: SimTime) {
        let req = &trace.requests()[idx];
        // The engine's hit model is instance-independent (no per-replica
        // cache directory at token granularity), so the features carry
        // the resolved match for logging/admission but no lineage group:
        // cache-affine placement stays a `ScaleSim` concern.
        let cached = self.states[&req.id].cached_tokens;
        let features = RequestFeatures {
            tenant: req.tenant,
            waited_secs: now.since(req.arrival).max(0.0),
            ..RequestFeatures::arrival(req.id.0, req.input_len, req.output_len)
        }
        .with_prefix(0, cached, self.cfg.prefix.hit_prob);
        let decision = self.consult_router(&features);
        match decision {
            // The decode field is a hint: the engine re-binds the decode
            // target at prefill completion (§4.3), when loads are fresher.
            Decision::Disagg { prefill, .. } => {
                self.admit_routed(req.id, req.input_len, prefill.0 as usize, now);
            }
            Decision::Coloc { replica } => {
                self.admit_routed(req.id, req.input_len, replica.0 as usize, now);
            }
            Decision::Queue { retry_after_secs } => {
                self.events
                    .push(now.after(retry_after_secs), Ev::RouterRetry(idx));
            }
            Decision::Shed {
                reason: ShedReason::OverCapacity,
            } => self.shed_routed(req.id, now),
            Decision::Shed {
                reason: ShedReason::NoCapablePath,
            } => self.park_or_fail_routed(req.id, now),
        }
    }

    /// A queued arrival re-consults the router with its accumulated
    /// wait; the decision core sheds it once the wait budget runs out.
    fn on_router_retry(&mut self, trace: &Trace, idx: usize, now: SimTime) {
        if self.states.contains_key(&trace.requests()[idx].id) {
            self.route_arrival(trace, idx, now);
        }
    }

    /// Enqueues a routed request on its chosen instance and kicks the
    /// matching execution path.
    fn admit_routed(&mut self, id: RequestId, input_len: u32, target: usize, now: SimTime) {
        self.emit(id, now, LifecycleEvent::PrefillQueued);
        self.instances[target]
            .prefill_queue
            .push(PrefillItem { id, input_len });
        self.instances[target]
            .prefill_queue
            .emit_depth(self.sink, track_id(target));
        match self.instances[target].spec.role {
            InstanceRole::Colocated => self.try_coloc(target, now),
            _ => self.try_prefill(target, now),
        }
    }

    /// Router shed: same bookkeeping as [`ServingSim::reject_if_over_cap`]
    /// (the router's queue cap is the admission bound in routed mode).
    fn shed_routed(&mut self, id: RequestId, now: SimTime) {
        self.emit(id, now, LifecycleEvent::Rejected);
        self.sink
            .counter_add(metrics::REQUESTS_REJECTED, track_id(0), 1);
        self.states.remove(&id);
        self.rejected.push(id);
        self.remaining -= 1;
    }

    /// Routed analogue of [`ServingSim::park_or_fail_prefill`] over the
    /// combined entry pool (prefill and colocated instances).
    fn park_or_fail_routed(&mut self, id: RequestId, now: SimTime) {
        let recovery_pending = self
            .prefill_ids
            .iter()
            .chain(&self.coloc_ids)
            .any(|&i| self.instances[i].recover_scheduled);
        if recovery_pending {
            self.parked_prefill.push_back(id);
        } else {
            self.fail_request(id, now);
        }
    }

    /// Admission control: when the dispatch target's prefill queue is at
    /// the configured cap, the arrival is rejected — terminal `Rejected`
    /// lifecycle event, rejection counter, and an entry in
    /// [`SimOutcome::rejected`] so attainment counts it as a miss.
    fn reject_if_over_cap(&mut self, id: RequestId, target: usize, now: SimTime) -> bool {
        let Some(cap) = self.cfg.admission_cap else {
            return false;
        };
        if self.instances[target].prefill_queue.len() < cap {
            return false;
        }
        self.emit(id, now, LifecycleEvent::Rejected);
        self.sink
            .counter_add(metrics::REQUESTS_REJECTED, track_id(target), 1);
        self.states.remove(&id);
        self.rejected.push(id);
        self.remaining -= 1;
        true
    }

    // ------------------------------------------------------------------
    // Disaggregated prefill instance.
    // ------------------------------------------------------------------

    fn try_prefill(&mut self, i: usize, now: SimTime) {
        let inst = &mut self.instances[i];
        if !inst.health.serves() || !inst.pipeline.stage0_free_at(now) {
            return;
        }
        // Split borrows: the admission callback allocates from the KV
        // buffer while the queue pops items.
        let Instance {
            prefill_queue, kv, ..
        } = inst;
        let Some(batch) = prefill_queue.form_batch(|it| kv.alloc(it.id, it.input_len).is_ok())
        else {
            return;
        };
        inst.note_kv();
        // Compute is priced on the billed suffix (cached prefix tokens
        // skip the forward pass); KV was allocated on the full length.
        let lens: Vec<u32> = batch
            .iter()
            .map(|b| self.states[&b.id].billed_prefill_len())
            .collect();
        let pbatch = PrefillBatch::new(lens);
        let raw = self
            .cost
            .prefill_stage_time(&self.cfg.arch, inst.spec.par, &pbatch)
            .total();
        let slowdown = inst.health.slowdown();
        let stage_time = self.cfg.fidelity.perturb_step(raw, &mut self.rng) * slowdown;
        let bid = self.fresh_batch_id();
        let inst = &mut self.instances[i];
        let commit = inst.pipeline.commit(now, stage_time);
        let members: Vec<RequestId> = batch.iter().map(|b| b.id).collect();
        let batch_tokens = members
            .iter()
            .map(|id| u64::from(self.states[id].billed_prefill_len()))
            .sum::<u64>();
        inst.inflight_prefill_tokens += batch_tokens;
        inst.prefill_inflight.insert(bid, members.clone());
        for id in &members {
            let st = self.states.get_mut(id).expect("state exists");
            if st.resume_generated == 0 {
                st.prefill_start = commit.start;
            }
            st.phase = RequestPhase::Prefilling;
            self.kv_home.insert(*id, i);
        }
        for id in &members {
            self.emit(*id, commit.start, LifecycleEvent::PrefillStart);
        }
        self.emit_batch(
            i,
            "prefill",
            commit.start,
            commit.done,
            members.len(),
            batch_tokens,
            metrics::PREFILL_BATCHES,
            metrics::PREFILL_TOKENS,
        );
        self.instances[i]
            .prefill_queue
            .emit_depth(self.sink, track_id(i));
        self.emit_kv(i);
        self.events.push(commit.done, Ev::PrefillDone(i, bid));
        self.events.push(commit.stage0_free, Ev::PrefillFree(i));
    }

    fn on_prefill_done(&mut self, i: usize, bid: u64, now: SimTime) {
        // A crash may have already drained the registry: stale completion.
        let Some(members) = self.instances[i].prefill_inflight.remove(&bid) else {
            return;
        };
        let done_tokens: u64 = members
            .iter()
            .map(|id| u64::from(self.states[id].billed_prefill_len()))
            .sum();
        self.instances[i].inflight_prefill_tokens = self.instances[i]
            .inflight_prefill_tokens
            .saturating_sub(done_tokens);
        for id in members {
            let (output_len, resumed) = {
                let st = self.states.get_mut(&id).expect("state exists");
                let resumed = st.resume_generated > 0;
                if !resumed {
                    // A recomputation does not re-deliver the first token.
                    st.first_token = now;
                }
                (st.request.output_len, resumed)
            };
            if !resumed {
                self.instances[i].tokens_out += 1;
            }
            self.emit(id, now, LifecycleEvent::PrefillEnd);
            if output_len <= 1 && !resumed {
                // The prefill already produced the whole answer.
                self.release_prefill_kv(id, now);
                self.finish_request(i, id, now, now, now);
            } else {
                let st = self.states.get_mut(&id).expect("state exists");
                st.phase = RequestPhase::Transferring;
                self.route_to_decode(id, now);
            }
        }
        // Completing a batch may have freed stage slots.
        self.try_prefill(i, now);
    }

    /// Routes a transfer-ready request to the least-loaded decoding
    /// instance (§4.3). With every decoding instance down, the request
    /// parks if a recovery is scheduled and fails otherwise.
    fn route_to_decode(&mut self, id: RequestId, now: SimTime) {
        let target = self
            .decode_ids
            .iter()
            .copied()
            .filter(|&d| self.instances[d].health.accepts_new_work())
            .min_by_key(|&d| self.instances[d].decode_load());
        let Some(target) = target else {
            if self
                .decode_ids
                .iter()
                .any(|&d| self.instances[d].recover_scheduled)
            {
                self.parked_pull.push_back(id);
            } else {
                self.fail_request(id, now);
            }
            return;
        };
        self.instances[target].pull_queue.push_back(id);
        self.try_pull(target, now);
    }

    fn release_prefill_kv(&mut self, id: RequestId, now: SimTime) {
        if let Some(home) = self.kv_home.remove(&id) {
            self.instances[home]
                .kv
                .free(id)
                .expect("prefill KV allocated");
            // Freed buffer space may unblock the prefill queue.
            self.try_prefill(home, now);
        }
    }

    // ------------------------------------------------------------------
    // KV transfer (pull-based, §4.3).
    // ------------------------------------------------------------------

    fn try_pull(&mut self, d: usize, now: SimTime) {
        if !self.instances[d].health.serves() || self.instances[d].pulling.is_some() {
            return;
        }
        let Some(&id) = self.instances[d].pull_queue.front() else {
            return;
        };
        let (input_len, output_len) = {
            let st = &self.states[&id];
            (st.request.input_len, st.request.output_len)
        };
        // Conservative admission: reserve the whole lifetime footprint so
        // decoding never preempts (see DESIGN.md).
        let total_tokens = input_len + output_len;
        if self.instances[d].kv.alloc(id, total_tokens).is_err() {
            // Head-of-line blocks until completions free blocks; the KV
            // stays buffered on the prefill side (the §4.3 buffer).
            return;
        }
        self.instances[d].note_kv();
        self.instances[d].pull_queue.pop_front();
        self.instances[d].pull_gen += 1;
        let gen = self.instances[d].pull_gen;
        self.instances[d].pulling = Some((id, gen));
        self.issue_pull(d, id, gen, now);
    }

    /// Launches (or relaunches after backoff) the wire transfer for the
    /// request currently occupying `d`'s pull channel.
    fn issue_pull(&mut self, d: usize, id: RequestId, gen: u64, now: SimTime) {
        let prefill_len = self.states[&id].prefill_len();
        let home = self.kv_home[&id];
        let wire = self.transfer.request_transfer_time(
            self.cluster,
            &self.instances[home].spec.stages,
            self.instances[home].spec.par,
            &self.instances[d].spec.stages,
            self.instances[d].spec.par,
            prefill_len + 1,
        );
        let wire = self.cfg.fidelity.perturb_transfer(wire) * self.link_slowdown;
        let st = self.states.get_mut(&id).expect("state exists");
        st.transfer_active = wire;
        self.emit(id, now, LifecycleEvent::KvMigrateStart);
        self.emit_kv(d);
        self.events
            .push(now.after(wire), Ev::TransferDone(d, id, gen));
    }

    fn on_transfer_done(&mut self, d: usize, id: RequestId, gen: u64, now: SimTime) {
        // Stale completion: the pull failed or the puller crashed since.
        if self.instances[d].pulling != Some((id, gen)) {
            return;
        }
        self.instances[d].pulling = None;
        self.release_prefill_kv(id, now);
        {
            let st = self.states.get_mut(&id).expect("state exists");
            let resume = st.resume_generated;
            st.transfer_done = now;
            st.phase = RequestPhase::Decoding {
                generated: resume.max(1),
            };
            st.resume_generated = 0;
            st.transfer_attempt = 0;
        }
        self.emit(id, now, LifecycleEvent::KvMigrateEnd);
        self.sink
            .counter_add(metrics::KV_MIGRATIONS, track_id(d), 1);
        self.activate_decode(d, id);
        self.emit(id, now, LifecycleEvent::DecodeQueued);
        self.sink.gauge_set(
            metrics::DECODE_LOAD,
            track_id(d),
            self.instances[d].decode_load() as f64,
        );
        self.try_decode(d, now);
        self.try_pull(d, now);
    }

    fn activate_decode(&mut self, d: usize, id: RequestId) {
        let max = self.cfg.max_decode_batch;
        let inst = &mut self.instances[d];
        let group = inst
            .groups
            .iter_mut()
            .filter(|g| g.members.len() < max)
            .min_by_key(|g| g.members.len());
        match group {
            Some(g) => g.members.push(id),
            None => inst.overflow.push_back(id),
        }
    }

    // ------------------------------------------------------------------
    // Disaggregated decoding instance.
    // ------------------------------------------------------------------

    fn try_decode(&mut self, d: usize, now: SimTime) {
        let inst = &mut self.instances[d];
        if !inst.health.serves() || !inst.pipeline.stage0_free_at(now) {
            return;
        }
        // Round-robin over micro-batch groups so every group iterates
        // once per pipeline traversal.
        let n = inst.groups.len();
        let mut chosen = None;
        for off in 0..n {
            let g = (inst.next_group + off) % n;
            if !inst.groups[g].busy && !inst.groups[g].members.is_empty() {
                chosen = Some(g);
                break;
            }
        }
        let Some(g) = chosen else { return };
        inst.next_group = (g + 1) % n;
        inst.groups[g].busy = true;
        let members = inst.groups[g].members.clone();
        let contexts: Vec<u32> = members
            .iter()
            .map(|id| {
                let st = &self.states[id];
                let RequestPhase::Decoding { generated } = st.phase else {
                    unreachable!("decode group member not decoding");
                };
                st.request.input_len + generated
            })
            .collect();
        let batch = DecodeBatch::new(contexts);
        let raw = self
            .cost
            .decode_stage_time(&self.cfg.arch, self.instances[d].spec.par, &batch)
            .total();
        let slowdown = self.instances[d].health.slowdown();
        let stage_time = self.cfg.fidelity.perturb_step(raw, &mut self.rng) * slowdown;
        let bid = self.fresh_batch_id();
        let inst = &mut self.instances[d];
        let commit = inst.pipeline.commit(now, stage_time);
        inst.decode_inflight.insert(bid, (g, members.clone()));
        for id in &members {
            let st = self.states.get_mut(id).expect("state exists");
            if matches!(st.phase, RequestPhase::Decoding { generated: 1 })
                && st.decode_start <= st.transfer_done
            {
                st.decode_start = commit.start;
            }
        }
        self.emit_batch(
            d,
            "decode",
            commit.start,
            commit.done,
            members.len(),
            members.len() as u64,
            metrics::DECODE_BATCHES,
            metrics::DECODE_TOKENS,
        );
        self.events.push(commit.done, Ev::DecodeDone(d, bid));
        self.events.push(commit.stage0_free, Ev::DecodeFree(d));
    }

    fn on_decode_done(&mut self, d: usize, bid: u64, now: SimTime) {
        // A crash may have already drained the registry: stale completion.
        let Some((g, members)) = self.instances[d].decode_inflight.remove(&bid) else {
            return;
        };
        self.instances[d].groups[g].busy = false;
        let mut freed = false;
        for id in members {
            self.instances[d].tokens_out += 1;
            let (done, generated_now) = {
                let st = self.states.get_mut(&id).expect("state exists");
                let RequestPhase::Decoding { generated } = &mut st.phase else {
                    unreachable!("decode member not decoding");
                };
                *generated += 1;
                (*generated >= st.request.output_len, *generated)
            };
            self.emit(
                id,
                now,
                LifecycleEvent::DecodeStep {
                    generated: generated_now,
                },
            );
            if done {
                self.instances[d].kv.free(id).expect("decode KV allocated");
                freed = true;
                let inst = &mut self.instances[d];
                inst.groups[g].members.retain(|m| *m != id);
                let st = &self.states[&id];
                let (td, ds) = (st.transfer_done, st.decode_start);
                self.finish_request(d, id, td, ds, now);
            }
        }
        // Refill groups from the overflow queue.
        while let Some(&next) = self.instances[d].overflow.front() {
            let max = self.cfg.max_decode_batch;
            let inst = &mut self.instances[d];
            let Some(group) = inst
                .groups
                .iter_mut()
                .filter(|gr| gr.members.len() < max)
                .min_by_key(|gr| gr.members.len())
            else {
                break;
            };
            group.members.push(next);
            inst.overflow.pop_front();
        }
        if freed {
            self.emit_kv(d);
            self.sink.gauge_set(
                metrics::DECODE_LOAD,
                track_id(d),
                self.instances[d].decode_load() as f64,
            );
            self.try_pull(d, now);
        }
        self.try_decode(d, now);
    }

    // ------------------------------------------------------------------
    // Colocated (vLLM baseline) instance.
    // ------------------------------------------------------------------

    fn try_coloc(&mut self, c: usize, now: SimTime) {
        if !self.instances[c].health.serves() || self.instances[c].coloc_busy {
            return;
        }
        if let Some(chunk) = self.instances[c].spec.policy.chunked_prefill {
            self.try_coloc_chunked(c, chunk, now);
            return;
        }
        // vLLM iteration-level scheduling: prefill prioritized, whole
        // prompts, decode otherwise.
        let max_running = self.cfg.max_decode_batch;
        {
            let running_len = self.instances[c].running.len();
            let inst = &mut self.instances[c];
            let Instance {
                prefill_queue, kv, ..
            } = inst;
            let mut admitted = 0usize;
            let batch = prefill_queue.form_batch(|it| {
                if running_len + admitted >= max_running {
                    return false;
                }
                let st = &self.states[&it.id];
                let ok = kv
                    .alloc(it.id, it.input_len + st.request.output_len)
                    .is_ok();
                if ok {
                    admitted += 1;
                }
                ok
            });
            if let Some(batch) = batch {
                inst.note_kv();
                // Billed suffix only, as on the split path; KV was
                // allocated on the full lifetime footprint above.
                let lens: Vec<u32> = batch
                    .iter()
                    .map(|b| self.states[&b.id].billed_prefill_len())
                    .collect();
                let pbatch = PrefillBatch::new(lens);
                let raw = self
                    .cost
                    .prefill_stage_time(&self.cfg.arch, inst.spec.par, &pbatch)
                    .total();
                let slowdown = inst.health.slowdown();
                let stage_time = self.cfg.fidelity.perturb_step(raw, &mut self.rng) * slowdown;
                let bid = self.next_batch;
                self.next_batch += 1;
                let inst = &mut self.instances[c];
                let commit = inst.pipeline.commit(now, stage_time);
                inst.coloc_busy = true;
                let members: Vec<RequestId> = batch.iter().map(|b| b.id).collect();
                let batch_tokens = members
                    .iter()
                    .map(|id| u64::from(self.states[id].billed_prefill_len()))
                    .sum::<u64>();
                for id in &members {
                    let st = self.states.get_mut(id).expect("state exists");
                    st.prefill_start = commit.start;
                    st.phase = RequestPhase::Prefilling;
                }
                for id in &members {
                    self.emit(*id, commit.start, LifecycleEvent::PrefillStart);
                }
                self.emit_batch(
                    c,
                    "prefill",
                    commit.start,
                    commit.done,
                    members.len(),
                    batch_tokens,
                    metrics::PREFILL_BATCHES,
                    metrics::PREFILL_TOKENS,
                );
                self.instances[c]
                    .prefill_queue
                    .emit_depth(self.sink, track_id(c));
                self.emit_kv(c);
                let inst = &mut self.instances[c];
                inst.coloc_inflight.insert(bid, ColocStep::Prefill(members));
                self.events.push(commit.done, Ev::ColocDone(c, bid));
                return;
            }
        }
        self.launch_coloc_decode(c, now);
    }

    fn launch_coloc_decode(&mut self, c: usize, now: SimTime) {
        if self.instances[c].running.is_empty() {
            return;
        }
        let members = self.instances[c].running.clone();
        let contexts: Vec<u32> = members
            .iter()
            .map(|id| {
                let st = &self.states[id];
                let RequestPhase::Decoding { generated } = st.phase else {
                    unreachable!("running request not decoding");
                };
                st.request.input_len + generated
            })
            .collect();
        let batch = DecodeBatch::new(contexts);
        let raw = self
            .cost
            .decode_stage_time(&self.cfg.arch, self.instances[c].spec.par, &batch)
            .total();
        let slowdown = self.instances[c].health.slowdown();
        let stage_time = self.cfg.fidelity.perturb_step(raw, &mut self.rng) * slowdown;
        let bid = self.fresh_batch_id();
        let inst = &mut self.instances[c];
        let commit = inst.pipeline.commit(now, stage_time);
        inst.coloc_busy = true;
        for id in &members {
            let st = self.states.get_mut(id).expect("state exists");
            if matches!(st.phase, RequestPhase::Decoding { generated: 1 })
                && st.decode_start <= st.transfer_done
            {
                st.decode_start = commit.start;
            }
        }
        self.emit_batch(
            c,
            "decode",
            commit.start,
            commit.done,
            members.len(),
            members.len() as u64,
            metrics::DECODE_BATCHES,
            metrics::DECODE_TOKENS,
        );
        let inst = &mut self.instances[c];
        inst.coloc_inflight.insert(bid, ColocStep::Decode(members));
        self.events.push(commit.done, Ev::ColocDone(c, bid));
    }

    fn try_coloc_chunked(&mut self, c: usize, chunk: u32, now: SimTime) {
        // SARATHI-style: one step carries the decoding batch plus up to
        // `chunk` prompt tokens taken from the head of the queue.
        let max_running = self.cfg.max_decode_batch;
        let mut chunks: Vec<(RequestId, u32, bool)> = Vec::new();
        let mut pbatch = PrefillBatch::empty();
        let mut budget = chunk;
        while let Some(head) = self.instances[c].prefill_queue.front().copied() {
            if budget == 0 {
                break;
            }
            let mut prior = *self.instances[c].chunk_progress.get(&head.id).unwrap_or(&0);
            if prior == 0 {
                // First chunk: admit with the whole lifetime footprint.
                if self.instances[c].running.len() + chunks.len() >= max_running {
                    break;
                }
                let output_len = self.states[&head.id].request.output_len;
                if self.instances[c]
                    .kv
                    .alloc(head.id, head.input_len + output_len)
                    .is_err()
                {
                    break;
                }
                self.instances[c].note_kv();
                let st = self.states.get_mut(&head.id).expect("state exists");
                st.prefill_start = now;
                st.phase = RequestPhase::Prefilling;
                self.emit(head.id, now, LifecycleEvent::PrefillStart);
                self.emit_kv(c);
                // Prefix-cached tokens are pre-existing context: chunks
                // attend over them (the `prior` offset) without ever
                // computing them, so they count as progress up front.
                prior = head.input_len - self.states[&head.id].billed_prefill_len();
            }
            let remaining = head.input_len - prior;
            let take = remaining.min(budget);
            let last = take == remaining;
            pbatch.push_chunk(take, prior);
            chunks.push((head.id, take, last));
            budget -= take;
            if last {
                self.instances[c].prefill_queue.pop_front();
                self.instances[c].chunk_progress.remove(&head.id);
            } else {
                self.instances[c]
                    .chunk_progress
                    .insert(head.id, prior + take);
                break; // Partial head: nothing further can be taken.
            }
        }
        let members = self.instances[c].running.clone();
        if chunks.is_empty() && members.is_empty() {
            return;
        }
        let contexts: Vec<u32> = members
            .iter()
            .map(|id| {
                let st = &self.states[id];
                let RequestPhase::Decoding { generated } = st.phase else {
                    unreachable!("running request not decoding");
                };
                st.request.input_len + generated
            })
            .collect();
        let dbatch = DecodeBatch::new(contexts);
        let raw = self
            .cost
            .mixed_stage_time(&self.cfg.arch, self.instances[c].spec.par, &pbatch, &dbatch)
            .total();
        let slowdown = self.instances[c].health.slowdown();
        let stage_time = self.cfg.fidelity.perturb_step(raw, &mut self.rng) * slowdown;
        let bid = self.fresh_batch_id();
        let inst = &mut self.instances[c];
        let commit = inst.pipeline.commit(now, stage_time);
        inst.coloc_busy = true;
        for id in &members {
            let st = self.states.get_mut(id).expect("state exists");
            if matches!(st.phase, RequestPhase::Decoding { generated: 1 })
                && st.decode_start <= st.transfer_done
            {
                st.decode_start = commit.start;
            }
        }
        let chunk_tokens = chunks
            .iter()
            .map(|&(_, take, _)| u64::from(take))
            .sum::<u64>();
        self.emit_batch(
            c,
            "mixed",
            commit.start,
            commit.done,
            chunks.len() + members.len(),
            chunk_tokens + members.len() as u64,
            metrics::DECODE_BATCHES,
            metrics::DECODE_TOKENS,
        );
        self.instances[c]
            .prefill_queue
            .emit_depth(self.sink, track_id(c));
        let inst = &mut self.instances[c];
        inst.coloc_inflight.insert(
            bid,
            ColocStep::Mixed {
                chunks,
                decodes: members,
            },
        );
        self.events.push(commit.done, Ev::ColocDone(c, bid));
    }

    fn on_coloc_done(&mut self, c: usize, bid: u64, now: SimTime) {
        // A crash may have already drained the registry: stale completion.
        let Some(step) = self.instances[c].coloc_inflight.remove(&bid) else {
            return;
        };
        self.instances[c].coloc_busy = false;
        match step {
            ColocStep::Prefill(members) => {
                for id in members {
                    self.coloc_first_token(c, id, now);
                }
            }
            ColocStep::Decode(members) => {
                for id in members {
                    self.coloc_decode_token(c, id, now);
                }
            }
            ColocStep::Mixed { chunks, decodes } => {
                for (id, _take, last) in chunks {
                    if last {
                        self.coloc_first_token(c, id, now);
                    }
                }
                for id in decodes {
                    self.coloc_decode_token(c, id, now);
                }
            }
        }
        self.try_coloc(c, now);
    }

    fn coloc_first_token(&mut self, c: usize, id: RequestId, now: SimTime) {
        let (output_len, resume) = {
            let st = self.states.get_mut(&id).expect("state exists");
            let resume = st.resume_generated;
            if resume == 0 {
                // A recomputation does not re-deliver the first token.
                st.first_token = now;
            }
            st.transfer_done = now;
            (st.request.output_len, resume)
        };
        if resume == 0 {
            self.instances[c].tokens_out += 1;
        }
        self.emit(id, now, LifecycleEvent::PrefillEnd);
        if output_len <= 1 && resume == 0 {
            self.instances[c].kv.free(id).expect("coloc KV allocated");
            self.emit_kv(c);
            self.finish_request(c, id, now, now, now);
        } else {
            let st = self.states.get_mut(&id).expect("state exists");
            st.phase = RequestPhase::Decoding {
                generated: resume.max(1),
            };
            st.resume_generated = 0;
            self.emit(id, now, LifecycleEvent::DecodeQueued);
            self.instances[c].running.push(id);
        }
    }

    fn coloc_decode_token(&mut self, c: usize, id: RequestId, now: SimTime) {
        self.instances[c].tokens_out += 1;
        let (done, generated_now) = {
            let st = self.states.get_mut(&id).expect("state exists");
            let RequestPhase::Decoding { generated } = &mut st.phase else {
                unreachable!("running request not decoding");
            };
            *generated += 1;
            (*generated >= st.request.output_len, *generated)
        };
        self.emit(
            id,
            now,
            LifecycleEvent::DecodeStep {
                generated: generated_now,
            },
        );
        if done {
            self.instances[c].kv.free(id).expect("coloc KV allocated");
            self.emit_kv(c);
            self.instances[c].running.retain(|m| *m != id);
            let st = &self.states[&id];
            let (td, ds) = (st.transfer_done, st.decode_start);
            self.finish_request(c, id, td, ds, now);
        }
    }

    // ------------------------------------------------------------------
    // Completion.
    // ------------------------------------------------------------------

    fn finish_request(
        &mut self,
        track: usize,
        id: RequestId,
        transfer_done: SimTime,
        decode_start: SimTime,
        now: SimTime,
    ) {
        let mut st = self.states.remove(&id).expect("state exists");
        st.transfer_done = transfer_done;
        st.decode_start = decode_start;
        st.completion = now;
        st.phase = RequestPhase::Done;
        self.emit_tenant(id, st.request.tenant, now, LifecycleEvent::Finished);
        self.sink
            .counter_add(metrics::REQUESTS_FINISHED, track_id(track), 1);
        self.records.push(st.into_record());
        self.remaining -= 1;
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery.
    // ------------------------------------------------------------------

    /// Terminal failure: the request leaves the system unfinished. Frees
    /// any prefill-side KV it still holds (callers free decode-side KV
    /// before calling).
    fn fail_request(&mut self, id: RequestId, now: SimTime) {
        if let Some(home) = self.kv_home.remove(&id) {
            let _ = self.instances[home].kv.free(id);
        }
        if let Some(st) = self.states.remove(&id) {
            self.emit_tenant(id, st.request.tenant, now, LifecycleEvent::Failed);
            self.sink
                .counter_add(metrics::REQUESTS_FAILED, track_id(0), 1);
            self.failed.push(id);
            self.remaining -= 1;
        }
    }

    /// Charges one retry against `id`'s budget, emitting the lifecycle
    /// event. Returns `false` (after failing the request) when the budget
    /// is exhausted.
    fn charge_retry(&mut self, id: RequestId, now: SimTime) -> bool {
        if !self.retry_policy.allows(self.states[&id].retries) {
            self.fail_request(id, now);
            return false;
        }
        let st = self.states.get_mut(&id).expect("state exists");
        st.retries += 1;
        let attempt = st.retries;
        self.emit(id, now, LifecycleEvent::Retried { attempt });
        self.sink
            .counter_add(metrics::REQUEST_RETRIES, track_id(0), 1);
        true
    }

    /// Sends a request back through prefill dispatch after its work was
    /// lost. `charge` distinguishes lost execution (charged against the
    /// retry budget) from merely queued work being moved (free).
    fn redispatch_prefill(&mut self, id: RequestId, now: SimTime, charge: bool) {
        if !self.states.contains_key(&id) {
            return;
        }
        if charge && !self.charge_retry(id, now) {
            return;
        }
        self.states.get_mut(&id).expect("state exists").phase = RequestPhase::WaitingPrefill;
        self.dispatch_prefill(id, now);
    }

    /// Queues `id` on the best surviving prefill-capable instance.
    /// Re-dispatches bypass the admission cap: the system already
    /// accepted the request once.
    fn dispatch_prefill(&mut self, id: RequestId, now: SimTime) {
        let input_len = self.states[&id].prefill_len();
        if self.router.is_some() {
            let st = &self.states[&id];
            let features = RequestFeatures {
                readmission: true,
                ..RequestFeatures::arrival(id.0, input_len, st.request.output_len)
            }
            .with_tenant(st.request.tenant)
            .with_prefix(0, st.cached_tokens, self.cfg.prefix.hit_prob);
            match self.consult_router(&features) {
                Decision::Disagg { prefill, .. } => {
                    self.admit_routed(id, input_len, prefill.0 as usize, now);
                }
                Decision::Coloc { replica } => {
                    self.admit_routed(id, input_len, replica.0 as usize, now);
                }
                // Re-admissions bypass the queue cap, so the core only
                // declines when no path accepts work at all.
                _ => self.park_or_fail_routed(id, now),
            }
            return;
        }
        let item = PrefillItem { id, input_len };
        if self.coloc_ids.is_empty() {
            let target = self
                .prefill_ids
                .iter()
                .copied()
                .filter(|&i| self.instances[i].health.accepts_new_work())
                .min_by_key(|&i| {
                    let inst = &self.instances[i];
                    inst.prefill_queue.queued_tokens() + inst.inflight_prefill_tokens
                });
            let Some(target) = target else {
                self.park_or_fail_prefill(id, now);
                return;
            };
            self.emit(id, now, LifecycleEvent::PrefillQueued);
            self.instances[target].prefill_queue.push(item);
            self.instances[target]
                .prefill_queue
                .emit_depth(self.sink, track_id(target));
            self.try_prefill(target, now);
        } else {
            let target = self
                .coloc_ids
                .iter()
                .copied()
                .filter(|&i| self.instances[i].health.accepts_new_work())
                .min_by_key(|&i| {
                    let inst = &self.instances[i];
                    inst.prefill_queue.queued_tokens() + inst.running.len() as u64
                });
            let Some(target) = target else {
                self.park_or_fail_prefill(id, now);
                return;
            };
            self.emit(id, now, LifecycleEvent::PrefillQueued);
            self.instances[target].prefill_queue.push(item);
            self.instances[target]
                .prefill_queue
                .emit_depth(self.sink, track_id(target));
            self.try_coloc(target, now);
        }
    }

    /// No prefill-capable instance can take new work: park if one is on
    /// its way back, otherwise fail.
    fn park_or_fail_prefill(&mut self, id: RequestId, now: SimTime) {
        let pool = if self.coloc_ids.is_empty() {
            &self.prefill_ids
        } else {
            &self.coloc_ids
        };
        let recovery_pending = pool.iter().any(|&i| self.instances[i].recover_scheduled);
        if recovery_pending {
            self.parked_prefill.push_back(id);
        } else {
            self.fail_request(id, now);
        }
    }

    fn on_fault(&mut self, idx: usize, now: SimTime) {
        let fault = self.faults[idx];
        self.faults_injected += 1;
        let track = fault
            .kind
            .instance()
            .filter(|&i| i < self.instances.len())
            .unwrap_or(0);
        self.sink
            .counter_add(metrics::FAULTS_INJECTED, track_id(track), 1);
        match fault.kind {
            FaultKind::InstanceCrash {
                instance,
                downtime_secs,
            } => {
                if instance < self.instances.len() {
                    self.crash_instance(instance, now, Some(downtime_secs));
                }
            }
            FaultKind::GpuLoss { instance } => {
                if instance < self.instances.len() {
                    self.crash_instance(instance, now, None);
                }
            }
            FaultKind::LinkDegradation {
                factor,
                duration_secs,
            } => {
                self.link_slowdown = factor.max(1.0);
                self.events
                    .push(now.after(duration_secs.max(0.0)), Ev::LinkRestore);
            }
            FaultKind::Straggler {
                instance,
                factor,
                duration_secs,
            } => {
                if instance >= self.instances.len() {
                    return;
                }
                let inst = &mut self.instances[instance];
                if inst.health.accepts_new_work() {
                    inst.health = InstanceHealth::Degraded {
                        slowdown: factor.max(1.0),
                    };
                    self.events.push(
                        now.after(duration_secs.max(0.0)),
                        Ev::StragglerEnd(instance),
                    );
                }
            }
            FaultKind::KvTransferFailure { instance } => {
                if instance < self.instances.len() {
                    self.fail_active_pull(instance, now);
                }
            }
            FaultKind::Drain {
                instance,
                maintenance_secs,
            } => {
                if instance >= self.instances.len() {
                    return;
                }
                let inst = &mut self.instances[instance];
                if inst.health.accepts_new_work() {
                    inst.health = InstanceHealth::Draining;
                    inst.drain_secs = maintenance_secs.max(1e-3);
                    inst.recover_scheduled = true;
                }
            }
        }
    }

    /// Takes instance `i` down at `now`. `downtime` schedules a restart;
    /// `None` models permanent loss (GPU failure) that only replanning
    /// onto the shrunk cluster can repair.
    fn crash_instance(&mut self, i: usize, now: SimTime, downtime: Option<f64>) {
        if self.instances[i].health.is_down() {
            return;
        }
        let role = self.instances[i].spec.role;
        {
            let inst = &mut self.instances[i];
            inst.health = InstanceHealth::Down;
            inst.down_since = Some(now);
            inst.up_gen += 1;
            inst.recover_scheduled = downtime.is_some();
        }
        self.sink.gauge_set(metrics::INSTANCE_UP, track_id(i), 0.0);
        if let Some(d) = downtime {
            let d = d.max(1e-3);
            let gen = self.instances[i].up_gen;
            self.events
                .push(now.after(d), Ev::InstanceRecovering(i, gen));
            // Warm-up (weight reload) takes another 10% of the outage.
            self.events.push(now.after(d * 1.1), Ev::InstanceUp(i, gen));
        }
        match role {
            InstanceRole::Prefill => self.crash_prefill(i, now),
            InstanceRole::Decode => self.crash_decode(i, now),
            InstanceRole::Colocated => self.crash_coloc(i, now),
        }
    }

    /// Prefill crash: queued work moves for free; in-flight batches and
    /// transfers buffered on this instance lose their KV and are
    /// recomputed (charged against the retry budget).
    fn crash_prefill(&mut self, i: usize, now: SimTime) {
        let queued = self.instances[i].prefill_queue.drain_all();
        let mut inflight: Vec<(u64, Vec<RequestId>)> =
            self.instances[i].prefill_inflight.drain().collect();
        inflight.sort_by_key(|&(bid, _)| bid);
        self.instances[i].inflight_prefill_tokens = 0;
        self.instances[i]
            .prefill_queue
            .emit_depth(self.sink, track_id(i));
        // Transfers sourced from this instance lose their buffered KV.
        let mut lost_transfers: Vec<RequestId> = Vec::new();
        let decode_ids = self.decode_ids.clone();
        for d in decode_ids {
            let queue = std::mem::take(&mut self.instances[d].pull_queue);
            for id in queue {
                if self.kv_home.get(&id) == Some(&i) {
                    lost_transfers.push(id);
                } else {
                    self.instances[d].pull_queue.push_back(id);
                }
            }
            if let Some((id, _gen)) = self.instances[d].pulling {
                if self.kv_home.get(&id) == Some(&i) {
                    let _ = self.instances[d].kv.free(id);
                    self.instances[d].pulling = None;
                    lost_transfers.push(id);
                    self.emit_kv(d);
                    self.try_pull(d, now);
                }
            }
        }
        for (_bid, members) in inflight {
            for id in members {
                let _ = self.instances[i].kv.free(id);
                self.kv_home.remove(&id);
                self.redispatch_prefill(id, now, true);
            }
        }
        for it in queued {
            self.redispatch_prefill(it.id, now, false);
        }
        for id in lost_transfers {
            let _ = self.instances[i].kv.free(id);
            self.kv_home.remove(&id);
            self.redispatch_prefill(id, now, true);
        }
        self.emit_kv(i);
    }

    /// Decode crash: requests mid-transfer retry (remigrate or recompute,
    /// whichever is cheaper); active decoders lose their KV and re-prefill
    /// on a survivor, resuming token emission where they stopped.
    fn crash_decode(&mut self, d: usize, now: SimTime) {
        let mut transferring: Vec<RequestId> = Vec::new();
        if let Some((id, _gen)) = self.instances[d].pulling.take() {
            let _ = self.instances[d].kv.free(id);
            transferring.push(id);
        }
        transferring.extend(std::mem::take(&mut self.instances[d].pull_queue));
        let mut decoding: Vec<RequestId> = Vec::new();
        {
            let inst = &mut self.instances[d];
            for g in &mut inst.groups {
                decoding.append(&mut g.members);
                g.busy = false;
            }
            decoding.extend(inst.overflow.drain(..));
            inst.decode_inflight.clear();
        }
        for &id in &decoding {
            let _ = self.instances[d].kv.free(id);
            if let Some(st) = self.states.get_mut(&id) {
                if let RequestPhase::Decoding { generated } = st.phase {
                    st.resume_generated = generated;
                }
            }
        }
        self.sink.gauge_set(metrics::DECODE_LOAD, track_id(d), 0.0);
        self.emit_kv(d);
        for id in decoding {
            self.redispatch_prefill(id, now, true);
        }
        for id in transferring {
            self.recover_transferring(id, now);
        }
    }

    /// A request whose pull target died still holds buffered KV on its
    /// prefill instance. Choose the cheaper recovery: remigrate the
    /// buffer to a surviving decoder, or recompute the prefill (§3.3's
    /// bandwidth arithmetic decides which).
    fn recover_transferring(&mut self, id: RequestId, now: SimTime) {
        if !self.states.contains_key(&id) {
            return;
        }
        if !self.charge_retry(id, now) {
            return;
        }
        let target = self
            .decode_ids
            .iter()
            .copied()
            .filter(|&d| self.instances[d].health.accepts_new_work())
            .min_by_key(|&d| self.instances[d].decode_load());
        let Some(target) = target else {
            if self
                .decode_ids
                .iter()
                .any(|&d| self.instances[d].recover_scheduled)
            {
                self.parked_pull.push_back(id);
            } else {
                self.fail_request(id, now);
            }
            return;
        };
        let prefill_len = self.states[&id].prefill_len();
        let home = self.kv_home[&id];
        let remigrate = self.transfer.request_transfer_time(
            self.cluster,
            &self.instances[home].spec.stages,
            self.instances[home].spec.par,
            &self.instances[target].spec.stages,
            self.instances[target].spec.par,
            prefill_len + 1,
        ) * self.link_slowdown;
        let recompute = self
            .prefill_ids
            .iter()
            .copied()
            .filter(|&p| self.instances[p].health.accepts_new_work())
            .map(|p| {
                let inst = &self.instances[p];
                let stage = self
                    .cost
                    .prefill_stage_time(
                        &self.cfg.arch,
                        inst.spec.par,
                        &PrefillBatch::new(vec![prefill_len]),
                    )
                    .total();
                stage * f64::from(inst.spec.par.pp)
                    + self.transfer.request_transfer_time(
                        self.cluster,
                        &inst.spec.stages,
                        inst.spec.par,
                        &self.instances[target].spec.stages,
                        self.instances[target].spec.par,
                        prefill_len + 1,
                    ) * self.link_slowdown
            })
            .fold(f64::INFINITY, f64::min);
        if remigrate <= recompute {
            self.instances[target].pull_queue.push_back(id);
            self.try_pull(target, now);
        } else {
            // Recomputing next to a live prefill instance beats dragging
            // the buffer across a degraded or congested path.
            if let Some(h) = self.kv_home.remove(&id) {
                let _ = self.instances[h].kv.free(id);
                self.emit_kv(h);
            }
            self.states.get_mut(&id).expect("state exists").phase = RequestPhase::WaitingPrefill;
            self.dispatch_prefill(id, now);
        }
    }

    /// Colocated crash: everything on the engine — queued, chunk-partial,
    /// prefilling, decoding — loses its KV. Execution already spent is
    /// charged; merely queued work moves for free.
    fn crash_coloc(&mut self, c: usize, now: SimTime) {
        let queued = self.instances[c].prefill_queue.drain_all();
        let mut charged: Vec<RequestId> = self.instances[c].running.drain(..).collect();
        let mut steps: Vec<(u64, ColocStep)> = self.instances[c].coloc_inflight.drain().collect();
        steps.sort_by_key(|&(bid, _)| bid);
        for (_bid, step) in steps {
            match step {
                ColocStep::Prefill(m) | ColocStep::Decode(m) => charged.extend(m),
                ColocStep::Mixed { chunks, decodes } => {
                    charged.extend(chunks.into_iter().map(|(id, _, _)| id));
                    charged.extend(decodes);
                }
            }
        }
        charged.sort_unstable();
        charged.dedup();
        self.instances[c].coloc_busy = false;
        self.instances[c].chunk_progress.clear();
        // A chunk-partial head sits in the queue *and* in the in-flight
        // step; it is charged, not double-dispatched.
        let queued: Vec<PrefillItem> = queued
            .into_iter()
            .filter(|it| !charged.contains(&it.id))
            .collect();
        for &id in &charged {
            let _ = self.instances[c].kv.free(id);
            if let Some(st) = self.states.get_mut(&id) {
                if let RequestPhase::Decoding { generated } = st.phase {
                    st.resume_generated = generated;
                }
            }
        }
        for it in &queued {
            // Chunk-partial heads hold an allocation despite being queued.
            let _ = self.instances[c].kv.free(it.id);
        }
        self.instances[c]
            .prefill_queue
            .emit_depth(self.sink, track_id(c));
        self.emit_kv(c);
        for id in charged {
            self.redispatch_prefill(id, now, true);
        }
        for it in queued {
            self.redispatch_prefill(it.id, now, false);
        }
    }

    /// The transfer in flight into decode instance `d` fails; retry after
    /// capped exponential backoff, keeping the pull channel reserved so
    /// the queue order is preserved.
    fn fail_active_pull(&mut self, d: usize, now: SimTime) {
        let Some((id, _gen)) = self.instances[d].pulling else {
            return;
        };
        self.sink
            .counter_add(metrics::KV_TRANSFER_RETRIES, track_id(d), 1);
        {
            let st = self.states.get_mut(&id).expect("state exists");
            st.transfer_attempt += 1;
        }
        if !self.retry_policy.allows(self.states[&id].retries) {
            let _ = self.instances[d].kv.free(id);
            self.instances[d].pulling = None;
            self.emit_kv(d);
            self.fail_request(id, now);
            self.try_pull(d, now);
            return;
        }
        let st = self.states.get_mut(&id).expect("state exists");
        st.retries += 1;
        let attempt = st.retries;
        let backoff = self.retry_policy.backoff_secs(st.transfer_attempt);
        self.emit(id, now, LifecycleEvent::Retried { attempt });
        self.sink
            .counter_add(metrics::REQUEST_RETRIES, track_id(0), 1);
        self.instances[d].pull_gen += 1;
        let gen = self.instances[d].pull_gen;
        self.instances[d].pulling = Some((id, gen));
        self.events
            .push(now.after(backoff), Ev::RetryPull(d, id, gen));
    }

    fn on_retry_pull(&mut self, d: usize, id: RequestId, gen: u64, now: SimTime) {
        if self.instances[d].pulling != Some((id, gen)) {
            return;
        }
        if !self.states.contains_key(&id) {
            self.instances[d].pulling = None;
            self.try_pull(d, now);
            return;
        }
        self.issue_pull(d, id, gen, now);
    }

    /// Completes planned maintenance: a draining instance that has gone
    /// idle is taken down for its maintenance window.
    fn check_drains(&mut self, now: SimTime) {
        for i in 0..self.instances.len() {
            if self.instances[i].health != InstanceHealth::Draining || !self.instance_idle(i) {
                continue;
            }
            let inst = &mut self.instances[i];
            inst.health = InstanceHealth::Down;
            inst.down_since = Some(now);
            inst.up_gen += 1;
            let gen = inst.up_gen;
            let window = inst.drain_secs.max(1e-3);
            self.sink.gauge_set(metrics::INSTANCE_UP, track_id(i), 0.0);
            self.events
                .push(now.after(window * 0.9), Ev::InstanceRecovering(i, gen));
            self.events.push(now.after(window), Ev::InstanceUp(i, gen));
        }
    }

    fn instance_idle(&self, i: usize) -> bool {
        let inst = &self.instances[i];
        match inst.spec.role {
            InstanceRole::Prefill => {
                inst.prefill_queue.is_empty()
                    && inst.prefill_inflight.is_empty()
                    && inst.kv.utilization() == 0.0
            }
            InstanceRole::Decode => {
                inst.groups.iter().all(|g| g.members.is_empty())
                    && inst.overflow.is_empty()
                    && inst.pull_queue.is_empty()
                    && inst.pulling.is_none()
                    && inst.decode_inflight.is_empty()
            }
            InstanceRole::Colocated => {
                inst.prefill_queue.is_empty()
                    && inst.running.is_empty()
                    && inst.coloc_inflight.is_empty()
            }
        }
    }

    fn on_instance_recovering(&mut self, i: usize, gen: u64) {
        let inst = &mut self.instances[i];
        if inst.up_gen == gen && inst.health == InstanceHealth::Down {
            inst.health = InstanceHealth::Recovering;
        }
    }

    fn on_instance_up(&mut self, i: usize, gen: u64, now: SimTime) {
        if self.instances[i].up_gen != gen {
            return;
        }
        {
            let inst = &mut self.instances[i];
            inst.health = InstanceHealth::Up;
            if let Some(since) = inst.down_since.take() {
                inst.downtime_secs += now.since(since).max(0.0);
            }
            inst.recover_scheduled = false;
        }
        self.sink.gauge_set(metrics::INSTANCE_UP, track_id(i), 1.0);
        match self.instances[i].spec.role {
            InstanceRole::Prefill | InstanceRole::Colocated => {
                let parked: Vec<RequestId> = self.parked_prefill.drain(..).collect();
                for id in parked {
                    if self.states.contains_key(&id) {
                        self.dispatch_prefill(id, now);
                    }
                }
            }
            InstanceRole::Decode => {
                let parked: Vec<RequestId> = self.parked_pull.drain(..).collect();
                for id in parked {
                    if self.states.contains_key(&id) {
                        self.route_to_decode(id, now);
                    }
                }
                self.try_pull(i, now);
                self.try_decode(i, now);
            }
        }
        match self.instances[i].spec.role {
            InstanceRole::Prefill => self.try_prefill(i, now),
            InstanceRole::Colocated => self.try_coloc(i, now),
            InstanceRole::Decode => {}
        }
    }

    fn on_straggler_end(&mut self, i: usize) {
        if matches!(self.instances[i].health, InstanceHealth::Degraded { .. }) {
            self.instances[i].health = InstanceHealth::Up;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distserve_models::{OptModel, ParallelismConfig, RooflineModel};
    use distserve_simcore::SimRng;
    use distserve_workload::datasets::FixedLengths;
    use distserve_workload::TraceBuilder;

    fn cluster() -> Cluster {
        Cluster::single_node(8)
    }

    fn coloc_deployment(c: &Cluster) -> Vec<InstanceSpec> {
        vec![InstanceSpec::new(
            InstanceRole::Colocated,
            ParallelismConfig::SINGLE,
            vec![vec![c.gpu(0, 0)]],
        )
        .unwrap()]
    }

    fn disagg_deployment(c: &Cluster) -> Vec<InstanceSpec> {
        vec![
            InstanceSpec::new(
                InstanceRole::Prefill,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 0)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Decode,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 1)]],
            )
            .unwrap(),
        ]
    }

    fn fixed_trace(n: usize, rate: f64, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed);
        TraceBuilder::new(Box::new(FixedLengths {
            input_len: 512,
            output_len: 64,
        }))
        .rate(rate)
        .num_requests(n)
        .build(&mut rng)
    }

    fn run(specs: Vec<InstanceSpec>, trace: &Trace) -> SimOutcome {
        let cost = RooflineModel::a100();
        let cl = cluster();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let sim = ServingSim::new(cfg, &cost, &cl, specs).unwrap();
        sim.run(trace)
    }

    #[test]
    fn colocated_completes_all_requests() {
        let cl = cluster();
        let trace = fixed_trace(50, 1.0, 1);
        let out = run(coloc_deployment(&cl), &trace);
        assert_eq!(out.records.len(), 50);
        for r in &out.records {
            assert!(r.ttft() > 0.0);
            assert!(r.tpot() > 0.0);
            assert!(r.completion >= r.first_token);
        }
    }

    #[test]
    fn disaggregated_completes_all_requests() {
        let cl = cluster();
        let trace = fixed_trace(50, 1.0, 2);
        let out = run(disagg_deployment(&cl), &trace);
        assert_eq!(out.records.len(), 50);
        for r in &out.records {
            // Transfer over NVLink exists but is small.
            assert!(r.transfer_active > 0.0);
            assert!(r.transfer_active < 0.01);
            let b = r.breakdown();
            assert!((b.total() - r.total_latency()).abs() < 1e-9);
        }
    }

    #[test]
    fn prefix_hit_model_discounts_ttft_on_every_path() {
        // A certain hit on half the prompt must shorten prefill — and
        // therefore TTFT — on the split, colocated, and chunked paths
        // alike, without changing completion counts.
        let cl = cluster();
        let trace = fixed_trace(80, 2.0, 5);
        let cost = RooflineModel::a100();
        let chunked = |c: &Cluster| {
            vec![InstanceSpec::new(
                InstanceRole::Colocated,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 0)]],
            )
            .unwrap()
            .with_policy(crate::spec::ColocatedPolicy {
                chunked_prefill: Some(256),
                ..Default::default()
            })]
        };
        for specs in [disagg_deployment(&cl), coloc_deployment(&cl), chunked(&cl)] {
            let cold_cfg = SimConfig::new(OptModel::Opt13B.arch());
            let warm_cfg = SimConfig::new(OptModel::Opt13B.arch()).with_prefix_model(1.0, 0.5);
            let cold = ServingSim::new(cold_cfg, &cost, &cl, specs.clone())
                .unwrap()
                .run(&trace);
            let warm = ServingSim::new(warm_cfg, &cost, &cl, specs)
                .unwrap()
                .run(&trace);
            assert_eq!(warm.records.len(), cold.records.len());
            let cold_ttft = cold.ttft_summary().mean();
            let warm_ttft = warm.ttft_summary().mean();
            assert!(
                warm_ttft < cold_ttft,
                "warm mean TTFT {warm_ttft} not below cold {cold_ttft}"
            );
        }
    }

    #[test]
    fn prefix_hit_draw_is_deterministic_and_block_aligned() {
        let cl = cluster();
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch()).with_prefix_model(0.6, 0.5);
        let bs = cfg.block_size;
        let sim = ServingSim::new(cfg.clone(), &cost, &cl, coloc_deployment(&cl)).unwrap();
        let mut hits = 0u32;
        for id in 0..200u64 {
            let a = sim.draw_cached_tokens(id, 512);
            let b = sim.draw_cached_tokens(id, 512);
            assert_eq!(a, b, "draw must be a pure function of (seed, id)");
            assert_eq!(a % bs, 0, "matched tokens must be block-aligned");
            assert!(a < 512);
            if a > 0 {
                hits += 1;
            }
        }
        // 0.6 hit probability over 200 draws: comfortably within
        // [60, 180] unless the hash is broken.
        assert!((60..=180).contains(&hits), "implausible hit count {hits}");
        // Disabled model never matches.
        let off = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cl,
            coloc_deployment(&cl),
        )
        .unwrap();
        assert_eq!(off.draw_cached_tokens(7, 512), 0);
    }

    #[test]
    fn disaggregation_improves_tpot_under_load() {
        // The headline interference claim (Figure 1): at a rate where the
        // colocated engine's decode steps keep getting delayed by prefill
        // steps, the disaggregated decode instance keeps TPOT near the
        // pure step time.
        let cl = cluster();
        let trace = fixed_trace(200, 4.0, 3);
        let coloc = run(coloc_deployment(&cl), &trace);
        let disagg = run(disagg_deployment(&cl), &trace);
        let coloc_tpot = coloc.tpot_summary().percentile(0.9);
        let disagg_tpot = disagg.tpot_summary().percentile(0.9);
        assert!(
            disagg_tpot < coloc_tpot * 0.6,
            "disagg P90 TPOT {disagg_tpot} vs coloc {coloc_tpot}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cl = cluster();
        let trace = fixed_trace(80, 2.0, 4);
        let a = run(disagg_deployment(&cl), &trace);
        let b = run(disagg_deployment(&cl), &trace);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn detailed_fidelity_slower_than_ideal() {
        let cl = cluster();
        let trace = fixed_trace(60, 1.0, 5);
        let cost = RooflineModel::a100();
        let ideal = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cl,
            disagg_deployment(&cl),
        )
        .unwrap()
        .run(&trace);
        let detailed = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()).detailed(),
            &cost,
            &cl,
            disagg_deployment(&cl),
        )
        .unwrap()
        .run(&trace);
        assert!(
            detailed.ttft_summary().mean() > ideal.ttft_summary().mean(),
            "detailed should be slower"
        );
    }

    #[test]
    fn invalid_deployments_rejected() {
        let cl = cluster();
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        // Prefill without decode.
        let only_prefill = vec![InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cl.gpu(0, 0)]],
        )
        .unwrap()];
        assert!(ServingSim::new(cfg.clone(), &cost, &cl, only_prefill).is_err());
        // Empty deployment.
        assert!(ServingSim::new(cfg.clone(), &cost, &cl, vec![]).is_err());
        // OPT-175B on a single GPU.
        let cfg175 = SimConfig::new(OptModel::Opt175B.arch());
        assert!(ServingSim::new(cfg175, &cost, &cl, coloc_deployment(&cl)).is_err());
    }

    #[test]
    fn single_token_outputs_complete_at_prefill() {
        let cl = cluster();
        let mut rng = SimRng::seed(6);
        let trace = TraceBuilder::new(Box::new(FixedLengths {
            input_len: 128,
            output_len: 1,
        }))
        .rate(2.0)
        .num_requests(20)
        .build(&mut rng);
        let out = run(disagg_deployment(&cl), &trace);
        assert_eq!(out.records.len(), 20);
        for r in &out.records {
            assert_eq!(r.completion, r.first_token);
            assert_eq!(r.tpot(), 0.0);
        }
    }

    #[test]
    fn chunked_prefill_also_completes() {
        let cl = cluster();
        let spec = InstanceSpec::new(
            InstanceRole::Colocated,
            ParallelismConfig::SINGLE,
            vec![vec![cl.gpu(0, 0)]],
        )
        .unwrap()
        .with_policy(crate::spec::ColocatedPolicy {
            prefill_token_budget: 2048,
            chunked_prefill: Some(256),
        });
        let trace = fixed_trace(40, 2.0, 7);
        let out = run(vec![spec], &trace);
        assert_eq!(out.records.len(), 40);
        // Chunked prefill trades TTFT for TPOT: with 256-token chunks a
        // 512-token prompt needs two steps, so TTFT spans at least two
        // step times.
        for r in &out.records {
            assert!(r.ttft() > 0.0);
        }
    }

    #[test]
    fn utilization_statistics_populated() {
        let cl = cluster();
        let trace = fixed_trace(30, 2.0, 8);
        let out = run(disagg_deployment(&cl), &trace);
        assert_eq!(out.instances.len(), 2);
        for s in &out.instances {
            assert!(s.busy_secs > 0.0);
            assert!(s.batches > 0);
            assert!(s.kv_peak_utilization > 0.0);
        }
        // Both instances produced tokens: prefill the first of each
        // request, decode the rest.
        assert_eq!(out.instances[0].tokens_out, 30);
        assert_eq!(out.instances[1].tokens_out, 30 * 63);
        assert_eq!(out.total_gpus(), 2);
    }

    #[test]
    fn telemetry_recorder_captures_valid_lifecycles() {
        use distserve_telemetry::Recorder;
        let cl = cluster();
        let trace = fixed_trace(30, 2.0, 10);
        let cost = RooflineModel::a100();
        let rec = Recorder::new();
        let out = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cl,
            disagg_deployment(&cl),
        )
        .unwrap()
        .with_sink(&rec)
        .run(&trace);
        assert_eq!(out.records.len(), 30);
        let snap = rec.snapshot();
        let lcs = snap.lifecycles();
        assert_eq!(lcs.len(), 30);
        for lc in lcs.values() {
            lc.validate().unwrap();
        }
        // Both instance tracks got slices of their own kind, and the
        // tracks carry role names.
        assert!(snap
            .slices
            .iter()
            .any(|s| s.track == 0 && s.name == "prefill"));
        assert!(snap
            .slices
            .iter()
            .any(|s| s.track == 1 && s.name == "decode"));
        assert!(snap.tracks[&0].starts_with("prefill[0]"));
        assert!(snap.tracks[&1].starts_with("decode[1]"));
        // Every request finished, counted on the instance that retired it.
        let finished: u64 = (0..2)
            .map(|i| snap.metrics.counter(metrics::REQUESTS_FINISHED, i))
            .sum();
        assert_eq!(finished, 30);
        // 512-token prompts, 30 requests.
        assert_eq!(snap.metrics.counter(metrics::PREFILL_TOKENS, 0), 30 * 512);
        assert_eq!(snap.metrics.counter(metrics::KV_MIGRATIONS, 1), 30);
        // Decode instance produced the non-first tokens.
        assert_eq!(snap.metrics.counter(metrics::DECODE_TOKENS, 1), 30 * 63);
    }

    #[test]
    fn telemetry_sink_does_not_perturb_outcome() {
        use distserve_telemetry::Recorder;
        let cl = cluster();
        let trace = fixed_trace(40, 2.0, 11);
        let plain = run(disagg_deployment(&cl), &trace);
        let cost = RooflineModel::a100();
        let rec = Recorder::new();
        let recorded = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cl,
            disagg_deployment(&cl),
        )
        .unwrap()
        .with_sink(&rec)
        .run(&trace);
        assert_eq!(plain.records, recorded.records);
    }

    #[test]
    fn telemetry_colocated_lifecycles_skip_migration() {
        use distserve_telemetry::{LifecycleEvent, Recorder};
        let cl = cluster();
        let trace = fixed_trace(20, 1.0, 12);
        let cost = RooflineModel::a100();
        let rec = Recorder::new();
        let out = ServingSim::new(
            SimConfig::new(OptModel::Opt13B.arch()),
            &cost,
            &cl,
            coloc_deployment(&cl),
        )
        .unwrap()
        .with_sink(&rec)
        .run(&trace);
        assert_eq!(out.records.len(), 20);
        let snap = rec.snapshot();
        for lc in snap.lifecycles().values() {
            lc.validate().unwrap();
            assert!(lc.first(LifecycleEvent::KvMigrateStart).is_none());
            assert!(lc.first(LifecycleEvent::PrefillEnd).is_some());
        }
        assert_eq!(snap.metrics.counter(metrics::KV_MIGRATIONS, 0), 0);
    }

    fn run_chaos(
        specs: Vec<InstanceSpec>,
        trace: &Trace,
        schedule: &distserve_faults::FaultSchedule,
    ) -> SimOutcome {
        let cost = RooflineModel::a100();
        let cl = cluster();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        ServingSim::new(cfg, &cost, &cl, specs)
            .unwrap()
            .with_faults(schedule, RetryPolicy::default())
            .run(trace)
    }

    fn wide_disagg(c: &Cluster) -> Vec<InstanceSpec> {
        vec![
            InstanceSpec::new(
                InstanceRole::Prefill,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 0)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Decode,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 1)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Decode,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 2)]],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn empty_schedule_matches_fault_free_run() {
        let cl = cluster();
        let trace = fixed_trace(60, 2.0, 21);
        let plain = run(disagg_deployment(&cl), &trace);
        let chaos = run_chaos(
            disagg_deployment(&cl),
            &trace,
            &distserve_faults::FaultSchedule::new(),
        );
        assert_eq!(plain.records, chaos.records);
        assert!(chaos.failed.is_empty());
    }

    #[test]
    fn decode_crash_resumes_without_losing_requests() {
        use distserve_telemetry::Recorder;
        let cl = cluster();
        let trace = fixed_trace(40, 3.0, 22);
        let schedule = distserve_faults::FaultSchedule::new().with(
            4.0,
            FaultKind::InstanceCrash {
                instance: 1,
                downtime_secs: 3.0,
            },
        );
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let rec = Recorder::new();
        let out = ServingSim::new(cfg, &cost, &cl, disagg_deployment(&cl))
            .unwrap()
            .with_faults(&schedule, RetryPolicy::default())
            .with_sink(&rec)
            .run(&trace);
        // Nothing silently dropped: every request ends terminally.
        assert_eq!(
            out.records.len() + out.rejected.len() + out.failed.len(),
            40
        );
        // The sole decode instance recovered, so nothing had to fail.
        assert!(out.failed.is_empty(), "failed: {:?}", out.failed);
        assert!(out.instances[1].downtime_secs > 2.9);
        // Delivered tokens were never re-emitted: every lifecycle still
        // validates (DecodeStep counts strictly increase across retries).
        let snap = rec.snapshot();
        for lc in snap.lifecycles().values() {
            lc.validate().unwrap();
        }
        // The crash displaced at least one in-flight request.
        assert!(
            snap.metrics.counter(metrics::REQUEST_RETRIES, 0) > 0,
            "crash at t=4 under 3 req/s load must displace someone"
        );
        assert_eq!(snap.metrics.counter(metrics::FAULTS_INJECTED, 1), 1);
    }

    #[test]
    fn prefill_crash_requeues_to_survivor() {
        use distserve_telemetry::Recorder;
        let cl = cluster();
        // Two prefill instances, one decoder: the surviving prefill
        // absorbs the dead one's queue.
        let specs = vec![
            InstanceSpec::new(
                InstanceRole::Prefill,
                ParallelismConfig::SINGLE,
                vec![vec![cl.gpu(0, 0)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Prefill,
                ParallelismConfig::SINGLE,
                vec![vec![cl.gpu(0, 1)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Decode,
                ParallelismConfig::SINGLE,
                vec![vec![cl.gpu(0, 2)]],
            )
            .unwrap(),
        ];
        let trace = fixed_trace(40, 4.0, 23);
        let schedule =
            distserve_faults::FaultSchedule::new().with(3.0, FaultKind::GpuLoss { instance: 0 });
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let rec = Recorder::new();
        let out = ServingSim::new(cfg, &cost, &cl, specs)
            .unwrap()
            .with_faults(&schedule, RetryPolicy::default())
            .with_sink(&rec)
            .run(&trace);
        assert_eq!(
            out.records.len() + out.rejected.len() + out.failed.len(),
            40
        );
        // The survivor could always take the work: no terminal failures.
        assert!(out.failed.is_empty(), "failed: {:?}", out.failed);
        // Instance 0 never came back (permanent GPU loss).
        assert!(out.instances[0].downtime_secs > 0.0);
        for lc in rec.snapshot().lifecycles().values() {
            lc.validate().unwrap();
        }
    }

    #[test]
    fn decode_loss_without_survivor_fails_cleanly() {
        let cl = cluster();
        let trace = fixed_trace(30, 2.0, 24);
        let schedule =
            distserve_faults::FaultSchedule::new().with(3.0, FaultKind::GpuLoss { instance: 1 });
        let out = run_chaos(disagg_deployment(&cl), &trace, &schedule);
        // No decoder survives and none is coming back: multi-token
        // requests must fail terminally, not hang the simulation.
        assert_eq!(
            out.records.len() + out.rejected.len() + out.failed.len(),
            30
        );
        assert!(!out.failed.is_empty());
        // Requests retired before the fault still completed.
        assert!(!out.records.is_empty());
    }

    #[test]
    fn drain_preserves_all_requests() {
        let cl = cluster();
        let trace = fixed_trace(40, 2.0, 25);
        let schedule = distserve_faults::FaultSchedule::new().with(
            3.0,
            FaultKind::Drain {
                instance: 1,
                maintenance_secs: 2.0,
            },
        );
        let out = run_chaos(wide_disagg(&cl), &trace, &schedule);
        // Drain-before-kill: in-flight work completes, nothing is lost.
        assert_eq!(out.records.len(), 40);
        assert!(out.failed.is_empty());
        assert!(out.instances[1].downtime_secs >= 2.0 * 0.99);
    }

    #[test]
    fn straggler_and_link_faults_only_slow_things_down() {
        let cl = cluster();
        let trace = fixed_trace(40, 2.0, 26);
        let plain = run(disagg_deployment(&cl), &trace);
        let schedule = distserve_faults::FaultSchedule::new()
            .with(
                1.0,
                FaultKind::Straggler {
                    instance: 1,
                    factor: 3.0,
                    duration_secs: 8.0,
                },
            )
            .with(
                1.0,
                FaultKind::LinkDegradation {
                    factor: 4.0,
                    duration_secs: 8.0,
                },
            );
        let out = run_chaos(disagg_deployment(&cl), &trace, &schedule);
        assert_eq!(out.records.len(), 40);
        assert!(out.failed.is_empty());
        assert!(
            out.tpot_summary().mean() > plain.tpot_summary().mean(),
            "a 3x decode straggler must raise mean TPOT"
        );
    }

    #[test]
    fn chaos_is_deterministic_given_seed() {
        let cl = cluster();
        let trace = fixed_trace(60, 3.0, 27);
        let schedule = distserve_faults::FaultSchedule::storm(
            13,
            &distserve_faults::StormConfig {
                horizon_secs: 15.0,
                count: 8,
                instances: 3,
                mean_downtime_secs: 2.0,
            },
        );
        let a = run_chaos(wide_disagg(&cl), &trace, &schedule);
        let b = run_chaos(wide_disagg(&cl), &trace, &schedule);
        assert_eq!(a.records, b.records);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.records.len() + a.rejected.len() + a.failed.len(), 60);
    }

    #[test]
    fn coloc_crash_recovers() {
        use distserve_telemetry::Recorder;
        let cl = cluster();
        let specs = vec![
            InstanceSpec::new(
                InstanceRole::Colocated,
                ParallelismConfig::SINGLE,
                vec![vec![cl.gpu(0, 0)]],
            )
            .unwrap(),
            InstanceSpec::new(
                InstanceRole::Colocated,
                ParallelismConfig::SINGLE,
                vec![vec![cl.gpu(0, 1)]],
            )
            .unwrap(),
        ];
        let trace = fixed_trace(40, 3.0, 28);
        let schedule = distserve_faults::FaultSchedule::new().with(
            3.0,
            FaultKind::InstanceCrash {
                instance: 0,
                downtime_secs: 2.0,
            },
        );
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let rec = Recorder::new();
        let out = ServingSim::new(cfg, &cost, &cl, specs)
            .unwrap()
            .with_faults(&schedule, RetryPolicy::default())
            .with_sink(&rec)
            .run(&trace);
        assert_eq!(
            out.records.len() + out.rejected.len() + out.failed.len(),
            40
        );
        assert!(out.failed.is_empty(), "failed: {:?}", out.failed);
        for lc in rec.snapshot().lifecycles().values() {
            lc.validate().unwrap();
        }
    }

    #[test]
    fn attainment_reflects_slo_choice() {
        let cl = cluster();
        let trace = fixed_trace(60, 1.0, 9);
        let out = run(disagg_deployment(&cl), &trace);
        // Impossibly tight SLOs fail everything; loose SLOs pass all.
        assert_eq!(out.attainment(1e-6, 1e-9), 0.0);
        assert_eq!(out.attainment(1e3, 1e3), 1.0);
        // At low load many requests share the same deterministic TTFT, so
        // the fraction at the median can sit well above one half — it just
        // must be a proper fraction at or above it.
        let mid_ttft = out.ttft_summary().percentile(0.5);
        let frac = out.ttft_attainment(mid_ttft);
        assert!((0.5..=1.0).contains(&frac), "median attainment {frac}");
        let min_ttft = out.ttft_summary().min();
        assert_eq!(out.ttft_attainment(min_ttft * 0.5), 0.0);
    }

    fn mixed_deployment(c: &Cluster) -> Vec<InstanceSpec> {
        let mut specs = disagg_deployment(c);
        specs.push(
            InstanceSpec::new(
                InstanceRole::Colocated,
                ParallelismConfig::SINGLE,
                vec![vec![c.gpu(0, 2)]],
            )
            .unwrap(),
        );
        specs
    }

    #[test]
    fn routed_mixed_fleet_completes_and_uses_both_paths() {
        let cl = cluster();
        let trace = fixed_trace(120, 3.0, 12);
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let sim = ServingSim::new_routed(
            cfg,
            &cost,
            &cl,
            mixed_deployment(&cl),
            RouterPolicy::default(),
        )
        .unwrap();
        let (out, log) = sim.run_logged(&trace);
        assert_eq!(out.records.len() + out.rejected.len(), 120);
        assert!(out.rejected.len() < 120);
        // Every request got at least one verdict, and with three idle-ish
        // replicas both execution paths see traffic.
        assert!(log.len() >= 120);
        use distserve_router::DecisionKind;
        let disagg = log
            .iter()
            .filter(|r| r.kind == DecisionKind::Disagg)
            .count();
        let coloc = log.iter().filter(|r| r.kind == DecisionKind::Coloc).count();
        assert!(disagg > 0, "split path never chosen");
        assert!(coloc > 0, "colocated path never chosen");
    }

    #[test]
    fn routed_replay_reproduces_run() {
        let cl = cluster();
        let trace = fixed_trace(100, 6.0, 13);
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let policy = RouterPolicy {
            queue_cap: 4,
            ..RouterPolicy::default()
        };
        let (out, log) =
            ServingSim::new_routed(cfg.clone(), &cost, &cl, mixed_deployment(&cl), policy)
                .unwrap()
                .run_logged(&trace);
        let (replayed, replay_log) =
            ServingSim::new_replayed(cfg, &cost, &cl, mixed_deployment(&cl), &log)
                .unwrap()
                .run_logged(&trace);
        assert_eq!(out.records, replayed.records);
        assert_eq!(out.rejected, replayed.rejected);
        assert_eq!(out.failed, replayed.failed);
        assert_eq!(log, replay_log, "replay must re-emit the same log");
    }

    #[test]
    fn routed_overload_queues_and_sheds_bounded() {
        let cl = cluster();
        // Hammer one small fleet so the queue cap binds.
        let trace = fixed_trace(200, 50.0, 14);
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let policy = RouterPolicy {
            queue_cap: 2,
            max_wait_secs: 0.5,
            retry_gap_secs: 0.1,
            ..RouterPolicy::default()
        };
        let (out, log) = ServingSim::new_routed(cfg, &cost, &cl, disagg_deployment(&cl), policy)
            .unwrap()
            .run_logged(&trace);
        assert_eq!(out.records.len() + out.rejected.len(), 200);
        assert!(!out.rejected.is_empty(), "overload must shed");
        use distserve_router::DecisionKind;
        assert!(
            log.iter().any(|r| r.kind == DecisionKind::Queue),
            "bounded wait never engaged"
        );
        // Shed only after the wait budget: every shed request queued first.
        for shed in log.iter().filter(|r| r.kind == DecisionKind::Shed) {
            assert!(
                log.iter()
                    .any(|r| r.request == shed.request && r.kind == DecisionKind::Queue),
                "request {} shed without queueing first",
                shed.request
            );
        }
    }

    #[test]
    fn routed_topology_validation() {
        let cl = cluster();
        let cost = RooflineModel::a100();
        let cfg = SimConfig::new(OptModel::Opt13B.arch());
        let only_prefill = vec![InstanceSpec::new(
            InstanceRole::Prefill,
            ParallelismConfig::SINGLE,
            vec![vec![cl.gpu(0, 0)]],
        )
        .unwrap()];
        assert!(ServingSim::new_routed(
            cfg.clone(),
            &cost,
            &cl,
            only_prefill,
            RouterPolicy::default()
        )
        .is_err());
        assert!(
            ServingSim::new_routed(cfg.clone(), &cost, &cl, vec![], RouterPolicy::default())
                .is_err()
        );
        // Mixed fleets are valid in routed mode but not in direct mode.
        assert!(ServingSim::new(cfg.clone(), &cost, &cl, mixed_deployment(&cl)).is_err());
        assert!(ServingSim::new_routed(
            cfg,
            &cost,
            &cl,
            mixed_deployment(&cl),
            RouterPolicy::default()
        )
        .is_ok());
    }
}
