//! Simulation fidelity knobs.
//!
//! The paper validates its planner simulator against the real testbed and
//! finds under 2% SLO-attainment error (Table 2). We reproduce that
//! comparison as two fidelity levels of one engine: the *ideal*
//! configuration is the planner's simulator (pure cost-model times); the
//! *detailed* configuration adds the imperfections a real deployment has —
//! per-step scheduler overhead, execution-time jitter, and KV-transfer
//! launch latency.

use serde::{Deserialize, Serialize};

use distserve_simcore::SimRng;

/// Perturbations applied on top of the analytical cost model.
///
/// # Examples
///
/// ```
/// use distserve_engine::FidelityConfig;
///
/// let ideal = FidelityConfig::ideal();
/// assert_eq!(ideal.scheduler_overhead, 0.0);
/// let detailed = FidelityConfig::detailed();
/// assert!(detailed.jitter_frac > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityConfig {
    /// Extra fixed seconds added to every executed batch (scheduler,
    /// tokenization, Python runtime in the real system).
    pub scheduler_overhead: f64,
    /// Uniform multiplicative jitter: each batch time is scaled by a
    /// factor drawn from `[1, 1 + jitter_frac)`.
    pub jitter_frac: f64,
    /// Extra fixed seconds on every KV transfer (RPC launch, pinning).
    pub transfer_overhead: f64,
    /// Deterministic multiplicative scale on every batch time. A
    /// simulator *calibrated against* a real system (as the paper's was,
    /// by profiling) carries the system's mean slowdown here and leaves
    /// only variance unmodeled.
    pub time_scale: f64,
}

impl FidelityConfig {
    /// The planner's idealized simulator: the cost model verbatim.
    #[must_use]
    pub fn ideal() -> Self {
        FidelityConfig {
            scheduler_overhead: 0.0,
            jitter_frac: 0.0,
            transfer_overhead: 0.0,
            time_scale: 1.0,
        }
    }

    /// The "real system" proxy: residual imperfections a calibrated cost
    /// model still misses — scheduling hiccups, kernel-time variance, and
    /// transfer launch latency.
    #[must_use]
    pub fn detailed() -> Self {
        FidelityConfig {
            scheduler_overhead: 0.5e-3,
            jitter_frac: 0.05,
            transfer_overhead: 1.0e-3,
            time_scale: 1.0,
        }
    }

    /// A planner simulator *calibrated* to the detailed system: carries
    /// the mean of [`FidelityConfig::detailed`]'s perturbations
    /// deterministically (mean jitter = `1 + 0.05/2`), leaving only the
    /// variance unmodeled — the situation the paper's profiled simulator
    /// is in for Table 2.
    #[must_use]
    pub fn calibrated() -> Self {
        FidelityConfig {
            scheduler_overhead: 0.5e-3,
            jitter_frac: 0.0,
            transfer_overhead: 1.0e-3,
            time_scale: 1.025,
        }
    }

    /// Applies overhead and jitter to a batch execution time.
    #[must_use]
    pub fn perturb_step(&self, time: f64, rng: &mut SimRng) -> f64 {
        let jitter = if self.jitter_frac > 0.0 {
            1.0 + self.jitter_frac * rng.uniform()
        } else {
            1.0
        };
        time * self.time_scale * jitter + self.scheduler_overhead
    }

    /// Applies launch overhead to a KV transfer time.
    #[must_use]
    pub fn perturb_transfer(&self, time: f64) -> f64 {
        time + self.transfer_overhead
    }
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_identity() {
        let f = FidelityConfig::ideal();
        let mut rng = SimRng::seed(1);
        assert_eq!(f.perturb_step(0.05, &mut rng), 0.05);
        assert_eq!(f.perturb_transfer(0.01), 0.01);
    }

    #[test]
    fn detailed_inflates_times() {
        let f = FidelityConfig::detailed();
        let mut rng = SimRng::seed(2);
        for _ in 0..100 {
            let t = f.perturb_step(0.05, &mut rng);
            assert!(t > 0.05);
            assert!(t < 0.05 * 1.09 + 0.002);
        }
        assert!(f.perturb_transfer(0.01) > 0.01);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let f = FidelityConfig::detailed();
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..50 {
            assert_eq!(f.perturb_step(0.1, &mut a), f.perturb_step(0.1, &mut b));
        }
    }
}
