//! Pipeline-parallel stage occupancy.
//!
//! An instance with `pp` stages can hold `pp` batches in flight. Batch `i`
//! finishes stage `s` at
//!
//! ```text
//! C(i, s) = max(C(i, s−1), C(i−1, s)) + T_i
//! ```
//!
//! where `T_i` is batch `i`'s per-stage time and `C(i, −1)` is the launch
//! time. The recurrence makes pipeline *bubbles* emerge naturally: when
//! consecutive batches have different execution times (the non-uniform
//! prompt lengths of §3.3), a slow batch stalls behind or starves the
//! stages ahead — exactly the deviation from the M/D/1 model the paper
//! describes, and the thing §4.3's length-balanced batching mitigates.

use distserve_simcore::SimTime;

/// Occupancy tracker for one instance's pipeline.
///
/// # Examples
///
/// ```
/// use distserve_engine::pipeline::Pipeline;
/// use distserve_simcore::SimTime;
///
/// let mut p = Pipeline::new(2);
/// // Two equal batches: the second enters stage 0 as soon as the first
/// // leaves it, and the pipeline overlaps their execution.
/// let a = p.commit(SimTime::ZERO, 1.0);
/// let b = p.commit(SimTime::ZERO, 1.0);
/// assert_eq!(a.done, SimTime::from_secs(2.0));
/// assert_eq!(b.done, SimTime::from_secs(3.0)); // Not 4.0: overlapped.
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// `C(i−1, s)` for the most recently committed batch.
    prev_done: Vec<SimTime>,
    /// Cumulative busy time of stage 0 (utilization accounting).
    busy: f64,
    committed: u64,
}

/// Result of committing one batch to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commit {
    /// When the batch actually started executing (stage 0 entry).
    pub start: SimTime,
    /// When stage 0 becomes free for the next batch.
    pub stage0_free: SimTime,
    /// When the batch exits the last stage.
    pub done: SimTime,
}

impl Pipeline {
    /// Creates an idle pipeline of `stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    #[must_use]
    pub fn new(stages: u32) -> Self {
        assert!(stages > 0, "pipeline needs at least one stage");
        Pipeline {
            prev_done: vec![SimTime::ZERO; stages as usize],
            busy: 0.0,
            committed: 0,
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.prev_done.len() as u32
    }

    /// Earliest time a batch readied at `ready` could start executing.
    #[must_use]
    pub fn earliest_start(&self, ready: SimTime) -> SimTime {
        ready.max(self.prev_done[0])
    }

    /// Whether stage 0 is free at `now` (a new batch could start).
    #[must_use]
    pub fn stage0_free_at(&self, now: SimTime) -> bool {
        self.prev_done[0] <= now
    }

    /// When the whole pipeline drains (last committed batch completes).
    #[must_use]
    pub fn drained_at(&self) -> SimTime {
        *self.prev_done.last().expect("at least one stage")
    }

    /// Commits a batch readied at `ready` with per-stage time
    /// `stage_time`, returning its schedule.
    ///
    /// # Panics
    ///
    /// Panics if `stage_time` is negative or non-finite.
    pub fn commit(&mut self, ready: SimTime, stage_time: f64) -> Commit {
        assert!(
            stage_time.is_finite() && stage_time >= 0.0,
            "invalid stage time {stage_time}"
        );
        let start = self.earliest_start(ready);
        let mut entry = start;
        for s in 0..self.prev_done.len() {
            // The batch may enter stage s only when it finished stage s−1
            // and the previous batch vacated stage s.
            let begin = entry.max(self.prev_done[s]);
            let done = begin.after(stage_time);
            self.prev_done[s] = done;
            entry = done;
        }
        self.busy += stage_time;
        self.committed += 1;
        Commit {
            start,
            stage0_free: self.prev_done[0],
            done: entry,
        }
    }

    /// Cumulative stage-0 busy seconds (for utilization reports).
    #[must_use]
    pub fn busy_secs(&self) -> f64 {
        self.busy
    }

    /// Batches committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn single_stage_serializes() {
        let mut p = Pipeline::new(1);
        let a = p.commit(t(0.0), 1.0);
        let b = p.commit(t(0.0), 1.0);
        assert_eq!(a.done, t(1.0));
        assert_eq!(b.start, t(1.0));
        assert_eq!(b.done, t(2.0));
    }

    #[test]
    fn deep_pipeline_overlaps() {
        let mut p = Pipeline::new(4);
        let mut last = Commit {
            start: t(0.0),
            stage0_free: t(0.0),
            done: t(0.0),
        };
        for _ in 0..8 {
            last = p.commit(t(0.0), 0.5);
        }
        // 8 batches through a 4-stage pipeline of 0.5 s stages:
        // total = fill (4 × 0.5) + 7 more slots of 0.5 = 5.5 s.
        assert_eq!(last.done, t(5.5));
    }

    #[test]
    fn throughput_is_one_per_stage_time() {
        let mut p = Pipeline::new(2);
        let mut dones = Vec::new();
        for _ in 0..10 {
            dones.push(p.commit(t(0.0), 1.0).done.as_secs());
        }
        for pair in dones.windows(2) {
            assert!((pair[1] - pair[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bubble_from_nonuniform_batches() {
        // A slow batch behind a fast one stalls in later stages; a fast
        // batch behind a slow one starves — both inflate completion
        // versus the uniform ideal.
        let mut p = Pipeline::new(2);
        p.commit(t(0.0), 1.0);
        let slow = p.commit(t(0.0), 3.0);
        // Enters stage 0 at 1.0 (when batch 1 vacates), stage 1 at 4.0,
        // exits at 7.0.
        assert_eq!(slow.done, t(7.0));
        let fast = p.commit(t(0.0), 1.0);
        // Stage 0 free at 4.0; stage 1 free at 7.0 → done 8.0 (a 2-second
        // bubble versus back-to-back fast batches).
        assert_eq!(fast.start, t(4.0));
        assert_eq!(fast.done, t(8.0));
    }

    #[test]
    fn idle_gap_respected() {
        let mut p = Pipeline::new(2);
        p.commit(t(0.0), 1.0);
        // Batch arrives long after the pipeline drained.
        let late = p.commit(t(10.0), 1.0);
        assert_eq!(late.start, t(10.0));
        assert_eq!(late.done, t(12.0));
    }

    #[test]
    fn stage0_free_query() {
        let mut p = Pipeline::new(2);
        assert!(p.stage0_free_at(t(0.0)));
        let c = p.commit(t(0.0), 2.0);
        assert!(!p.stage0_free_at(t(1.0)));
        assert!(p.stage0_free_at(c.stage0_free));
        assert_eq!(p.drained_at(), c.done);
    }

    #[test]
    fn busy_accounting() {
        let mut p = Pipeline::new(3);
        p.commit(t(0.0), 0.25);
        p.commit(t(0.0), 0.5);
        assert!((p.busy_secs() - 0.75).abs() < 1e-12);
        assert_eq!(p.committed(), 2);
    }
}
