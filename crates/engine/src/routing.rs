//! Router integration for the serving simulator.
//!
//! In routed mode ([`crate::ServingSim::new_routed`]) every arrival —
//! and every fault-driven re-dispatch — is decided by the pure
//! `distserve_router::route` core instead of the built-in
//! shortest-queue heuristics. [`RouterCtl`] owns the persistent
//! [`RouterState`] (refreshed in place per consultation, so the hot
//! path allocates nothing) and the decision log. Replay mode swaps the
//! decision core for the recorded log: the simulator asks the same
//! questions in the same order and gets the same answers, which is what
//! makes a routed run reproducible byte-for-byte from its log.

use std::collections::VecDeque;

use distserve_router::{
    route, Decision, DecisionRecord, ReplicaSnapshot, RequestFeatures, RouterPolicy, RouterState,
};
use distserve_simcore::FastHashMap;

/// Where routing verdicts come from.
enum RouterMode {
    /// Consult the decision core against a fresh state snapshot.
    Live(Box<RouterState>),
    /// Pop pre-recorded decisions (with their original trace ids), per
    /// request in consultation order.
    Replay(FastHashMap<u64, VecDeque<(Decision, u64)>>),
}

/// The simulator's router attachment: decision source plus log.
pub(crate) struct RouterCtl {
    mode: RouterMode,
    /// Every verdict issued this run, in decision order. A request that
    /// queues appears once per consultation.
    pub(crate) log: Vec<DecisionRecord>,
}

impl RouterCtl {
    /// Live mode over `initial` replica snapshots (typically all idle;
    /// they are rewritten on every consultation).
    pub(crate) fn live(initial: Vec<ReplicaSnapshot>, policy: RouterPolicy, seed: u64) -> Self {
        RouterCtl {
            mode: RouterMode::Live(Box::new(RouterState::new(initial, policy, seed))),
            log: Vec::new(),
        }
    }

    /// Replay mode over a recorded decision log.
    pub(crate) fn replay(records: &[DecisionRecord]) -> Result<Self, String> {
        let mut per_request: FastHashMap<u64, VecDeque<(Decision, u64)>> = FastHashMap::default();
        for rec in records {
            per_request
                .entry(rec.request)
                .or_default()
                .push_back((rec.decision()?, rec.trace_id));
        }
        Ok(RouterCtl {
            mode: RouterMode::Replay(per_request),
            log: Vec::new(),
        })
    }

    /// Issues the verdict for `req` given the current fleet `snapshots`
    /// (ignored in replay mode) and appends it to the log.
    ///
    /// # Panics
    ///
    /// Panics in replay mode when the log holds no further decision for
    /// this request — the log does not match the run being replayed.
    pub(crate) fn consult<I>(&mut self, snapshots: I, req: &RequestFeatures) -> Decision
    where
        I: IntoIterator<Item = ReplicaSnapshot>,
    {
        let (decision, trace_id) = match &mut self.mode {
            RouterMode::Live(state) => {
                state.refresh(snapshots);
                let tid = distserve_telemetry::trace_id(state.seed(), req.id);
                (route(state, req), tid)
            }
            RouterMode::Replay(per_request) => per_request
                .get_mut(&req.id)
                .and_then(VecDeque::pop_front)
                .unwrap_or_else(|| {
                    panic!(
                        "replay log exhausted for request {}: log/run mismatch",
                        req.id
                    )
                }),
        };
        self.log.push(
            DecisionRecord::new(req.id, &decision)
                .with_trace_id(trace_id)
                .with_prefix(req.prefix_group, req.matched_tokens),
        );
        decision
    }
}
