//! Prefill batch formation (§4.3, "Reducing pipeline bubbles").
//!
//! The scheduler targets a per-batch token total close to the saturation
//! threshold `L_m`: requests shorter than `L_m` are batched together until
//! the budget is reached; requests at or beyond `L_m` are scheduled alone.
//! This balances execution time across pipeline batches (fewer bubbles)
//! without sacrificing GPU efficiency (§3.1: past `L_m`, batching only
//! delays co-scheduled requests).
//!
//! Two queue disciplines are provided. [`QueueDiscipline::Fcfs`] is what
//! DistServe ships (§4.3) and suffers the *convoy effect* the paper
//! acknowledges: one long prompt at the head blocks short ones behind it.
//! [`QueueDiscipline::Sjf`] (shortest-job-first, the job-level core of
//! the preemptive schedulers the paper cites as complementary, e.g.
//! FastServe \[41\]) reorders by prompt length and mitigates the convoy at
//! the cost of possible starvation of long prompts under overload.

use std::collections::VecDeque;

use distserve_telemetry::{metrics, TelemetrySink, TrackId};
use distserve_workload::RequestId;

/// Order in which queued prefill work is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum QueueDiscipline {
    /// First-come-first-served — DistServe's shipped policy (§4.3).
    #[default]
    Fcfs,
    /// Shortest-job-first by prompt length — convoy-effect mitigation.
    Sjf,
}

/// A queued prefill work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillItem {
    /// Which request.
    pub id: RequestId,
    /// Its prompt length, tokens.
    pub input_len: u32,
}

/// FCFS prefill queue with token-budget batch formation.
///
/// # Examples
///
/// ```
/// use distserve_engine::batching::{PrefillItem, PrefillQueue};
/// use distserve_workload::RequestId;
///
/// let mut q = PrefillQueue::new(512);
/// for (i, len) in [200u32, 200, 200].iter().enumerate() {
///     q.push(PrefillItem { id: RequestId(i as u64), input_len: *len });
/// }
/// // 200 + 200 fits the 512 budget; adding the third would exceed it.
/// let batch = q.form_batch(|_| true).unwrap();
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PrefillQueue {
    queue: VecDeque<PrefillItem>,
    token_budget: u32,
    max_batch: usize,
    discipline: QueueDiscipline,
}

impl PrefillQueue {
    /// Creates an FCFS queue with a token budget of `l_m` per batch and a
    /// default cap of 16 requests per batch.
    #[must_use]
    pub fn new(l_m: u32) -> Self {
        PrefillQueue {
            queue: VecDeque::new(),
            token_budget: l_m.max(1),
            max_batch: 16,
            discipline: QueueDiscipline::Fcfs,
        }
    }

    /// Overrides the per-batch request cap.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the queue discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Enqueues a request. Under SJF the queue stays sorted by prompt
    /// length (ties arrival-ordered, keeping the discipline fair among
    /// equals and deterministic).
    pub fn push(&mut self, item: PrefillItem) {
        match self.discipline {
            QueueDiscipline::Fcfs => self.queue.push_back(item),
            QueueDiscipline::Sjf => {
                let pos = self
                    .queue
                    .partition_point(|q| q.input_len <= item.input_len);
                self.queue.insert(pos, item);
            }
        }
    }

    /// Queue length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total queued tokens (load metric for shortest-queue dispatch).
    #[must_use]
    pub fn queued_tokens(&self) -> u64 {
        self.queue.iter().map(|i| u64::from(i.input_len)).sum()
    }

    /// Peeks at the head request without removing it (used by the
    /// chunked-prefill scheduler, which consumes requests incrementally).
    #[must_use]
    pub fn front(&self) -> Option<&PrefillItem> {
        self.queue.front()
    }

    /// Removes and returns the head request.
    pub fn pop_front(&mut self) -> Option<PrefillItem> {
        self.queue.pop_front()
    }

    /// Removes and returns every queued item in queue order. Used by
    /// fault recovery: when the owning instance dies, its queue must be
    /// re-dispatched to survivors wholesale.
    pub fn drain_all(&mut self) -> Vec<PrefillItem> {
        self.queue.drain(..).collect()
    }

    /// Publishes the queue's depth gauges — request count and queued
    /// tokens — for `instance` into `sink`. Call after any push or batch
    /// formation so the exported gauges track the latest state.
    pub fn emit_depth(&self, sink: &dyn TelemetrySink, instance: TrackId) {
        sink.gauge_set(metrics::PREFILL_QUEUE_DEPTH, instance, self.len() as f64);
        sink.gauge_set(
            metrics::PREFILL_QUEUE_TOKENS,
            instance,
            self.queued_tokens() as f64,
        );
    }

    /// Forms the next batch per the `L_m` policy. `admit` is consulted per
    /// request (typically a KV-capacity check); a rejected *head* request
    /// blocks the queue (FCFS — §4.3 notes the convoy effect this keeps).
    ///
    /// Returns `None` when no batch can be formed.
    pub fn form_batch(
        &mut self,
        mut admit: impl FnMut(&PrefillItem) -> bool,
    ) -> Option<Vec<PrefillItem>> {
        let head = *self.queue.front()?;
        if !admit(&head) {
            return None;
        }
        let mut batch = vec![self.queue.pop_front().expect("head exists")];
        let mut tokens = head.input_len;
        // A head at or past the budget runs alone.
        while tokens < self.token_budget && batch.len() < self.max_batch {
            let Some(next) = self.queue.front() else {
                break;
            };
            if tokens + next.input_len > self.token_budget {
                break;
            }
            if !admit(next) {
                break;
            }
            tokens += next.input_len;
            batch.push(self.queue.pop_front().expect("peeked"));
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64, len: u32) -> PrefillItem {
        PrefillItem {
            id: RequestId(id),
            input_len: len,
        }
    }

    #[test]
    fn long_head_runs_alone() {
        let mut q = PrefillQueue::new(512);
        q.push(item(0, 1024));
        q.push(item(1, 100));
        let batch = q.form_batch(|_| true).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, RequestId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn short_requests_pack_to_budget() {
        let mut q = PrefillQueue::new(512);
        for i in 0..6 {
            q.push(item(i, 128));
        }
        let batch = q.form_batch(|_| true).unwrap();
        assert_eq!(batch.len(), 4); // 4 × 128 = 512.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn budget_not_exceeded() {
        let mut q = PrefillQueue::new(512);
        q.push(item(0, 300));
        q.push(item(1, 300));
        let batch = q.form_batch(|_| true).unwrap();
        // 300 + 300 > 512: second stays queued.
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn fcfs_order_preserved() {
        let mut q = PrefillQueue::new(1000);
        for i in 0..5 {
            q.push(item(i, 100));
        }
        let batch = q.form_batch(|_| true).unwrap();
        let ids: Vec<u64> = batch.iter().map(|b| b.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rejected_head_blocks_queue() {
        let mut q = PrefillQueue::new(512);
        q.push(item(0, 400));
        q.push(item(1, 50));
        assert!(q.form_batch(|_| false).is_none());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rejected_follower_truncates_batch() {
        let mut q = PrefillQueue::new(512);
        q.push(item(0, 100));
        q.push(item(1, 100));
        let batch = q.form_batch(|i| i.id == RequestId(0)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn max_batch_cap() {
        let mut q = PrefillQueue::new(10_000).with_max_batch(3);
        for i in 0..10 {
            q.push(item(i, 10));
        }
        let batch = q.form_batch(|_| true).unwrap();
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn queued_tokens_metric() {
        let mut q = PrefillQueue::new(512);
        q.push(item(0, 100));
        q.push(item(1, 250));
        assert_eq!(q.queued_tokens(), 350);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut q = PrefillQueue::new(512);
        assert!(q.form_batch(|_| true).is_none());
    }

    #[test]
    fn sjf_reorders_by_length() {
        let mut q = PrefillQueue::new(512).with_discipline(QueueDiscipline::Sjf);
        q.push(item(0, 1500));
        q.push(item(1, 100));
        q.push(item(2, 300));
        q.push(item(3, 100));
        // Shortest first; equal lengths keep arrival order.
        let batch = q.form_batch(|_| true).unwrap();
        let ids: Vec<u64> = batch.iter().map(|b| b.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]); // 100 + 100 + 300 = 500 <= 512.
                                        // The convoy-causing long prompt runs last, alone.
        let batch = q.form_batch(|_| true).unwrap();
        assert_eq!(batch[0].id, RequestId(0));
    }

    #[test]
    fn fcfs_suffers_convoy_sjf_does_not() {
        // A long head blocks short requests under FCFS but not SJF.
        let mut fcfs = PrefillQueue::new(256);
        let mut sjf = PrefillQueue::new(256).with_discipline(QueueDiscipline::Sjf);
        for q in [&mut fcfs, &mut sjf] {
            q.push(item(0, 2000));
            q.push(item(1, 50));
        }
        assert_eq!(fcfs.form_batch(|_| true).unwrap()[0].id, RequestId(0));
        assert_eq!(sjf.form_batch(|_| true).unwrap()[0].id, RequestId(1));
    }
}
