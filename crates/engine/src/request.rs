//! Per-request lifecycle records and latency breakdown.
//!
//! §6.3 divides a request's life in DistServe into five stages: prefill
//! queuing, prefill execution, transmission, decoding queuing, and
//! decoding execution. [`RequestRecord`] captures the timestamps at every
//! boundary; [`StageBreakdown`] derives the five durations, and the TTFT /
//! TPOT metrics that SLO attainment is judged on come straight from the
//! same timestamps.

use serde::{Deserialize, Serialize};

use distserve_simcore::SimTime;
use distserve_workload::{Request, RequestId};

/// Completed-request timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identity.
    pub id: RequestId,
    /// Prompt length, tokens.
    pub input_len: u32,
    /// Output length, tokens (first token included).
    pub output_len: u32,
    /// Arrival at the controller.
    pub arrival: SimTime,
    /// Prefill execution began (batch containing the request launched).
    pub prefill_start: SimTime,
    /// First output token emitted (prefill finished) — defines TTFT.
    pub first_token: SimTime,
    /// KV cache fully arrived at the decoding instance. Equals
    /// `first_token` for colocated serving.
    pub transfer_done: SimTime,
    /// First decoding iteration containing the request launched.
    pub decode_start: SimTime,
    /// Last output token emitted.
    pub completion: SimTime,
    /// Pure wire time of the KV transfer, excluding the wait to be pulled
    /// (Figure 10b plots the CDF of this).
    pub transfer_active: f64,
}

impl RequestRecord {
    /// Time to first token: arrival → first token, queueing included.
    #[must_use]
    pub fn ttft(&self) -> f64 {
        self.first_token.since(self.arrival)
    }

    /// Time per output token: mean gap over the decoding phase
    /// (`output_len - 1` tokens after the first). Zero for single-token
    /// outputs, which trivially satisfy any TPOT SLO.
    #[must_use]
    pub fn tpot(&self) -> f64 {
        if self.output_len <= 1 {
            return 0.0;
        }
        self.completion.since(self.first_token) / f64::from(self.output_len - 1)
    }

    /// End-to-end latency: arrival → completion.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.completion.since(self.arrival)
    }

    /// The five-stage breakdown of Figure 10.
    #[must_use]
    pub fn breakdown(&self) -> StageBreakdown {
        StageBreakdown {
            prefill_queue: self.prefill_start.since(self.arrival),
            prefill_exec: self.first_token.since(self.prefill_start),
            transfer: self.transfer_done.since(self.first_token),
            decode_queue: self.decode_start.since(self.transfer_done),
            decode_exec: self.completion.since(self.decode_start),
        }
    }
}

/// Durations of the five lifecycle stages (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Waiting for prefill execution.
    pub prefill_queue: f64,
    /// Prefill execution.
    pub prefill_exec: f64,
    /// KV-cache transmission (including waiting to be pulled).
    pub transfer: f64,
    /// Waiting for the first decoding iteration.
    pub decode_queue: f64,
    /// Decoding execution.
    pub decode_exec: f64,
}

impl StageBreakdown {
    /// Sum of all stages — the request's total latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.prefill_queue
            + self.prefill_exec
            + self.transfer
            + self.decode_queue
            + self.decode_exec
    }

    /// Accumulates another request's breakdown (for Figure 10's
    /// aggregate proportions).
    pub fn accumulate(&mut self, other: &StageBreakdown) {
        self.prefill_queue += other.prefill_queue;
        self.prefill_exec += other.prefill_exec;
        self.transfer += other.transfer;
        self.decode_queue += other.decode_queue;
        self.decode_exec += other.decode_exec;
    }
}

/// Where a request currently is in its lifecycle (engine-internal).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestPhase {
    /// Waiting in a prefill (or colocated) queue.
    WaitingPrefill,
    /// Inside a running prefill batch.
    Prefilling,
    /// Prefill done; waiting for / undergoing KV transfer.
    Transferring,
    /// Active in a decoding instance.
    Decoding {
        /// Tokens generated so far (including the first).
        generated: u32,
    },
    /// All tokens emitted.
    Done,
}

/// Mutable per-request state tracked by the simulator.
#[derive(Debug, Clone)]
pub struct RequestState {
    /// The underlying trace request.
    pub request: Request,
    /// Current phase.
    pub phase: RequestPhase,
    /// Timestamps populated as the request advances.
    pub prefill_start: SimTime,
    /// Prefill completion (first token).
    pub first_token: SimTime,
    /// Transfer completion.
    pub transfer_done: SimTime,
    /// First decoding iteration launch.
    pub decode_start: SimTime,
    /// Final token emission.
    pub completion: SimTime,
    /// Pure wire time of the KV transfer.
    pub transfer_active: f64,
    /// Retries charged against the request's budget (fault recovery).
    pub retries: u32,
    /// Tokens already delivered before a decode-side failure forced a
    /// re-prefill. Zero for fresh requests. Delivered tokens are never
    /// re-emitted: decoding resumes at `resume_generated + 1`.
    pub resume_generated: u32,
    /// KV-transfer attempts for the current migration (backoff ladder).
    pub transfer_attempt: u32,
    /// Prompt tokens a prefix cache already holds for this request
    /// (analytic hit model, drawn at arrival): they skip prefill compute
    /// but still occupy KV memory, and the cached radix nodes outlive
    /// the sequence so fault-driven recomputations keep the discount.
    pub cached_tokens: u32,
}

impl RequestState {
    /// Initializes state for a newly arrived request.
    #[must_use]
    pub fn new(request: Request) -> Self {
        let t = request.arrival;
        RequestState {
            request,
            phase: RequestPhase::WaitingPrefill,
            prefill_start: t,
            first_token: t,
            transfer_done: t,
            decode_start: t,
            completion: t,
            transfer_active: 0.0,
            retries: 0,
            resume_generated: 0,
            transfer_attempt: 0,
            cached_tokens: 0,
        }
    }

    /// Prompt tokens the next prefill pass must process: the original
    /// input plus any already-delivered output being recomputed after a
    /// decode-side KV loss.
    #[must_use]
    pub fn prefill_len(&self) -> u32 {
        self.request.input_len + self.resume_generated
    }

    /// Prompt tokens the next prefill pass must actually *compute*:
    /// [`RequestState::prefill_len`] minus the prefix-cached tokens. KV
    /// allocation always uses the full length — cached blocks are shared,
    /// not absent.
    #[must_use]
    pub fn billed_prefill_len(&self) -> u32 {
        self.prefill_len()
            - self
                .cached_tokens
                .min(self.request.input_len.saturating_sub(1))
    }

    /// Freezes the state into an immutable record.
    ///
    /// # Panics
    ///
    /// Panics if the request has not completed — records of in-flight
    /// requests would silently corrupt attainment statistics.
    #[must_use]
    pub fn into_record(self) -> RequestRecord {
        assert!(
            matches!(self.phase, RequestPhase::Done),
            "request {} not complete",
            self.request.id
        );
        RequestRecord {
            id: self.request.id,
            input_len: self.request.input_len,
            output_len: self.request.output_len,
            arrival: self.request.arrival,
            prefill_start: self.prefill_start,
            first_token: self.first_token,
            transfer_done: self.transfer_done,
            decode_start: self.decode_start,
            completion: self.completion,
            transfer_active: self.transfer_active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: RequestId(1),
            input_len: 512,
            output_len: 65,
            arrival: SimTime::from_secs(10.0),
            prefill_start: SimTime::from_secs(10.1),
            first_token: SimTime::from_secs(10.2),
            transfer_done: SimTime::from_secs(10.25),
            decode_start: SimTime::from_secs(10.3),
            completion: SimTime::from_secs(11.48),
            transfer_active: 0.04,
        }
    }

    #[test]
    fn ttft_tpot() {
        let r = record();
        assert!((r.ttft() - 0.2).abs() < 1e-12);
        // 64 decoding tokens over 1.28 s → 20 ms TPOT.
        assert!((r.tpot() - 0.02).abs() < 1e-12);
        assert!((r.total_latency() - 1.48).abs() < 1e-12);
    }

    #[test]
    fn single_token_tpot_zero() {
        let mut r = record();
        r.output_len = 1;
        assert_eq!(r.tpot(), 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let r = record();
        let b = r.breakdown();
        assert!((b.total() - r.total_latency()).abs() < 1e-12);
        assert!((b.prefill_queue - 0.1).abs() < 1e-12);
        assert!((b.transfer - 0.05).abs() < 1e-12);
    }

    #[test]
    fn breakdown_accumulate() {
        let r = record();
        let mut acc = StageBreakdown::default();
        acc.accumulate(&r.breakdown());
        acc.accumulate(&r.breakdown());
        assert!((acc.total() - 2.0 * r.total_latency()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn incomplete_request_cannot_freeze() {
        let req = Request {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 10,
            output_len: 10,
            tenant: 0,
        };
        let state = RequestState::new(req);
        let _ = state.into_record();
    }

    #[test]
    fn state_transitions_to_record() {
        let req = Request {
            id: RequestId(0),
            arrival: SimTime::from_secs(1.0),
            input_len: 10,
            output_len: 2,
            tenant: 0,
        };
        let mut state = RequestState::new(req);
        state.phase = RequestPhase::Done;
        state.first_token = SimTime::from_secs(1.5);
        state.completion = SimTime::from_secs(1.6);
        let rec = state.into_record();
        assert!((rec.ttft() - 0.5).abs() < 1e-12);
        assert!((rec.tpot() - 0.1).abs() < 1e-12);
    }
}
