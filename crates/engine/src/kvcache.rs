//! Paged KV-cache block manager (PagedAttention-style accounting).
//!
//! vLLM's PagedAttention \[27\] allocates KV cache in fixed-size blocks of
//! token positions, eliminating external fragmentation. The engines here
//! don't hold real tensors, but they account for memory exactly the same
//! way: a request of `n` tokens consumes `ceil(n / block_size)` blocks of
//! the instance's pool, and admission control asks this manager before
//! scheduling. The difference between requested tokens and occupied block
//! space is the *internal* fragmentation PagedAttention still pays.

use std::collections::HashMap;

use distserve_workload::RequestId;

/// Errors from the block manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Not enough free blocks to satisfy an allocation.
    OutOfBlocks {
        /// Blocks requested.
        requested: u64,
        /// Blocks free.
        free: u64,
    },
    /// The request already holds an allocation.
    AlreadyAllocated(RequestId),
    /// The request holds no allocation.
    NotAllocated(RequestId),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfBlocks { requested, free } => {
                write!(f, "requested {requested} blocks, {free} free")
            }
            KvError::AlreadyAllocated(id) => write!(f, "{id} already allocated"),
            KvError::NotAllocated(id) => write!(f, "{id} not allocated"),
        }
    }
}

impl std::error::Error for KvError {}

/// Block-granular KV pool for one instance.
///
/// # Examples
///
/// ```
/// use distserve_engine::KvBlockManager;
/// use distserve_workload::RequestId;
///
/// let mut kv = KvBlockManager::new(100, 16);
/// // 130 tokens round up to 9 blocks.
/// kv.alloc(RequestId(0), 130).unwrap();
/// assert_eq!(kv.blocks_in_use(), 9);
/// kv.free(RequestId(0)).unwrap();
/// assert_eq!(kv.blocks_in_use(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct KvBlockManager {
    total_blocks: u64,
    block_size: u32,
    allocations: HashMap<RequestId, u64>,
    in_use: u64,
}

impl KvBlockManager {
    /// Creates a pool of `total_blocks` blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(total_blocks: u64, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        KvBlockManager {
            total_blocks,
            block_size,
            allocations: HashMap::new(),
            in_use: 0,
        }
    }

    /// Sizes a pool from a byte budget: `pool_bytes` of KV memory with
    /// `bytes_per_token` per token position.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_token` or `block_size` is zero.
    #[must_use]
    pub fn from_bytes(pool_bytes: u64, bytes_per_token: u64, block_size: u32) -> Self {
        assert!(bytes_per_token > 0, "bytes per token must be positive");
        let block_bytes = bytes_per_token * u64::from(block_size);
        KvBlockManager::new(pool_bytes / block_bytes, block_size)
    }

    /// Blocks needed for `tokens` token positions.
    #[must_use]
    pub fn blocks_for(&self, tokens: u32) -> u64 {
        u64::from(tokens).div_ceil(u64::from(self.block_size))
    }

    /// Whether an allocation of `tokens` would succeed right now.
    #[must_use]
    pub fn fits(&self, tokens: u32) -> bool {
        self.blocks_for(tokens) <= self.free_blocks()
    }

    /// Allocates blocks for a request spanning `tokens` positions.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfBlocks`] when the pool is exhausted,
    /// [`KvError::AlreadyAllocated`] on double allocation.
    pub fn alloc(&mut self, id: RequestId, tokens: u32) -> Result<(), KvError> {
        if self.allocations.contains_key(&id) {
            return Err(KvError::AlreadyAllocated(id));
        }
        let need = self.blocks_for(tokens);
        let free = self.free_blocks();
        if need > free {
            return Err(KvError::OutOfBlocks {
                requested: need,
                free,
            });
        }
        self.allocations.insert(id, need);
        self.in_use += need;
        Ok(())
    }

    /// Frees a request's blocks, returning how many were released.
    ///
    /// # Errors
    ///
    /// [`KvError::NotAllocated`] if the request holds nothing.
    pub fn free(&mut self, id: RequestId) -> Result<u64, KvError> {
        let blocks = self
            .allocations
            .remove(&id)
            .ok_or(KvError::NotAllocated(id))?;
        debug_assert!(self.in_use >= blocks, "accounting underflow");
        self.in_use -= blocks;
        Ok(blocks)
    }

    /// Whether the request currently holds blocks.
    #[must_use]
    pub fn holds(&self, id: RequestId) -> bool {
        self.allocations.contains_key(&id)
    }

    /// Total blocks in the pool.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Blocks currently allocated.
    #[must_use]
    pub fn blocks_in_use(&self) -> u64 {
        self.in_use
    }

    /// Blocks currently free.
    #[must_use]
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.in_use
    }

    /// Token capacity of the whole pool.
    #[must_use]
    pub fn token_capacity(&self) -> u64 {
        self.total_blocks * u64::from(self.block_size)
    }

    /// Pool utilization in blocks, `0.0..=1.0`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            return 1.0;
        }
        self.in_use as f64 / self.total_blocks as f64
    }

    /// Number of live allocations.
    #[must_use]
    pub fn num_allocations(&self) -> usize {
        self.allocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> RequestId {
        RequestId(n)
    }

    #[test]
    fn rounding_up_to_blocks() {
        let kv = KvBlockManager::new(10, 16);
        assert_eq!(kv.blocks_for(1), 1);
        assert_eq!(kv.blocks_for(16), 1);
        assert_eq!(kv.blocks_for(17), 2);
        assert_eq!(kv.blocks_for(0), 0);
    }

    #[test]
    fn from_bytes_sizing() {
        // 1 GiB pool, 1 MiB per token, 16-token blocks → 64 blocks.
        let kv = KvBlockManager::from_bytes(1 << 30, 1 << 20, 16);
        assert_eq!(kv.total_blocks(), 64);
        assert_eq!(kv.token_capacity(), 1024);
    }

    #[test]
    fn alloc_free_cycle() {
        let mut kv = KvBlockManager::new(8, 16);
        kv.alloc(id(1), 100).unwrap(); // 7 blocks.
        assert_eq!(kv.blocks_in_use(), 7);
        assert!(kv.holds(id(1)));
        assert!(!kv.fits(32));
        assert!(kv.fits(16));
        assert_eq!(kv.free(id(1)).unwrap(), 7);
        assert_eq!(kv.blocks_in_use(), 0);
        assert!(!kv.holds(id(1)));
    }

    #[test]
    fn exhaustion_and_double_alloc_rejected() {
        let mut kv = KvBlockManager::new(4, 16);
        kv.alloc(id(1), 64).unwrap();
        assert_eq!(
            kv.alloc(id(2), 1),
            Err(KvError::OutOfBlocks {
                requested: 1,
                free: 0
            })
        );
        assert_eq!(kv.alloc(id(1), 1), Err(KvError::AlreadyAllocated(id(1))));
        assert_eq!(kv.free(id(9)), Err(KvError::NotAllocated(id(9))));
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut kv = KvBlockManager::new(10, 16);
        assert_eq!(kv.utilization(), 0.0);
        kv.alloc(id(1), 80).unwrap(); // 5 blocks.
        assert!((kv.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(kv.num_allocations(), 1);
    }

    #[test]
    fn empty_pool_is_fully_utilized() {
        let kv = KvBlockManager::new(0, 16);
        assert_eq!(kv.utilization(), 1.0);
        assert!(!kv.fits(1));
        assert!(kv.fits(0));
    }
}
