//! Simulated LLM serving engines.
//!
//! This crate is the discrete-event stand-in for the paper's C++/CUDA
//! parallel execution engine plus its orchestration layer (§5). It
//! simulates, with the Appendix-A cost model supplying batch execution
//! times:
//!
//! * **Disaggregated serving** (DistServe): prefill instances with the
//!   §4.3 token-budget batching policy, decoding instances with
//!   continuous batching, pull-based KV-cache transfer between them, and
//!   shortest-queue / least-loaded dispatch.
//! * **Colocated serving** (the vLLM baseline): iteration-level
//!   scheduling that prioritizes prefill and batches decoding steps of
//!   running requests, with PagedAttention-style block-granular KV
//!   accounting; optional Sarathi-style chunked prefill.
//!
//! Modules:
//!
//! * [`fidelity`] — knobs separating the *idealized* planner simulator
//!   from the *detailed* "real system" proxy (Table 2's comparison).
//! * [`kvcache`] — the paged KV block manager.
//! * [`request`] — per-request lifecycle records with the five-stage
//!   latency breakdown of Figure 10.
//! * [`pipeline`] — pipeline-parallel stage occupancy (bubbles included).
//! * [`batching`] — the prefill batch former (`L_m` policy, §4.3).
//! * [`spec`] — instance and simulation configuration.
//! * [`sim`] — the event loop tying everything together.
//! * `routing` — the cluster router attachment: routed dispatch via
//!   the pure `distserve_router::route` core, decision logging, and
//!   deterministic replay.

pub mod batching;
pub mod fidelity;
pub mod kvcache;
pub mod pipeline;
pub mod request;
pub(crate) mod routing;
pub mod sim;
pub mod spec;

pub use fidelity::FidelityConfig;
pub use kvcache::KvBlockManager;
pub use request::{RequestRecord, StageBreakdown};
pub use sim::{ServingSim, SimOutcome};
pub use spec::{ColocatedPolicy, InstanceRole, InstanceSpec, SimConfig};
