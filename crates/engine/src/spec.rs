//! Instance and simulation configuration.

use serde::{Deserialize, Serialize};

use distserve_cluster::GpuId;
use distserve_models::{DType, GpuSpec, ModelArch, ParallelismConfig};

/// What work an instance performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceRole {
    /// Disaggregated prefill instance: prompt processing only, buffering
    /// KV until a decoding instance pulls it.
    Prefill,
    /// Disaggregated decoding instance: continuous batching over pulled
    /// requests.
    Decode,
    /// Colocated instance (the vLLM baseline): both phases on one set of
    /// GPUs with iteration-level scheduling.
    Colocated,
}

/// Scheduling policy for a colocated instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocatedPolicy {
    /// Maximum prompt tokens batched into one prefill step.
    pub prefill_token_budget: u32,
    /// `Some(chunk)`: SARATHI-style chunked prefill — each step carries at
    /// most `chunk` prompt tokens piggybacked onto the decoding batch.
    /// `None`: vLLM-style alternation with prefill prioritized.
    pub chunked_prefill: Option<u32>,
}

impl Default for ColocatedPolicy {
    fn default() -> Self {
        ColocatedPolicy {
            prefill_token_budget: 2048,
            chunked_prefill: None,
        }
    }
}

/// One serving instance: role, parallelism, and physical placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Role of the instance.
    pub role: InstanceRole,
    /// Tensor / pipeline parallelism.
    pub par: ParallelismConfig,
    /// GPU groups per pipeline stage (`stages.len() == par.pp`, each group
    /// `par.tp` GPUs on one node).
    pub stages: Vec<Vec<GpuId>>,
    /// Colocated scheduling policy (ignored for disaggregated roles).
    pub policy: ColocatedPolicy,
}

impl InstanceSpec {
    /// Creates a spec, checking the stage structure matches `par`.
    ///
    /// # Errors
    ///
    /// Returns a message if the stage/group shape disagrees with `par`.
    pub fn new(
        role: InstanceRole,
        par: ParallelismConfig,
        stages: Vec<Vec<GpuId>>,
    ) -> Result<Self, String> {
        if stages.len() != par.pp as usize {
            return Err(format!(
                "{} stages provided for pp={}",
                stages.len(),
                par.pp
            ));
        }
        for (i, group) in stages.iter().enumerate() {
            if group.len() != par.tp as usize {
                return Err(format!(
                    "stage {i} has {} GPUs, expected tp={}",
                    group.len(),
                    par.tp
                ));
            }
            if group.iter().any(|g| g.node != group[0].node) {
                return Err(format!("stage {i}'s tensor-parallel group spans nodes"));
            }
        }
        Ok(InstanceSpec {
            role,
            par,
            stages,
            policy: ColocatedPolicy::default(),
        })
    }

    /// Sets the colocated scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ColocatedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Total GPUs the instance occupies.
    #[must_use]
    pub fn num_gpus(&self) -> u32 {
        self.par.num_gpus()
    }

    /// Bytes of KV pool across the whole instance: per-GPU capacity minus
    /// the weight shard and a runtime margin, summed over GPUs.
    #[must_use]
    pub fn kv_pool_bytes(
        &self,
        arch: &ModelArch,
        gpu: &GpuSpec,
        dtype: DType,
        margin_frac: f64,
    ) -> u64 {
        let shard = self.par.shard_weight_bytes(arch, dtype);
        let margin = (gpu.mem_capacity as f64 * margin_frac) as u64;
        let per_gpu = gpu.mem_capacity.saturating_sub(shard + margin);
        per_gpu * u64::from(self.num_gpus())
    }
}

/// Analytic prefix-cache hit model for the token-granular simulator.
///
/// The engine never materializes token content, so cache behavior is
/// modeled statistically instead of structurally: each arriving request
/// draws a deterministic Bernoulli hit with probability `hit_prob`
/// (seeded per request id), and on a hit a `matched_frac` share of its
/// prompt — block-aligned, capped at prompt − 1 so the last token's
/// logits are always computed — skips prefill compute on whichever path
/// serves it (split, colocated, or chunked). KV allocation is *not*
/// discounted: shared blocks still occupy pool memory, exactly as
/// refcounted `distserve_prefix` sharing keeps blocks resident.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrefixHitModel {
    /// Probability an arriving prompt finds a cached prefix.
    pub hit_prob: f64,
    /// Fraction of the prompt matched when a hit occurs.
    pub matched_frac: f64,
}

impl Default for PrefixHitModel {
    /// Cold cache: no hits, nothing matched.
    fn default() -> Self {
        PrefixHitModel {
            hit_prob: 0.0,
            matched_frac: 0.0,
        }
    }
}

impl PrefixHitModel {
    /// Whether the model can ever produce a hit.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.hit_prob > 0.0 && self.matched_frac > 0.0
    }
}

/// Global simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Model being served.
    pub arch: ModelArch,
    /// Weight and KV precision.
    pub dtype: DType,
    /// Fidelity perturbations (ideal for planning, detailed for Table 2).
    pub fidelity: crate::fidelity::FidelityConfig,
    /// PagedAttention block size, tokens.
    pub block_size: u32,
    /// Fraction of GPU memory reserved for activations and runtime.
    pub mem_margin: f64,
    /// Maximum requests per decoding iteration.
    pub max_decode_batch: usize,
    /// Prefill saturation threshold `L_m`, tokens (§3.1): the batching
    /// policy packs prefill batches up to this total.
    pub l_m: u32,
    /// Queue discipline for prefill work (FCFS per §4.3, or SJF to
    /// mitigate the convoy effect the paper discusses).
    pub prefill_discipline: crate::batching::QueueDiscipline,
    /// Admission control: maximum requests queued at the dispatch target
    /// before an arrival is rejected outright (`None` = admit all).
    /// Rejected requests still surface in telemetry and count against
    /// SLO attainment.
    pub admission_cap: Option<usize>,
    /// RNG seed for jitter and tie-breaking randomness.
    pub seed: u64,
    /// Analytic prefix-cache hit model (`default` = cold cache, so
    /// configs serialized before prefix caching existed still parse).
    #[serde(default)]
    pub prefix: PrefixHitModel,
}

impl SimConfig {
    /// Reasonable defaults for `arch` at fp16.
    #[must_use]
    pub fn new(arch: ModelArch) -> Self {
        SimConfig {
            arch,
            dtype: DType::F16,
            fidelity: crate::fidelity::FidelityConfig::ideal(),
            block_size: 16,
            mem_margin: 0.10,
            max_decode_batch: 256,
            l_m: 512,
            prefill_discipline: crate::batching::QueueDiscipline::Fcfs,
            admission_cap: None,
            seed: 0,
            prefix: PrefixHitModel::default(),
        }
    }

    /// Caps the per-instance queue depth beyond which arrivals are
    /// rejected.
    #[must_use]
    pub fn with_admission_cap(mut self, cap: usize) -> Self {
        self.admission_cap = Some(cap);
        self
    }

    /// Switches the prefill queues to shortest-job-first.
    #[must_use]
    pub fn with_sjf_prefill(mut self) -> Self {
        self.prefill_discipline = crate::batching::QueueDiscipline::Sjf;
        self
    }

    /// Sets the prefill saturation threshold `L_m`.
    #[must_use]
    pub fn with_l_m(mut self, l_m: u32) -> Self {
        self.l_m = l_m.max(1);
        self
    }

    /// Switches on detailed fidelity.
    #[must_use]
    pub fn detailed(mut self) -> Self {
        self.fidelity = crate::fidelity::FidelityConfig::detailed();
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the analytic prefix-cache hit model (probabilities are
    /// clamped to `[0, 1]`).
    #[must_use]
    pub fn with_prefix_model(mut self, hit_prob: f64, matched_frac: f64) -> Self {
        self.prefix = PrefixHitModel {
            hit_prob: hit_prob.clamp(0.0, 1.0),
            matched_frac: matched_frac.clamp(0.0, 1.0),
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distserve_cluster::Cluster;
    use distserve_models::OptModel;

    #[test]
    fn spec_shape_validation() {
        let c = Cluster::paper_testbed();
        let par = ParallelismConfig::new(2, 2);
        let good = InstanceSpec::new(
            InstanceRole::Prefill,
            par,
            vec![
                vec![c.gpu(0, 0), c.gpu(0, 1)],
                vec![c.gpu(1, 0), c.gpu(1, 1)],
            ],
        );
        assert!(good.is_ok());
        // Wrong stage count.
        assert!(InstanceSpec::new(
            InstanceRole::Prefill,
            par,
            vec![vec![c.gpu(0, 0), c.gpu(0, 1)]],
        )
        .is_err());
        // Wrong group size.
        assert!(InstanceSpec::new(
            InstanceRole::Prefill,
            par,
            vec![vec![c.gpu(0, 0)], vec![c.gpu(1, 0)]],
        )
        .is_err());
        // Tensor-parallel group spanning nodes.
        assert!(InstanceSpec::new(
            InstanceRole::Prefill,
            par,
            vec![
                vec![c.gpu(0, 0), c.gpu(1, 1)],
                vec![c.gpu(2, 0), c.gpu(2, 1)],
            ],
        )
        .is_err());
    }

    #[test]
    fn kv_pool_scales_with_gpus() {
        let c = Cluster::paper_testbed();
        let arch = OptModel::Opt13B.arch();
        let one = InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![c.gpu(0, 0)]],
        )
        .unwrap();
        let two = InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::new(2, 1),
            vec![vec![c.gpu(0, 1), c.gpu(0, 2)]],
        )
        .unwrap();
        let p1 = one.kv_pool_bytes(&arch, c.gpu_spec(), DType::F16, 0.1);
        let p2 = two.kv_pool_bytes(&arch, c.gpu_spec(), DType::F16, 0.1);
        // Two GPUs hold the same weights but twice the capacity: the pool
        // more than doubles.
        assert!(p2 > 2 * p1, "p1 {p1}, p2 {p2}");
        // A 13B model on one A100 leaves roughly 80·0.9 − 26 ≈ 46 GB.
        let gb = p1 as f64 / 1e9;
        assert!((35.0..55.0).contains(&gb), "pool {gb} GB");
    }

    #[test]
    fn oversized_shard_gives_zero_pool() {
        let c = Cluster::paper_testbed();
        let arch = OptModel::Opt175B.arch();
        let spec = InstanceSpec::new(
            InstanceRole::Decode,
            ParallelismConfig::SINGLE,
            vec![vec![c.gpu(0, 0)]],
        )
        .unwrap();
        assert_eq!(spec.kv_pool_bytes(&arch, c.gpu_spec(), DType::F16, 0.1), 0);
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::new(OptModel::Opt13B.arch())
            .detailed()
            .with_seed(7);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.fidelity.jitter_frac > 0.0);
        assert_eq!(cfg.block_size, 16);
    }
}
