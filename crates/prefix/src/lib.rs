//! Radix-tree prefix cache over token sequences.
//!
//! Production serving stacks treat prompt-prefix reuse as a first-class
//! scheduling input: vLLM's `--enable-prefix-caching` and SGLang's radix
//! attention both keep the KV of recently seen prompt prefixes resident
//! and prefill only the unmatched suffix. This crate rebuilds that layer
//! over [`tinyllm::PagedKv`]:
//!
//! * **Radix layout** — a trie whose edges are *whole KV blocks*
//!   (`block_size` tokens per node). Lookup walks the query's full-block
//!   chunks, hashing one chunk per level: O(matched tokens) total.
//! * **Refcounted copy-on-write sharing** — the cache takes its own
//!   reference on every block it indexes ([`PagedKv::retain_block`]);
//!   serving sequences fork over matched blocks
//!   ([`PagedKv::fork_prefix`]) and append into fresh blocks only.
//!   Nothing is ever copied, and a block is freed exactly when the last
//!   referent (cache or sequence) drops it.
//! * **Block-granularity invariant** — only whole blocks are shared.
//!   Matches are capped by callers so at least the prompt's final token
//!   is recomputed (its logits seed decoding), which also keeps every
//!   append landing in an exclusively owned block (asserted by the KV
//!   pool in debug builds).
//! * **LRU eviction over unpinned leaves** — interior nodes are live
//!   prefixes of their descendants and are never evicted; the
//!   least-recently-touched unpinned leaf goes first, and its parent
//!   becomes evictable in turn.
//! * **Bit-exactness** — a KV row is a pure function of the token prefix
//!   below it (batched rows compute independently), so prefilling only
//!   the suffix over cached blocks yields byte-identical logits and
//!   token streams to a cold run, on both compute tiers at any thread
//!   count. `tests/prefix_props.rs` (workspace root) proptests this
//!   end to end.
//!
//! [`PagedKv::retain_block`]: tinyllm::PagedKv::retain_block
//! [`PagedKv::fork_prefix`]: tinyllm::PagedKv::fork_prefix

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use distserve_telemetry::{metrics, NoopSink, TelemetrySink, TrackId};
use tinyllm::scheduler::PrefixReuse;
use tinyllm::PagedKv;

/// Sentinel: the root node owns no block.
const NO_BLOCK: usize = usize::MAX;
/// Arena index of the root node.
const ROOT: usize = 0;

/// One radix node: a whole KV block's worth of tokens, the physical
/// block holding their K/V, and children keyed by their token chunk.
#[derive(Debug)]
struct Node {
    /// The `block_size` tokens this edge covers (empty for the root).
    chunk: Box<[u32]>,
    /// Physical KV block id ([`NO_BLOCK`] for the root).
    block: usize,
    /// Children keyed by their full token chunk. Hashing a key is
    /// O(block_size), which is what keeps lookup O(matched tokens).
    children: HashMap<Box<[u32]>, usize>,
    parent: usize,
    /// Logical LRU timestamp (bumped on every match/insert touch).
    last_used: u64,
    /// Explicit pins; a pinned leaf is exempt from eviction.
    pins: u32,
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Default)]
pub struct PrefixMatch {
    /// Physical block ids of the longest cached prefix, in position
    /// order. Callers fork a sequence over (a prefix of) these.
    pub blocks: Vec<usize>,
    /// Tokens covered: `blocks.len() * block_size`.
    pub matched_tokens: usize,
}

/// Cumulative cache counters (monotone; snapshot with
/// [`PrefixCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that matched at least one block.
    pub hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Blocks evicted under capacity pressure.
    pub evictions: u64,
    /// Blocks adopted into the tree.
    pub inserted_blocks: u64,
    /// Sum of matched tokens over all lookups.
    pub matched_tokens: u64,
    /// Sum of query lengths over all lookups.
    pub lookup_tokens: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit (0 when no lookups yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of looked-up tokens served from cache.
    #[must_use]
    pub fn token_hit_rate(&self) -> f64 {
        if self.lookup_tokens == 0 {
            0.0
        } else {
            self.matched_tokens as f64 / self.lookup_tokens as f64
        }
    }
}

/// Radix-tree prefix cache with LRU eviction (see the crate docs).
pub struct PrefixCache {
    block_size: usize,
    capacity_blocks: usize,
    nodes: Vec<Node>,
    /// Recycled arena slots.
    free_nodes: Vec<usize>,
    /// `(last_used, node)` for every evictable node: an unpinned,
    /// non-root leaf. Kept in lockstep with the arena so eviction is
    /// O(log n), not a scan.
    lru: BTreeSet<(u64, usize)>,
    /// Blocks the cache currently holds a reference on.
    owned: usize,
    clock: u64,
    stats: CacheStats,
    sink: Arc<dyn TelemetrySink>,
    track: TrackId,
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixCache")
            .field("block_size", &self.block_size)
            .field("capacity_blocks", &self.capacity_blocks)
            .field("owned", &self.owned)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PrefixCache {
    /// Creates a cache sharing blocks of `block_size` tokens, holding at
    /// most `capacity_blocks` block references.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(block_size: usize, capacity_blocks: usize) -> Self {
        assert!(block_size > 0 && capacity_blocks > 0);
        PrefixCache {
            block_size,
            capacity_blocks,
            nodes: vec![Node {
                chunk: Box::new([]),
                block: NO_BLOCK,
                children: HashMap::new(),
                parent: ROOT,
                last_used: 0,
                pins: 0,
            }],
            free_nodes: Vec::new(),
            lru: BTreeSet::new(),
            owned: 0,
            clock: 0,
            stats: CacheStats::default(),
            sink: Arc::new(NoopSink),
            track: 0,
        }
    }

    /// Routes `prefix_*` counters and the shared-block gauge into
    /// `sink`, labelled with `track`.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>, track: TrackId) -> Self {
        self.sink = sink;
        self.track = track;
        self
    }

    /// Tokens per shared block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks the cache currently pins.
    #[must_use]
    pub fn owned_blocks(&self) -> usize {
        self.owned
    }

    /// Snapshot of the cumulative counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Whether `node` belongs in the LRU set (evictable).
    fn evictable(&self, node: usize) -> bool {
        node != ROOT && self.nodes[node].children.is_empty() && self.nodes[node].pins == 0
    }

    /// Bumps `node`'s LRU stamp, repositioning it in the eviction order
    /// if it is currently evictable.
    fn touch(&mut self, node: usize) {
        let now = self.tick();
        if self.evictable(node) {
            self.lru.remove(&(self.nodes[node].last_used, node));
            self.lru.insert((now, node));
        }
        self.nodes[node].last_used = now;
    }

    /// The longest cached prefix of `tokens`, touching every node on the
    /// matched path. O(matched tokens) plus O(log n) per level for the
    /// LRU bookkeeping.
    pub fn match_prefix(&mut self, tokens: &[u32]) -> PrefixMatch {
        let _prof = distserve_prof::scope("prefix_match");
        let bs = self.block_size;
        let mut cur = ROOT;
        let mut blocks = Vec::new();
        for chunk in tokens.chunks_exact(bs) {
            match self.nodes[cur].children.get(chunk).copied() {
                Some(child) => {
                    self.touch(child);
                    blocks.push(self.nodes[child].block);
                    cur = child;
                }
                None => break,
            }
        }
        let matched_tokens = blocks.len() * bs;
        self.stats.lookup_tokens += tokens.len() as u64;
        self.stats.matched_tokens += matched_tokens as u64;
        if blocks.is_empty() {
            self.stats.misses += 1;
            self.sink.counter_add(metrics::PREFIX_MISSES, self.track, 1);
        } else {
            self.stats.hits += 1;
            self.sink.counter_add(metrics::PREFIX_HITS, self.track, 1);
        }
        PrefixMatch {
            blocks,
            matched_tokens,
        }
    }

    /// Indexes the whole-block prefix of `tokens`, whose K/V live in
    /// `blocks` (`tokens.len()` is truncated to whole blocks; `blocks`
    /// must cover them). Every newly adopted block gets a cache-owned
    /// reference; already-present prefixes are just touched (the caller
    /// keeps its own copy until its sequence releases). Evicts LRU
    /// leaves to stay within capacity; stops early if eviction cannot
    /// make room. Returns the number of blocks adopted.
    pub fn insert(&mut self, tokens: &[u32], blocks: &[usize], kv: &mut PagedKv) -> usize {
        let bs = self.block_size;
        debug_assert_eq!(bs, kv.block_size());
        let full = (tokens.len() / bs).min(blocks.len());
        let mut cur = ROOT;
        let mut adopted = 0;
        for (i, chunk) in tokens.chunks_exact(bs).take(full).enumerate() {
            if let Some(&child) = self.nodes[cur].children.get(chunk) {
                self.touch(child);
                cur = child;
                continue;
            }
            // Make room, but never evict the node we are extending: pin
            // it across the eviction (ancestors have children and are
            // structurally safe).
            if self.evictable(cur) {
                self.lru.remove(&(self.nodes[cur].last_used, cur));
            }
            self.nodes[cur].pins += 1;
            let mut room = true;
            while self.owned >= self.capacity_blocks {
                if !self.evict_one(kv) {
                    room = false;
                    break;
                }
            }
            self.unpin_node(cur);
            if !room {
                break;
            }
            let now = self.tick();
            kv.retain_block(blocks[i]);
            let node = Node {
                chunk: chunk.into(),
                block: blocks[i],
                children: HashMap::new(),
                parent: cur,
                last_used: now,
                pins: 0,
            };
            let idx = if let Some(idx) = self.free_nodes.pop() {
                self.nodes[idx] = node;
                idx
            } else {
                self.nodes.push(node);
                self.nodes.len() - 1
            };
            // The parent stops being a leaf once it gains a child.
            if self.evictable(cur) {
                self.lru.remove(&(self.nodes[cur].last_used, cur));
            }
            self.nodes[cur].children.insert(chunk.into(), idx);
            self.lru.insert((now, idx));
            self.owned += 1;
            adopted += 1;
            self.stats.inserted_blocks += 1;
            cur = idx;
        }
        self.sink
            .gauge_set(metrics::PREFIX_BLOCKS_SHARED, self.track, self.owned as f64);
        adopted
    }

    fn unpin_node(&mut self, node: usize) {
        self.nodes[node].pins -= 1;
        if self.evictable(node) {
            self.lru.insert((self.nodes[node].last_used, node));
        }
    }

    /// Pins the deepest cached node covering `tokens` (whole blocks),
    /// exempting its whole path from eviction — interior nodes are never
    /// evicted while they have descendants. Returns the pinned depth in
    /// blocks (0 = nothing matched, nothing pinned).
    pub fn pin_prefix(&mut self, tokens: &[u32]) -> usize {
        let (node, depth) = self.walk(tokens);
        if depth > 0 {
            if self.evictable(node) {
                self.lru.remove(&(self.nodes[node].last_used, node));
            }
            self.nodes[node].pins += 1;
        }
        depth
    }

    /// Releases one pin taken by [`pin_prefix`] on the same token
    /// prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is not cached to the pinned depth or was
    /// never pinned.
    ///
    /// [`pin_prefix`]: PrefixCache::pin_prefix
    pub fn unpin_prefix(&mut self, tokens: &[u32]) {
        let (node, depth) = self.walk(tokens);
        assert!(depth > 0, "unpin of an uncached prefix");
        assert!(self.nodes[node].pins > 0, "unpin without matching pin");
        self.unpin_node(node);
    }

    /// Walks the whole-block chunks of `tokens`; returns the deepest
    /// node reached and its depth in blocks.
    fn walk(&self, tokens: &[u32]) -> (usize, usize) {
        let mut cur = ROOT;
        let mut depth = 0;
        for chunk in tokens.chunks_exact(self.block_size) {
            match self.nodes[cur].children.get(chunk).copied() {
                Some(child) => {
                    cur = child;
                    depth += 1;
                }
                None => break,
            }
        }
        (cur, depth)
    }

    /// Evicts the least-recently-used unpinned leaf, releasing its block
    /// reference. Returns false when nothing is evictable.
    pub fn evict_one(&mut self, kv: &mut PagedKv) -> bool {
        let Some(&(stamp, node)) = self.lru.iter().next() else {
            return false;
        };
        self.lru.remove(&(stamp, node));
        let parent = self.nodes[node].parent;
        let chunk = std::mem::take(&mut self.nodes[node].chunk);
        self.nodes[parent].children.remove(&chunk);
        kv.release_block(self.nodes[node].block);
        self.nodes[node].block = NO_BLOCK;
        self.nodes[node].children = HashMap::new();
        self.free_nodes.push(node);
        self.owned -= 1;
        self.stats.evictions += 1;
        // The parent may have just become a leaf.
        if self.evictable(parent) {
            self.lru.insert((self.nodes[parent].last_used, parent));
        }
        self.sink
            .counter_add(metrics::PREFIX_EVICTIONS, self.track, 1);
        self.sink
            .gauge_set(metrics::PREFIX_BLOCKS_SHARED, self.track, self.owned as f64);
        true
    }

    /// Releases every cached block reference and resets the tree. After
    /// all sequences are also released, `kv.free_blocks() ==
    /// kv.total_blocks()` — the leak proptest's closing move.
    pub fn clear(&mut self, kv: &mut PagedKv) {
        for node in &self.nodes {
            if node.block != NO_BLOCK {
                kv.release_block(node.block);
            }
        }
        let root = Node {
            chunk: Box::new([]),
            block: NO_BLOCK,
            children: HashMap::new(),
            parent: ROOT,
            last_used: 0,
            pins: 0,
        };
        self.nodes = vec![root];
        self.free_nodes.clear();
        self.lru.clear();
        self.owned = 0;
        self.sink
            .gauge_set(metrics::PREFIX_BLOCKS_SHARED, self.track, 0.0);
    }
}

impl PrefixReuse for PrefixCache {
    fn match_blocks(&mut self, tokens: &[u32]) -> Vec<usize> {
        self.match_prefix(tokens).blocks
    }

    fn offer(&mut self, tokens: &[u32], blocks: &[usize], kv: &mut PagedKv) {
        self.insert(tokens, blocks, kv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pool matching the cache under test: 1 layer, hidden 2, block
    /// size 4.
    fn kv(blocks: usize) -> PagedKv {
        PagedKv::new(1, 2, 4, blocks)
    }

    /// Prefills `tokens` for `seq` (dummy values) and returns its full
    /// blocks.
    fn fill(kv: &mut PagedKv, seq: u64, tokens: &[u32]) -> Vec<usize> {
        kv.register(seq);
        for (pos, &t) in tokens.iter().enumerate() {
            kv.append(seq, 0, pos, &[t as f32; 2], &[0.0; 2]).unwrap();
        }
        kv.block_table(seq).unwrap()[..tokens.len() / 4].to_vec()
    }

    #[test]
    fn match_is_block_granular() {
        let mut kv = kv(16);
        let mut cache = PrefixCache::new(4, 8);
        let tokens: Vec<u32> = (0..8).collect();
        let blocks = fill(&mut kv, 1, &tokens);
        cache.insert(&tokens, &blocks, &mut kv);

        // Full match: both blocks.
        let m = cache.match_prefix(&tokens);
        assert_eq!(m.matched_tokens, 8);
        assert_eq!(m.blocks, blocks);
        // 6 tokens match only the first block (whole blocks only).
        let m = cache.match_prefix(&tokens[..6]);
        assert_eq!(m.matched_tokens, 4);
        assert_eq!(m.blocks, blocks[..1]);
        // A diverging second block matches only the first.
        let mut other = tokens.clone();
        other[5] = 99;
        let m = cache.match_prefix(&other);
        assert_eq!(m.matched_tokens, 4);
        // Diverging first token: nothing.
        other[0] = 7;
        assert_eq!(cache.match_prefix(&other).matched_tokens, 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn insert_adopts_references_and_shares_suffixes() {
        let mut kv = kv(16);
        let mut cache = PrefixCache::new(4, 8);
        let a: Vec<u32> = (0..8).collect();
        let blocks_a = fill(&mut kv, 1, &a);
        assert_eq!(cache.insert(&a, &blocks_a, &mut kv), 2);
        assert_eq!(kv.block_ref_count(blocks_a[0]), 2);

        // Same first block, different second: only one new adoption.
        let mut b = a.clone();
        b[6] = 42;
        let blocks_b = fill(&mut kv, 2, &b);
        assert_eq!(cache.insert(&b, &blocks_b, &mut kv), 1);
        assert_eq!(cache.owned_blocks(), 3);
        // The shared first block is the *cache's* copy (seq 1's), not
        // seq 2's duplicate.
        assert_eq!(cache.match_prefix(&b).blocks[0], blocks_a[0]);

        // Releasing both sequences keeps cached blocks alive.
        kv.release(1).unwrap();
        kv.release(2).unwrap();
        assert_eq!(kv.block_ref_count(blocks_a[0]), 1);
        let m = cache.match_prefix(&a);
        assert_eq!(m.matched_tokens, 8);
        // And a full clear returns the pool to pristine.
        cache.clear(&mut kv);
        assert_eq!(kv.free_blocks(), kv.total_blocks());
    }

    #[test]
    fn lru_evicts_least_recent_leaf_only() {
        let mut kv = kv(32);
        let mut cache = PrefixCache::new(4, 2);
        let a: Vec<u32> = (0..8).collect(); // Chain: block0 -> block1.
        let blocks = fill(&mut kv, 1, &a);
        cache.insert(&a, &blocks, &mut kv);
        assert_eq!(cache.owned_blocks(), 2);

        // Inserting an unrelated prompt forces eviction; the chain's
        // *leaf* (block1) must go, never the interior block0.
        let b: Vec<u32> = (100..104).collect();
        let blocks_b = fill(&mut kv, 2, &b);
        cache.insert(&b, &blocks_b, &mut kv);
        assert_eq!(cache.owned_blocks(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.match_prefix(&a).matched_tokens, 4); // Block0 survives.
        assert_eq!(cache.match_prefix(&b).matched_tokens, 4);
    }

    #[test]
    fn touch_order_drives_eviction() {
        let mut kv = kv(32);
        let mut cache = PrefixCache::new(4, 2);
        let a: Vec<u32> = (0..4).collect();
        let b: Vec<u32> = (10..14).collect();
        let ba = fill(&mut kv, 1, &a);
        let bb = fill(&mut kv, 2, &b);
        cache.insert(&a, &ba, &mut kv);
        cache.insert(&b, &bb, &mut kv);
        // Touch `a` so `b` is the LRU leaf.
        cache.match_prefix(&a);
        let c: Vec<u32> = (20..24).collect();
        let bc = fill(&mut kv, 3, &c);
        cache.insert(&c, &bc, &mut kv);
        assert_eq!(cache.match_prefix(&a).matched_tokens, 4);
        assert_eq!(cache.match_prefix(&b).matched_tokens, 0);
        assert_eq!(cache.match_prefix(&c).matched_tokens, 4);
    }

    #[test]
    fn pinned_leaves_survive_pressure() {
        let mut kv = kv(32);
        let mut cache = PrefixCache::new(4, 1);
        let a: Vec<u32> = (0..4).collect();
        let ba = fill(&mut kv, 1, &a);
        cache.insert(&a, &ba, &mut kv);
        assert_eq!(cache.pin_prefix(&a), 1);

        // Capacity 1 and the only resident block is pinned: the insert
        // cannot make room and adopts nothing.
        let b: Vec<u32> = (10..14).collect();
        let bb = fill(&mut kv, 2, &b);
        assert_eq!(cache.insert(&b, &bb, &mut kv), 0);
        assert_eq!(cache.match_prefix(&a).matched_tokens, 4);

        cache.unpin_prefix(&a);
        let bc = fill(&mut kv, 3, &b);
        cache.insert(&b, &bc, &mut kv);
        assert_eq!(cache.match_prefix(&a).matched_tokens, 0); // Evicted now.
        assert_eq!(cache.match_prefix(&b).matched_tokens, 4);
    }

    #[test]
    fn eviction_never_frees_live_sequence_blocks() {
        let mut kv = kv(32);
        let mut cache = PrefixCache::new(4, 1);
        let a: Vec<u32> = (0..4).collect();
        let ba = fill(&mut kv, 1, &a);
        cache.insert(&a, &ba, &mut kv);
        // Seq 2 forks over the cached block, then the block is evicted.
        kv.fork_prefix(2, &ba);
        let b: Vec<u32> = (10..14).collect();
        let bb = fill(&mut kv, 3, &b);
        cache.insert(&b, &bb, &mut kv);
        assert_eq!(cache.stats().evictions, 1);
        // Still readable through the live fork — refcount held it.
        assert_eq!(kv.key(2, 0, 0), &[0.0; 2]);
        assert_eq!(kv.block_ref_count(ba[0]), 2); // Seqs 1 and 2.
    }

    #[test]
    fn capacity_one_chain_insert_does_not_evict_own_parent() {
        let mut kv = kv(32);
        let mut cache = PrefixCache::new(4, 1);
        let a: Vec<u32> = (0..12).collect(); // Three-block chain.
        let ba = fill(&mut kv, 1, &a);
        cache.insert(&a, &ba, &mut kv);
        // Only one block fits; it must be the chain head (the node being
        // extended is pinned during eviction, and deeper links stop when
        // no room remains).
        assert_eq!(cache.owned_blocks(), 1);
        assert_eq!(cache.match_prefix(&a).matched_tokens, 4);
    }

    #[test]
    fn stats_track_token_ratios() {
        let mut kv = kv(16);
        let mut cache = PrefixCache::new(4, 8);
        let a: Vec<u32> = (0..8).collect();
        let ba = fill(&mut kv, 1, &a);
        cache.insert(&a, &ba, &mut kv);
        cache.match_prefix(&a); // 8 of 8.
        cache.match_prefix(&[77, 78, 79, 80]); // 0 of 4.
        let s = cache.stats();
        assert_eq!(s.lookup_tokens, 12);
        assert_eq!(s.matched_tokens, 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.token_hit_rate() - 8.0 / 12.0).abs() < 1e-12);
    }
}
