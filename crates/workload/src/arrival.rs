//! Arrival processes.
//!
//! The paper generates request arrival times from a Poisson process
//! (§6.1). Real workloads are burstier; §4.3 ("Combat burstiness")
//! motivates a pull-based KV transfer precisely because arrivals cluster.
//! [`ArrivalProcess`] therefore also offers gamma-distributed
//! inter-arrival gaps with a configurable coefficient of variation
//! (CV > 1 ⇒ burstier than Poisson) and a deterministic process for
//! queueing-theory validation.

use distserve_simcore::SimRng;

use crate::dist::{Exponential, Gamma, Sample};

/// Generates inter-arrival gaps.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential gaps at `rate` requests/second.
    Poisson(Exponential),
    /// Gamma-distributed gaps: `rate` requests/second with coefficient of
    /// variation `cv` (`cv = 1` reduces to Poisson, `cv > 1` is bursty).
    Bursty(Gamma),
    /// Fixed gaps of `1/rate` seconds (the "D" in M/D/1 turned around:
    /// deterministic arrivals for controlled experiments).
    Deterministic(f64),
}

impl ArrivalProcess {
    /// Poisson process at `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn poisson(rate: f64) -> Self {
        ArrivalProcess::Poisson(Exponential::new(rate).expect("arrival rate must be positive"))
    }

    /// Bursty process: gamma inter-arrivals with mean `1/rate` and
    /// coefficient of variation `cv`.
    ///
    /// For a gamma with shape `k`, CV is `1/sqrt(k)`, so `k = 1/cv²` and
    /// the scale follows from the mean.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `cv` is not strictly positive.
    #[must_use]
    pub fn bursty(rate: f64, cv: f64) -> Self {
        assert!(rate > 0.0 && cv > 0.0, "rate and cv must be positive");
        let shape = 1.0 / (cv * cv);
        let scale = 1.0 / (rate * shape);
        ArrivalProcess::Bursty(Gamma::new(shape, scale).expect("derived parameters are positive"))
    }

    /// Deterministic arrivals at exactly `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn deterministic(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        ArrivalProcess::Deterministic(1.0 / rate)
    }

    /// Draws the next inter-arrival gap in seconds.
    #[must_use]
    pub fn next_gap(&self, rng: &mut SimRng) -> f64 {
        match self {
            ArrivalProcess::Poisson(exp) => exp.sample(rng),
            ArrivalProcess::Bursty(gamma) => gamma.sample(rng),
            ArrivalProcess::Deterministic(gap) => *gap,
        }
    }

    /// The long-run average rate, requests per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson(exp) => 1.0 / exp.mean().expect("exponential mean exists"),
            ArrivalProcess::Bursty(gamma) => 1.0 / gamma.mean().expect("gamma mean exists"),
            ArrivalProcess::Deterministic(gap) => 1.0 / gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap_stats(p: &ArrivalProcess, n: usize) -> (f64, f64) {
        let mut rng = SimRng::seed(99);
        let gaps: Vec<f64> = (0..n).map(|_| p.next_gap(&mut rng)).collect();
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var.sqrt() / mean)
    }

    #[test]
    fn poisson_cv_is_one() {
        let p = ArrivalProcess::poisson(4.0);
        let (mean, cv) = gap_stats(&p, 200_000);
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
        assert!((p.rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_cv_matches_request() {
        let p = ArrivalProcess::bursty(4.0, 2.0);
        let (mean, cv) = gap_stats(&p, 400_000);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!((cv - 2.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn bursty_cv_one_like_poisson() {
        let p = ArrivalProcess::bursty(2.0, 1.0);
        let (mean, cv) = gap_stats(&p, 200_000);
        assert!((mean - 0.5).abs() < 0.01);
        assert!((cv - 1.0).abs() < 0.03);
    }

    #[test]
    fn deterministic_gaps_constant() {
        let p = ArrivalProcess::deterministic(5.0);
        let mut rng = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(p.next_gap(&mut rng), 0.2);
        }
        assert_eq!(p.rate(), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::poisson(0.0);
    }
}
