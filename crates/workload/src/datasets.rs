//! Synthetic dataset length generators (paper §6.1, Figure 7).
//!
//! The real datasets — ShareGPT conversations, HumanEval programming
//! problems, LongBench long-document tasks — are only consumed by the
//! paper as *length-pair distributions* (arrival timestamps are synthetic
//! there too). We substitute parametric generators whose marginal shapes
//! match Figure 7:
//!
//! * **ShareGPT** — moderate prompts with a heavy right tail (log-normal,
//!   mean ≈ 300 tokens) and conversational outputs (mean ≈ 240 tokens).
//! * **HumanEval** — short, tightly concentrated prompts (function
//!   signature plus docstring, mean ≈ 180 tokens) and short completions.
//! * **LongBench** — much longer inputs (documents, mean ≈ 1600 tokens,
//!   clipped at the OPT context limit of 2048) with short summaries.
//!
//! [`EmpiricalLengths`] resamples recorded pairs — the mechanism DistServe
//! uses when it "fits a distribution from the history request traces and
//! resamples new traces" for the placement simulator (§4).

use distserve_simcore::SimRng;

use crate::dist::{LogNormal, Sample};

/// Samples `(input_len, output_len)` pairs for one application.
pub trait LengthSampler: Send {
    /// Draws one length pair, in tokens.
    fn sample(&self, rng: &mut SimRng) -> (u32, u32);

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// The paper's three evaluation datasets (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// ShareGPT — chatbot conversations.
    ShareGpt,
    /// HumanEval — code-completion problems.
    HumanEval,
    /// LongBench — long-document summarization.
    LongBench,
}

impl Dataset {
    /// All three datasets.
    pub const ALL: [Dataset; 3] = [Dataset::ShareGpt, Dataset::HumanEval, Dataset::LongBench];

    /// Builds the synthetic sampler for this dataset.
    #[must_use]
    pub fn sampler(self) -> Box<dyn LengthSampler> {
        Box::new(SyntheticLengths::new(self))
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dataset::ShareGpt => "ShareGPT",
            Dataset::HumanEval => "HumanEval",
            Dataset::LongBench => "LongBench",
        }
    }
}

/// Parametric length generator matching Figure 7's marginal shapes.
#[derive(Debug, Clone)]
pub struct SyntheticLengths {
    dataset: Dataset,
    input: LogNormal,
    output: LogNormal,
    min_len: u32,
    max_len: u32,
}

impl SyntheticLengths {
    /// Creates the generator for `dataset`.
    ///
    /// The log-normal parameters are chosen so the mean input/output
    /// lengths and tail weights match Figure 7; all lengths are clipped to
    /// the OPT context window (2048 tokens).
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        let (input, output) = match dataset {
            // Wide prompt spread; conversational replies. The log-sigma
            // keeps the >1k-token tail small (a prompt whose *execution
            // alone* exceeds the TTFT SLO caps attainment for every
            // system), matching Figure 7a's mostly-sub-1k inputs.
            Dataset::ShareGpt => (
                LogNormal::from_mean(300.0, 0.85).expect("valid parameters"),
                LogNormal::from_mean(240.0, 0.8).expect("valid parameters"),
            ),
            // Tight prompt distribution; short completions.
            Dataset::HumanEval => (
                LogNormal::from_mean(180.0, 0.35).expect("valid parameters"),
                LogNormal::from_mean(110.0, 0.55).expect("valid parameters"),
            ),
            // Long documents pressed against the context limit; terse
            // summaries.
            Dataset::LongBench => (
                LogNormal::from_mean(1650.0, 0.35).expect("valid parameters"),
                LogNormal::from_mean(170.0, 0.5).expect("valid parameters"),
            ),
        };
        SyntheticLengths {
            dataset,
            input,
            output,
            min_len: 4,
            max_len: 2048,
        }
    }
}

impl LengthSampler for SyntheticLengths {
    fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        let clip = |v: f64, lo: u32, hi: u32| -> u32 {
            (v.round() as i64).clamp(i64::from(lo), i64::from(hi)) as u32
        };
        let input = clip(self.input.sample(rng), self.min_len, self.max_len);
        // Leave at least one token of room for generation.
        let out_cap = (self.max_len - input).clamp(1, 1024);
        let output = clip(self.output.sample(rng), 1, out_cap);
        (input, output)
    }

    fn name(&self) -> &str {
        self.dataset.name()
    }
}

/// Fixed-length sampler (Figure 1's "input length = 512, output = 64").
#[derive(Debug, Clone, Copy)]
pub struct FixedLengths {
    /// Prompt length, tokens.
    pub input_len: u32,
    /// Output length, tokens.
    pub output_len: u32,
}

impl LengthSampler for FixedLengths {
    fn sample(&self, _rng: &mut SimRng) -> (u32, u32) {
        (self.input_len, self.output_len)
    }

    fn name(&self) -> &str {
        "fixed"
    }
}

/// Empirical length distribution: records pairs and resamples them with
/// replacement, preserving input/output correlation.
///
/// # Examples
///
/// ```
/// use distserve_simcore::SimRng;
/// use distserve_workload::{EmpiricalLengths, datasets::LengthSampler};
///
/// let emp = EmpiricalLengths::from_pairs(vec![(100, 20), (500, 80)]).unwrap();
/// let mut rng = SimRng::seed(3);
/// let (i, o) = emp.sample(&mut rng);
/// assert!(i == 100 || i == 500);
/// assert!(o == 20 || o == 80);
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalLengths {
    pairs: Vec<(u32, u32)>,
}

impl EmpiricalLengths {
    /// Builds from recorded pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if `pairs` is empty.
    pub fn from_pairs(pairs: Vec<(u32, u32)>) -> Result<Self, String> {
        if pairs.is_empty() {
            return Err("empirical distribution needs at least one pair".into());
        }
        Ok(EmpiricalLengths { pairs })
    }

    /// Mean input length of the recorded pairs.
    #[must_use]
    pub fn mean_input(&self) -> f64 {
        self.pairs.iter().map(|&(i, _)| f64::from(i)).sum::<f64>() / self.pairs.len() as f64
    }

    /// Mean output length of the recorded pairs.
    #[must_use]
    pub fn mean_output(&self) -> f64 {
        self.pairs.iter().map(|&(_, o)| f64::from(o)).sum::<f64>() / self.pairs.len() as f64
    }

    /// Number of recorded pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs are recorded (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl LengthSampler for EmpiricalLengths {
    fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        self.pairs[rng.below(self.pairs.len() as u64) as usize]
    }

    fn name(&self) -> &str {
        "empirical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_lengths(d: Dataset, n: usize) -> (f64, f64) {
        let sampler = d.sampler();
        let mut rng = SimRng::seed(1234);
        let mut si = 0.0;
        let mut so = 0.0;
        for _ in 0..n {
            let (i, o) = sampler.sample(&mut rng);
            si += f64::from(i);
            so += f64::from(o);
        }
        (si / n as f64, so / n as f64)
    }

    #[test]
    fn sharegpt_shape() {
        let (i, o) = mean_lengths(Dataset::ShareGpt, 50_000);
        assert!((200.0..400.0).contains(&i), "input mean {i}");
        assert!((150.0..320.0).contains(&o), "output mean {o}");
    }

    #[test]
    fn humaneval_shape() {
        let (i, o) = mean_lengths(Dataset::HumanEval, 50_000);
        assert!((120.0..250.0).contains(&i), "input mean {i}");
        assert!((60.0..160.0).contains(&o), "output mean {o}");
    }

    #[test]
    fn longbench_much_longer_inputs() {
        // Figure 7: "LongBench has much longer input lengths than the
        // other two datasets".
        let (lb_i, _) = mean_lengths(Dataset::LongBench, 50_000);
        let (sg_i, _) = mean_lengths(Dataset::ShareGpt, 50_000);
        let (he_i, _) = mean_lengths(Dataset::HumanEval, 50_000);
        assert!(lb_i > 3.0 * sg_i, "LongBench {lb_i} vs ShareGPT {sg_i}");
        assert!(lb_i > 5.0 * he_i, "LongBench {lb_i} vs HumanEval {he_i}");
    }

    #[test]
    fn lengths_respect_context_window() {
        for d in Dataset::ALL {
            let sampler = d.sampler();
            let mut rng = SimRng::seed(55);
            for _ in 0..20_000 {
                let (i, o) = sampler.sample(&mut rng);
                assert!((4..=2048).contains(&i), "{}: input {i}", d.name());
                assert!(o >= 1, "{}: output {o}", d.name());
                assert!(i + o <= 2048 + 1024, "{}: total {i}+{o}", d.name());
            }
        }
    }

    #[test]
    fn fixed_sampler_constant() {
        let f = FixedLengths {
            input_len: 512,
            output_len: 64,
        };
        let mut rng = SimRng::seed(0);
        for _ in 0..10 {
            assert_eq!(f.sample(&mut rng), (512, 64));
        }
    }

    #[test]
    fn empirical_resamples_only_recorded_pairs() {
        let pairs = vec![(10, 1), (20, 2), (30, 3)];
        let emp = EmpiricalLengths::from_pairs(pairs.clone()).unwrap();
        let mut rng = SimRng::seed(5);
        for _ in 0..1000 {
            let pair = emp.sample(&mut rng);
            assert!(pairs.contains(&pair));
        }
        assert_eq!(emp.len(), 3);
        assert!((emp.mean_input() - 20.0).abs() < 1e-12);
        assert!((emp.mean_output() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_rejects_empty() {
        assert!(EmpiricalLengths::from_pairs(vec![]).is_err());
    }

    #[test]
    fn empirical_preserves_correlation() {
        // Pairs are resampled jointly, never mixed across records.
        let emp = EmpiricalLengths::from_pairs(vec![(100, 1), (200, 2)]).unwrap();
        let mut rng = SimRng::seed(8);
        for _ in 0..1000 {
            let (i, o) = emp.sample(&mut rng);
            assert!(matches!((i, o), (100, 1) | (200, 2)));
        }
    }
}
